//! Assembles the allocation objective `Phi = max(A_p, C_p)` for an
//! (MDG, machine) pair as generalized posynomial expressions over the
//! log-allocation variables `x_i = ln p_i` (one variable per MDG node;
//! START/STOP variables never appear in any term because structural edges
//! carry no data).
//!
//! The network edge weight needs one care point: for 1D transfers the
//! exact cost is `L t_n / max(p_i, p_j)`, which is a *min* of monomials
//! and not log-convex. The objective substitutes the monomial upper bound
//! `L t_n / sqrt(p_i p_j)` (exact whenever `p_i = p_j`, conservative
//! otherwise). On the CM-5, `t_n = 0` and the substitution is vacuous —
//! every paper experiment is unaffected. Exactness is restored in the
//! final reported numbers because allocations are always re-scored with
//! `paradigm-cost`'s exact evaluator.

use crate::batch::{lanes_add, smax_batch, smax_batch_val};
use crate::compiled::{smax_weights_fast, CompiledExpr};
use crate::expr::{smax_pair_weights, smax_weights, Expr, Monomial, Sharpness};
use crate::workspace::{self, BatchEvalScratch, EvalScratch};
use paradigm_cost::{Allocation, Machine, MdgWeights, PhiBreakdown};
use paradigm_mdg::{EdgeId, Mdg, NodeId, TransferKind};

/// The evaluated objective components at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveParts {
    /// Smoothed `Phi`.
    pub phi: f64,
    /// Smoothed average finish time `A_p`.
    pub a_p: f64,
    /// Smoothed critical path time `C_p`.
    pub c_p: f64,
}

/// The symbolic objective for one (MDG, machine) pair.
pub struct MdgObjective<'g> {
    g: &'g Mdg,
    machine: Machine,
    /// `T_i` per node, as an expression over `x`.
    node_t: Vec<Expr>,
    /// `t^D` per edge (zero when `t_n = 0`).
    edge_d: Vec<Expr>,
    /// `A_p` as a single expression.
    area: Expr,
    /// Compiled (flat, tape-recording) forms of every expression above,
    /// used by the hot evaluation/gradient paths.
    tapes: Tapes,
}

/// Compiled expressions plus their disjoint offsets into the workspace's
/// shared value/weight tapes: node `T` expressions by node id, then edge
/// `t^D` expressions by edge id.
///
/// `A_p` is deliberately *not* compiled: as an expression it duplicates
/// every node term (each `T_i` scaled by `p_i/p`), doubling the op count
/// of both sweeps. The evaluation paths instead accumulate
/// `A_p = (1/p) Σ T_i e^{x_i}` from the node values they already
/// computed, and the backward pass folds the product rule into the node
/// tape seeds (see [`MdgObjective::backward_sweep`]). The symbolic
/// `area` tree on [`MdgObjective`] is kept for inspection and
/// certification.
struct Tapes {
    node: Vec<CompiledExpr>,
    edge: Vec<CompiledExpr>,
    /// `(value offset, weight offset)` per node expression.
    node_off: Vec<(usize, usize)>,
    /// `(value offset, weight offset)` per edge expression.
    edge_off: Vec<(usize, usize)>,
    /// Total tape sizes across all expressions.
    total_vals: usize,
    total_wts: usize,
    /// Whether any monomial carries a `±0.5` exponent (decides whether
    /// the smoothed-path [`VarCache`] needs its square-root caches).
    needs_halves: bool,
}

impl Tapes {
    fn build(node_t: &[Expr], edge_d: &[Expr]) -> Tapes {
        let mut vo = 0;
        let mut wo = 0;
        let mut lay = |exprs: &[Expr]| {
            let mut compiled = Vec::with_capacity(exprs.len());
            let mut offs = Vec::with_capacity(exprs.len());
            for e in exprs {
                let c = CompiledExpr::compile(e);
                offs.push((vo, wo));
                vo += c.vals_len();
                wo += c.wts_len();
                compiled.push(c);
            }
            (compiled, offs)
        };
        let (node, node_off) = lay(node_t);
        let (edge, edge_off) = lay(edge_d);
        let needs_halves = node.iter().chain(&edge).any(CompiledExpr::has_half_exponents);
        Tapes { node, edge, node_off, edge_off, total_vals: vo, total_wts: wo, needs_halves }
    }
}

impl<'g> MdgObjective<'g> {
    /// Fallible [`MdgObjective::new`]: validates the machine and every
    /// node cost *before* building monomials, so degenerate inputs
    /// (non-finite `tau`, out-of-range `alpha`, bad transfer constants)
    /// become an `Err` instead of a constructor panic.
    pub fn try_new(g: &'g Mdg, machine: Machine) -> Result<Self, String> {
        if machine.procs == 0 {
            return Err("machine has zero processors".into());
        }
        machine.xfer.validate()?;
        for (_, node) in g.nodes() {
            let a = node.cost.alpha;
            let tau = node.cost.tau;
            if !a.is_finite() || !(0.0..=1.0).contains(&a) || !tau.is_finite() || tau < 0.0 {
                return Err(format!(
                    "node `{}` has invalid cost (alpha = {a}, tau = {tau})",
                    node.name
                ));
            }
        }
        Ok(Self::new(g, machine))
    }

    /// Build the expressions. `O(nodes + edges)` monomials.
    pub fn new(g: &'g Mdg, machine: Machine) -> Self {
        let x = &machine.xfer;
        let n = g.node_count();
        let mut node_terms: Vec<Vec<Expr>> = vec![Vec::new(); n];

        // Processing costs: t^C_i = alpha*tau + (1-alpha)*tau / p_i.
        for (id, node) in g.nodes() {
            let a = node.cost.alpha;
            let tau = node.cost.tau;
            if tau > 0.0 {
                node_terms[id.0].push(Expr::Mono(Monomial::constant(a * tau)));
                node_terms[id.0].push(Expr::Mono(Monomial::single((1.0 - a) * tau, id.0, -1.0)));
            }
        }

        // Transfer costs: send into the source's T, receive into the
        // destination's T, network onto the edge.
        let mut edge_d = Vec::with_capacity(g.edge_count());
        for (_, e) in g.edges() {
            let (i, j) = (e.src, e.dst); // sender i, receiver j
            let mut d_terms: Vec<Expr> = Vec::new();
            for t in &e.transfers {
                let l = t.bytes as f64;
                match t.kind {
                    TransferKind::OneD => {
                        // t^S = max(p_i,p_j)/p_i * t_ss + L/p_i * t_ps
                        node_terms[i].push(Expr::sum(vec![
                            Expr::max(vec![
                                Expr::Mono(Monomial::constant(x.t_ss)),
                                Expr::Mono(Monomial::pair(x.t_ss, j, 1.0, i, -1.0)),
                            ]),
                            Expr::Mono(Monomial::single(l * x.t_ps, i, -1.0)),
                        ]));
                        // t^R = max(p_i,p_j)/p_j * t_sr + L/p_j * t_pr
                        node_terms[j].push(Expr::sum(vec![
                            Expr::max(vec![
                                Expr::Mono(Monomial::constant(x.t_sr)),
                                Expr::Mono(Monomial::pair(x.t_sr, i, 1.0, j, -1.0)),
                            ]),
                            Expr::Mono(Monomial::single(l * x.t_pr, j, -1.0)),
                        ]));
                        // t^D = L t_n / max(p_i,p_j) ~ L t_n / sqrt(p_i p_j)
                        if x.t_n > 0.0 {
                            d_terms.push(Expr::Mono(Monomial::pair(l * x.t_n, i, -0.5, j, -0.5)));
                        }
                    }
                    TransferKind::TwoD => {
                        // t^S = p_j * t_ss + L/p_i * t_ps
                        node_terms[i].push(Expr::sum(vec![
                            Expr::Mono(Monomial::single(x.t_ss, j, 1.0)),
                            Expr::Mono(Monomial::single(l * x.t_ps, i, -1.0)),
                        ]));
                        // t^R = p_i * t_sr + L/p_j * t_pr
                        node_terms[j].push(Expr::sum(vec![
                            Expr::Mono(Monomial::single(x.t_sr, i, 1.0)),
                            Expr::Mono(Monomial::single(l * x.t_pr, j, -1.0)),
                        ]));
                        // t^D = L t_n / (p_i p_j) — already a monomial.
                        if x.t_n > 0.0 {
                            d_terms.push(Expr::Mono(Monomial::pair(l * x.t_n, i, -1.0, j, -1.0)));
                        }
                    }
                }
            }
            edge_d.push(Expr::sum(d_terms));
        }

        let node_t: Vec<Expr> = node_terms.into_iter().map(Expr::sum).collect();

        // A_p = (1/p) Σ T_i p_i.
        let inv_p = 1.0 / machine.procs as f64;
        let area = Expr::sum(
            node_t
                .iter()
                .enumerate()
                .map(|(i, t)| t.mul_mono(&Monomial::single(inv_p, i, 1.0)))
                .collect(),
        );

        let tapes = Tapes::build(&node_t, &edge_d);
        MdgObjective { g, machine, node_t, edge_d, area, tapes }
    }

    /// The graph this objective was built for.
    pub fn graph(&self) -> &Mdg {
        self.g
    }

    /// The machine this objective was built for.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of log-variables (== node count).
    pub fn num_vars(&self) -> usize {
        self.g.node_count()
    }

    /// Upper bound for every variable: `ln p`.
    pub fn x_upper(&self) -> f64 {
        (self.machine.procs as f64).ln()
    }

    /// The `T_i` expression of a node (for inspection/tests).
    pub fn node_expr(&self, id: NodeId) -> &Expr {
        &self.node_t[id.0]
    }

    /// The `t^D` expression of an edge (zero when the machine's `t_n` is
    /// zero or the edge carries no data).
    pub fn edge_expr(&self, id: EdgeId) -> &Expr {
        &self.edge_d[id.0]
    }

    /// The `A_p` expression (for inspection and symbolic certification).
    pub fn area_expr(&self) -> &Expr {
        &self.area
    }

    /// Evaluate `Phi` (and parts) at `x` with the given sharpness, without
    /// gradients. Convenience wrapper over [`MdgObjective::eval_with`]
    /// using a pooled workspace; hot loops should hold their own.
    pub fn eval(&self, x: &[f64], sharp: Sharpness) -> ObjectiveParts {
        let mut ws = workspace::acquire();
        self.eval_with(x, sharp, &mut ws.scratch)
    }

    /// Allocation-free [`MdgObjective::eval`]: the DAG recurrence's
    /// per-node candidate lists and every expression `max` run through
    /// the workspace's value stack, on the compiled expression forms.
    /// Values agree bitwise with [`MdgObjective::eval_grad_with`]'s
    /// forward sweep (same kernels, no tape writes).
    pub fn eval_with(
        &self,
        x: &[f64],
        sharp: Sharpness,
        scratch: &mut EvalScratch,
    ) -> ObjectiveParts {
        scratch.ensure(self.g.node_count(), self.g.edge_count());
        let t = &self.tapes;
        let EvalScratch { y, stack, var_cache, .. } = scratch;
        // The exp(x_j) cache is always filled: the fused A_p accumulation
        // below reads it even at Exact, where the monomials themselves
        // stay on the bit-identical exp(Σ a·x) path (`vc = None`).
        let smooth = matches!(sharp, Sharpness::Smooth(_));
        var_cache.fill(x, smooth && t.needs_halves);
        let vc = if smooth { Some(&*var_cache) } else { None };
        let inv_p = 1.0 / self.machine.procs as f64;
        // DAG recurrence for C_p, accumulating A_p = (1/p) Σ T_v e^{x_v}
        // from the same node values.
        let mut area_acc = 0.0;
        for &v in self.g.topo_order() {
            let base = stack.len();
            for &e in self.g.in_edges(v) {
                let m = self.g.edge(e).src;
                let de = t.edge[e.0].eval(x, sharp, stack, vc);
                let cand = y[m] + de;
                stack.push(cand);
            }
            let start = crate::compiled::smax_fast(&stack[base..], sharp);
            stack.truncate(base);
            let tv = t.node[v.0].eval(x, sharp, stack, vc);
            area_acc += tv * var_cache.e[v.0];
            y[v.0] = start + tv;
        }
        let a_p = inv_p * area_acc;
        let c_p = y[self.g.stop().0];
        let (phi, _, _) = smax_pair_weights(a_p, c_p, sharp);
        ObjectiveParts { phi, a_p, c_p }
    }

    /// Evaluate `Phi` and its gradient w.r.t. `x`. Convenience wrapper
    /// over [`MdgObjective::eval_grad_with`] using a pooled workspace
    /// and a freshly allocated gradient vector.
    pub fn eval_grad(&self, x: &[f64], sharp: Sharpness) -> (ObjectiveParts, Vec<f64>) {
        let mut ws = workspace::acquire();
        let mut grad = Vec::new();
        let parts = self.eval_grad_with(x, sharp, &mut ws.scratch, &mut grad);
        (parts, grad)
    }

    /// Reverse-mode `Phi` gradient: one forward sweep over
    /// `topo_order()` recording per-node finish times and per-edge
    /// `smax` weights (the tape), then one backward sweep pushing a
    /// single dense adjoint of size `n` through the DAG — `O(E + Σ
    /// posynomial terms)` time with `O(n + E)` scratch, versus the
    /// forward-mode reference's `O(E·n)` with a dense vector per node.
    ///
    /// `grad` is resized to `n` and overwritten. Allocation-free after
    /// warm-up (given a warm `scratch` and an `n`-capacity `grad`).
    pub fn eval_grad_with(
        &self,
        x: &[f64],
        sharp: Sharpness,
        scratch: &mut EvalScratch,
        grad: &mut Vec<f64>,
    ) -> ObjectiveParts {
        let (parts, w_a, w_c) = self.forward_sweep(x, sharp, scratch);
        grad.clear();
        grad.resize(self.g.node_count(), 0.0);
        self.backward_sweep(w_c, w_a, scratch, grad);
        parts
    }

    /// Like [`MdgObjective::eval_grad`], but returns the gradients of
    /// `A_p` and `C_p` separately (needed for the minimax stationarity
    /// test in [`crate::solve::optimality_residual`], where the correct
    /// multiplier between the two active pieces is unknown a priori).
    pub fn eval_grad_parts(
        &self,
        x: &[f64],
        sharp: Sharpness,
    ) -> (ObjectiveParts, Vec<f64>, Vec<f64>) {
        let mut ws = workspace::acquire();
        let mut grad_a = Vec::new();
        let mut grad_c = Vec::new();
        let parts = self.eval_grad_parts_with(x, sharp, &mut ws.scratch, &mut grad_a, &mut grad_c);
        (parts, grad_a, grad_c)
    }

    /// Allocation-free [`MdgObjective::eval_grad_parts`]: same reverse-
    /// mode sweeps, with the `A_p` and `C_p` gradients kept separate
    /// (both seeded with weight 1 instead of the `Phi` smax weights).
    pub fn eval_grad_parts_with(
        &self,
        x: &[f64],
        sharp: Sharpness,
        scratch: &mut EvalScratch,
        grad_a: &mut Vec<f64>,
        grad_c: &mut Vec<f64>,
    ) -> ObjectiveParts {
        let (parts, _, _) = self.forward_sweep(x, sharp, scratch);
        let n = self.g.node_count();
        // One 2-lane multi-seed sweep replaces the two sequential scalar
        // sweeps: lane 0 carries the A_p seed, lane 1 the C_p seed. The
        // multi-seed kernels replay the same scalar tape with the same
        // per-lane arithmetic, so each lane is bit-identical to its
        // scalar counterpart.
        let mut mg = std::mem::take(&mut scratch.multi_grad);
        mg.clear();
        mg.resize(2 * n, 0.0);
        self.backward_sweep_multi(2, &[0.0, 1.0], &[1.0, 0.0], scratch, &mut mg);
        grad_a.clear();
        grad_a.resize(n, 0.0);
        grad_c.clear();
        grad_c.resize(n, 0.0);
        for j in 0..n {
            grad_a[j] = mg[2 * j];
            grad_c[j] = mg[2 * j + 1];
        }
        scratch.multi_grad = mg;
        parts
    }

    /// Batched [`MdgObjective::eval_with`]: evaluates `k` lane-major
    /// points at once (`xs[j*k + l]` is variable `j` of lane `l`),
    /// writing one [`ObjectiveParts`] per lane. At
    /// [`Sharpness::Exact`] each lane is routed through the scalar
    /// sweep (gather/scatter) so exact `max` tie-breaking stays
    /// bit-identical to the scalar path.
    pub fn eval_batch_with(
        &self,
        xs: &[f64],
        k: usize,
        sharp: Sharpness,
        scratch: &mut BatchEvalScratch,
        parts: &mut [ObjectiveParts],
    ) {
        let n = self.g.node_count();
        debug_assert_eq!(xs.len(), n * k);
        debug_assert_eq!(parts.len(), k);
        if matches!(sharp, Sharpness::Exact) {
            let BatchEvalScratch { scalar, x_tmp, .. } = scratch;
            x_tmp.resize(n, 0.0);
            for (l, p) in parts.iter_mut().enumerate() {
                for j in 0..n {
                    x_tmp[j] = xs[j * k + l];
                }
                *p = self.eval_with(x_tmp, sharp, scalar);
            }
            return;
        }
        scratch.ensure(n, self.g.edge_count(), k);
        let t = &self.tapes;
        let BatchEvalScratch { y, stack, var_cache, area, .. } = scratch;
        var_cache.fill(xs, n, k, t.needs_halves);
        let inv_p = 1.0 / self.machine.procs as f64;
        for &v in self.g.topo_order() {
            let vk = v.0 * k;
            let in_edges = self.g.in_edges(v);
            let base = stack.len();
            for &e in in_edges {
                let m = self.g.edge(e).src;
                t.edge[e.0].eval_batch(k, sharp, stack, var_cache);
                let top = stack.len() - k;
                lanes_add(&mut stack[top..], &y[m * k..(m + 1) * k]);
            }
            let kk = in_edges.len();
            if kk > 0 {
                let sl = stack.len();
                stack.resize(sl + 4 * k, 0.0);
                let (cands, scr) = stack[base..].split_at_mut(kk * k);
                smax_batch_val(k, kk, sharp, cands, scr);
                y[vk..vk + k].copy_from_slice(&cands[..k]);
            }
            stack.truncate(base);
            t.node[v.0].eval_batch(k, sharp, stack, var_cache);
            let top = stack.len() - k;
            let tv = &stack[top..];
            for l in 0..k {
                area[l] += tv[l] * var_cache.e[vk + l];
            }
            lanes_add(&mut y[vk..vk + k], &stack[top..]);
            stack.truncate(base);
        }
        let stop = self.g.stop().0;
        for (l, p) in parts.iter_mut().enumerate() {
            let a_p = inv_p * area[l];
            let c_p = y[stop * k + l];
            let (phi, _, _) = smax_pair_weights(a_p, c_p, sharp);
            *p = ObjectiveParts { phi, a_p, c_p };
        }
    }

    /// Batched [`MdgObjective::eval_grad_with`]: one shared-tape
    /// forward/backward sweep computes `k` objective values and their
    /// gradients at once. `grads` is resized to `n_vars * k`
    /// (lane-major, `grads[j*k + l]`) and overwritten; allocation-free
    /// after warm-up given a warm `scratch`. At [`Sharpness::Exact`]
    /// each lane runs the scalar reverse-mode path (see
    /// [`MdgObjective::eval_batch_with`]).
    pub fn eval_grad_batch_with(
        &self,
        xs: &[f64],
        k: usize,
        sharp: Sharpness,
        scratch: &mut BatchEvalScratch,
        grads: &mut Vec<f64>,
        parts: &mut [ObjectiveParts],
    ) {
        let n = self.g.node_count();
        debug_assert_eq!(xs.len(), n * k);
        debug_assert_eq!(parts.len(), k);
        grads.clear();
        grads.resize(n * k, 0.0);
        if matches!(sharp, Sharpness::Exact) {
            let BatchEvalScratch { scalar, x_tmp, grad_tmp, .. } = scratch;
            x_tmp.resize(n, 0.0);
            for (l, p) in parts.iter_mut().enumerate() {
                for j in 0..n {
                    x_tmp[j] = xs[j * k + l];
                }
                *p = self.eval_grad_with(x_tmp, sharp, scalar, grad_tmp);
                for j in 0..n {
                    grads[j * k + l] = grad_tmp[j];
                }
            }
            return;
        }
        self.forward_sweep_batch(xs, k, sharp, scratch, parts);
        self.backward_sweep_batch(k, scratch, grads);
    }

    /// Batched forward sweep: lane-major counterpart of
    /// [`MdgObjective::forward_sweep`]. Fills the K-wide finish times,
    /// expression tapes, and DAG-level `smax` weights in `scratch`,
    /// writes per-lane parts, and leaves the per-lane `Phi` combination
    /// weights in `scratch.a_seed` / `scratch.c_seed` for the backward
    /// sweep. Smooth sharpness only — exact mode bypasses at the entry
    /// points.
    fn forward_sweep_batch(
        &self,
        xs: &[f64],
        k: usize,
        sharp: Sharpness,
        scratch: &mut BatchEvalScratch,
        parts: &mut [ObjectiveParts],
    ) {
        debug_assert!(matches!(sharp, Sharpness::Smooth(_)));
        let n = self.g.node_count();
        scratch.ensure(n, self.g.edge_count(), k);
        let t = &self.tapes;
        scratch.ensure_tape(t.total_vals, t.total_wts, k);
        let BatchEvalScratch {
            y,
            tape_w,
            stack,
            t_val,
            tape_vals,
            tape_wts,
            var_cache,
            area,
            c_seed,
            a_seed,
            ..
        } = scratch;
        var_cache.fill(xs, n, k, t.needs_halves);
        let inv_p = 1.0 / self.machine.procs as f64;
        for &v in self.g.topo_order() {
            let vk = v.0 * k;
            let in_edges = self.g.in_edges(v);
            let base = stack.len();
            for &e in in_edges {
                let m = self.g.edge(e).src;
                let (vo, wo) = t.edge_off[e.0];
                let c = &t.edge[e.0];
                c.eval_tape_batch(
                    k,
                    sharp,
                    stack,
                    &mut tape_vals[vo * k..(vo + c.vals_len()) * k],
                    &mut tape_wts[wo * k..(wo + c.wts_len()) * k],
                    var_cache,
                );
                let top = stack.len() - k;
                lanes_add(&mut stack[top..], &y[m * k..(m + 1) * k]);
            }
            // Candidate smax: weights land in a scratch region pushed
            // above the candidates, then scatter to the edge tape rows.
            let kk = in_edges.len();
            if kk > 0 {
                let sl = stack.len();
                stack.resize(sl + kk * k + 3 * k, 0.0);
                let (cands, rest) = stack[base..].split_at_mut(kk * k);
                let (wreg, scr) = rest.split_at_mut(kk * k);
                smax_batch(k, kk, sharp, cands, wreg, scr);
                for (i, &e) in in_edges.iter().enumerate() {
                    tape_w[e.0 * k..(e.0 + 1) * k].copy_from_slice(&wreg[i * k..(i + 1) * k]);
                }
                y[vk..vk + k].copy_from_slice(&cands[..k]);
            }
            stack.truncate(base);
            let (vo, wo) = t.node_off[v.0];
            let c = &t.node[v.0];
            c.eval_tape_batch(
                k,
                sharp,
                stack,
                &mut tape_vals[vo * k..(vo + c.vals_len()) * k],
                &mut tape_wts[wo * k..(wo + c.wts_len()) * k],
                var_cache,
            );
            let top = stack.len() - k;
            let tv = &stack[top..];
            t_val[vk..vk + k].copy_from_slice(tv);
            for l in 0..k {
                area[l] += tv[l] * var_cache.e[vk + l];
            }
            lanes_add(&mut y[vk..vk + k], &stack[top..]);
            stack.truncate(base);
        }
        let stop = self.g.stop().0;
        for (l, p) in parts.iter_mut().enumerate() {
            let a_p = inv_p * area[l];
            let c_p = y[stop * k + l];
            let (phi, w_a, w_c) = smax_pair_weights(a_p, c_p, sharp);
            *p = ObjectiveParts { phi, a_p, c_p };
            a_seed[l] = w_a;
            c_seed[l] = w_c;
        }
    }

    /// Batched backward sweep: pushes the per-lane `Phi` seeds recorded
    /// by [`MdgObjective::forward_sweep_batch`] through the lane-major
    /// tapes, accumulating into `grads` (`n_vars * k`, zeroed by the
    /// caller). The scalar sweep's skip-if-zero guards become
    /// all-lanes-zero guards; per lane this only ever adds exact `+0.0`
    /// terms (adjoints and tape values are nonnegative), so each lane
    /// matches its scalar counterpart.
    fn backward_sweep_batch(&self, k: usize, scratch: &mut BatchEvalScratch, grads: &mut [f64]) {
        let t = &self.tapes;
        let BatchEvalScratch {
            adjoint,
            tape_w,
            stack,
            t_val,
            tape_vals,
            tape_wts,
            var_cache,
            a_tmp,
            seed_tmp,
            c_seed,
            a_seed,
            ..
        } = scratch;
        let inv_p = 1.0 / self.machine.procs as f64;
        for a in adjoint.iter_mut() {
            *a = 0.0;
        }
        let stop = self.g.stop().0;
        adjoint[stop * k..(stop + 1) * k].copy_from_slice(c_seed);
        for &v in self.g.topo_order().iter().rev() {
            let vk = v.0 * k;
            a_tmp.copy_from_slice(&adjoint[vk..vk + k]);
            for l in 0..k {
                let w_area = a_seed[l] * inv_p;
                let e_v = var_cache.e[vk + l];
                grads[vk + l] += w_area * t_val[vk + l] * e_v;
                seed_tmp[l] = a_tmp[l] + w_area * e_v;
            }
            let (vo, wo) = t.node_off[v.0];
            let c = &t.node[v.0];
            c.backprop_batch(
                k,
                seed_tmp,
                &tape_vals[vo * k..(vo + c.vals_len()) * k],
                &tape_wts[wo * k..(wo + c.wts_len()) * k],
                grads,
                stack,
            );
            for &e in self.g.in_edges(v) {
                let ek = e.0 * k;
                for l in 0..k {
                    seed_tmp[l] = a_tmp[l] * tape_w[ek + l];
                }
                let m = self.g.edge(e).src;
                let (vo, wo) = t.edge_off[e.0];
                let c = &t.edge[e.0];
                c.backprop_batch(
                    k,
                    seed_tmp,
                    &tape_vals[vo * k..(vo + c.vals_len()) * k],
                    &tape_wts[wo * k..(wo + c.wts_len()) * k],
                    grads,
                    stack,
                );
                lanes_add(&mut adjoint[m * k..(m + 1) * k], seed_tmp);
            }
        }
    }

    /// Multi-seed backward sweep over one **scalar** tape (recorded by
    /// [`MdgObjective::forward_sweep`]): pushes `k` independent
    /// `(c_seed, area_seed)` lane pairs through a single reverse walk,
    /// accumulating into the lane-major `grads` (`n_vars * k`, zeroed
    /// by the caller). Every per-lane operation is the exact arithmetic
    /// of a scalar [`MdgObjective::backward_sweep`] call with that
    /// lane's seeds, so lanes are bit-identical to sequential scalar
    /// sweeps; the shared-tape `w == 0` edge skip is lane-uniform.
    fn backward_sweep_multi(
        &self,
        k: usize,
        c_seeds: &[f64],
        area_seeds: &[f64],
        scratch: &mut EvalScratch,
        grads: &mut [f64],
    ) {
        let t = &self.tapes;
        let n = self.g.node_count();
        let EvalScratch {
            tape_w,
            stack,
            t_val,
            tape_vals,
            tape_wts,
            var_cache,
            multi_adj,
            multi_tmp,
            ..
        } = scratch;
        multi_adj.clear();
        multi_adj.resize(n * k, 0.0);
        multi_tmp.clear();
        multi_tmp.resize(3 * k, 0.0);
        let (wa, rest) = multi_tmp.split_at_mut(k);
        let (a_tmp, seed) = rest.split_at_mut(k);
        let inv_p = 1.0 / self.machine.procs as f64;
        for l in 0..k {
            wa[l] = area_seeds[l] * inv_p;
        }
        let stop = self.g.stop().0;
        multi_adj[stop * k..(stop + 1) * k].copy_from_slice(c_seeds);
        for &v in self.g.topo_order().iter().rev() {
            let vk = v.0 * k;
            a_tmp.copy_from_slice(&multi_adj[vk..vk + k]);
            let e_v = var_cache.e[v.0];
            for l in 0..k {
                grads[vk + l] += wa[l] * t_val[v.0] * e_v;
                seed[l] = a_tmp[l] + wa[l] * e_v;
            }
            let (vo, wo) = t.node_off[v.0];
            let c = &t.node[v.0];
            c.backprop_multi(
                k,
                seed,
                &tape_vals[vo..vo + c.vals_len()],
                &tape_wts[wo..wo + c.wts_len()],
                grads,
                stack,
            );
            for &e in self.g.in_edges(v) {
                let w = tape_w[e.0];
                if w == 0.0 {
                    continue;
                }
                for l in 0..k {
                    seed[l] = a_tmp[l] * w;
                }
                let m = self.g.edge(e).src;
                let (vo, wo) = t.edge_off[e.0];
                let c = &t.edge[e.0];
                c.backprop_multi(
                    k,
                    seed,
                    &tape_vals[vo..vo + c.vals_len()],
                    &tape_wts[wo..wo + c.wts_len()],
                    grads,
                    stack,
                );
                for l in 0..k {
                    multi_adj[m * k + l] += seed[l];
                }
            }
        }
    }

    /// Forward sweep of the reverse-mode pass: fills `scratch.y` with
    /// per-node finish times and `scratch.tape_w` with the `smax`
    /// weight of every in-edge candidate (each edge is an in-edge of
    /// exactly one node, so edge id indexes the tape collision-free).
    /// Returns the objective parts and the `Phi` combination weights.
    fn forward_sweep(
        &self,
        x: &[f64],
        sharp: Sharpness,
        scratch: &mut EvalScratch,
    ) -> (ObjectiveParts, f64, f64) {
        scratch.ensure(self.g.node_count(), self.g.edge_count());
        let t = &self.tapes;
        scratch.ensure_tape(t.total_vals, t.total_wts);
        let EvalScratch { y, tape_w, stack, tape_vals, tape_wts, var_cache, t_val, .. } = scratch;
        let smooth = matches!(sharp, Sharpness::Smooth(_));
        var_cache.fill(x, smooth && t.needs_halves);
        let vc = if smooth { Some(&*var_cache) } else { None };
        let inv_p = 1.0 / self.machine.procs as f64;
        let mut area_acc = 0.0;
        for &v in self.g.topo_order() {
            let in_edges = self.g.in_edges(v);
            let base = stack.len();
            for &e in in_edges {
                let m = self.g.edge(e).src;
                let (vo, wo) = t.edge_off[e.0];
                let c = &t.edge[e.0];
                let de = c.eval_tape(
                    x,
                    sharp,
                    stack,
                    &mut tape_vals[vo..vo + c.vals_len()],
                    &mut tape_wts[wo..wo + c.wts_len()],
                    vc,
                );
                let cand = y[m] + de;
                stack.push(cand);
            }
            // The candidate smax's weights land in scratch space pushed
            // right above the candidates, then move to the edge tape.
            let k = in_edges.len();
            stack.resize(base + 2 * k, 0.0);
            let (cands, wts) = stack[base..].split_at_mut(k);
            let start = smax_weights_fast(cands, sharp, wts);
            for (i, &e) in in_edges.iter().enumerate() {
                tape_w[e.0] = stack[base + k + i];
            }
            stack.truncate(base);
            let (vo, wo) = t.node_off[v.0];
            let c = &t.node[v.0];
            let tv = c.eval_tape(
                x,
                sharp,
                stack,
                &mut tape_vals[vo..vo + c.vals_len()],
                &mut tape_wts[wo..wo + c.wts_len()],
                vc,
            );
            t_val[v.0] = tv;
            area_acc += tv * var_cache.e[v.0];
            y[v.0] = start + tv;
        }
        let a_p = inv_p * area_acc;
        let c_p = y[self.g.stop().0];
        let (phi, w_a, w_c) = smax_pair_weights(a_p, c_p, sharp);
        (ObjectiveParts { phi, a_p, c_p }, w_a, w_c)
    }

    /// Backward sweep: seed the STOP node's adjoint with `c_seed`
    /// (`∂Φ/∂C_p`, or 1 for a raw `C_p` gradient), walk the topological
    /// order in reverse, and for each node with a non-zero adjoint `a_v`
    /// accumulate `a_v·∇T_v` plus, per in-edge with tape weight `w_e`,
    /// `a_v·w_e·∇d_e` into `grad` and `a_v·w_e` into the source's
    /// adjoint.
    ///
    /// The `A_p` gradient rides the same pass: with
    /// `A_p = (1/p) Σ T_v e^{x_v}`, each node tape gets the extra seed
    /// `area_seed·e^{x_v}/p` (its `∂A_p/∂T_v`) folded into its single
    /// replay, and the product-rule term `area_seed·T_v·e^{x_v}/p` goes
    /// straight into `grad[v]`. Pure tape replay either way: every
    /// monomial value and `max` weight was recorded by the forward
    /// sweep, so this pass performs no `exp`/`powf` at all.
    fn backward_sweep(
        &self,
        c_seed: f64,
        area_seed: f64,
        scratch: &mut EvalScratch,
        grad: &mut [f64],
    ) {
        let t = &self.tapes;
        let EvalScratch { adjoint, tape_w, stack, tape_vals, tape_wts, var_cache, t_val, .. } =
            scratch;
        let w_area = area_seed / self.machine.procs as f64;
        for a in adjoint.iter_mut() {
            *a = 0.0;
        }
        adjoint[self.g.stop().0] = c_seed;
        for &v in self.g.topo_order().iter().rev() {
            let a_v = adjoint[v.0];
            let seed_v = if w_area != 0.0 {
                let e_v = var_cache.e[v.0];
                grad[v.0] += w_area * t_val[v.0] * e_v;
                a_v + w_area * e_v
            } else {
                a_v
            };
            if seed_v != 0.0 {
                let (vo, wo) = t.node_off[v.0];
                let c = &t.node[v.0];
                c.backprop(
                    seed_v,
                    &tape_vals[vo..vo + c.vals_len()],
                    &tape_wts[wo..wo + c.wts_len()],
                    grad,
                    stack,
                );
            }
            if a_v == 0.0 {
                continue;
            }
            for &e in self.g.in_edges(v) {
                let w = tape_w[e.0];
                if w == 0.0 {
                    continue;
                }
                let m = self.g.edge(e).src;
                let (vo, wo) = t.edge_off[e.0];
                let c = &t.edge[e.0];
                c.backprop(
                    a_v * w,
                    &tape_vals[vo..vo + c.vals_len()],
                    &tape_wts[wo..wo + c.wts_len()],
                    grad,
                    stack,
                );
                adjoint[m] += a_v * w;
            }
        }
    }

    /// The pre-adjoint forward-mode gradient (dense `O(n)` vector per
    /// node, `O(E·n)` time). Kept as an independently-derived reference
    /// implementation for the gradient property tests and the
    /// `bench-solve` speedup measurement; not used by the solver.
    pub fn eval_grad_forward(&self, x: &[f64], sharp: Sharpness) -> (ObjectiveParts, Vec<f64>) {
        let n = self.g.node_count();
        let mut grad_a = vec![0.0; n];
        let a_p = self.area.eval_grad(x, sharp, 1.0, &mut grad_a);

        // Forward pass where each node's finish time carries a dense
        // gradient vector.
        let mut y_val = vec![0.0_f64; n];
        let mut y_grad: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &v in self.g.topo_order() {
            let in_edges = self.g.in_edges(v);
            let mut cand_vals = Vec::with_capacity(in_edges.len());
            let mut cand_grads: Vec<Vec<f64>> = Vec::with_capacity(in_edges.len());
            for &e in in_edges {
                let m = self.g.edge(e).src;
                let mut ge = vec![0.0; n];
                let de = self.edge_d[e.0].eval_grad(x, sharp, 1.0, &mut ge);
                for (gi, &gm) in ge.iter_mut().zip(&y_grad[m]) {
                    *gi += gm;
                }
                cand_vals.push(y_val[m] + de);
                cand_grads.push(ge);
            }
            let (start, weights) = smax_weights(&cand_vals, sharp);
            let mut g_here = vec![0.0; n];
            for (w, cg) in weights.iter().zip(&cand_grads) {
                if *w != 0.0 {
                    for (gi, &ci) in g_here.iter_mut().zip(cg) {
                        *gi += w * ci;
                    }
                }
            }
            let t_val = self.node_t[v.0].eval_grad(x, sharp, 1.0, &mut g_here);
            y_val[v.0] = start + t_val;
            y_grad[v.0] = g_here;
        }
        let c_p = y_val[self.g.stop().0];
        let grad_c = std::mem::take(&mut y_grad[self.g.stop().0]);

        let (phi, w) = smax_weights(&[a_p, c_p], sharp);
        let grad: Vec<f64> =
            grad_a.iter().zip(&grad_c).map(|(&ga, &gc)| w[0] * ga + w[1] * gc).collect();
        (ObjectiveParts { phi, a_p, c_p }, grad)
    }

    /// Convert a log-space point to an [`Allocation`] (clamped to
    /// `[1, p]`).
    pub fn allocation_from_x(&self, x: &[f64]) -> Allocation {
        let pmax = self.machine.procs as f64;
        Allocation::new(x.iter().map(|&xi| xi.exp().clamp(1.0, pmax)).collect())
    }

    /// Exact (non-smoothed, true-`max`) `Phi` breakdown for an allocation,
    /// via `paradigm-cost`'s ground-truth evaluator.
    pub fn exact_phi(&self, alloc: &Allocation) -> PhiBreakdown {
        MdgWeights::compute(self.g, &self.machine, alloc).phi(self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, AmdahlParams, ArrayTransfer, KernelCostTable,
        MdgBuilder,
    };

    fn fig1() -> Mdg {
        example_fig1_mdg()
    }

    #[test]
    fn exact_eval_matches_cost_crate() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let obj = MdgObjective::new(&g, m);
        for q in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
            let x = vec![q.ln(); g.node_count()];
            let parts = obj.eval(&x, Sharpness::Exact);
            let alloc = Allocation::uniform(&g, q);
            let exact = obj.exact_phi(&alloc);
            assert!(
                (parts.phi - exact.phi).abs() < 1e-12 * exact.phi.max(1.0),
                "q={q}: {} vs {}",
                parts.phi,
                exact.phi
            );
            assert!((parts.a_p - exact.a_p).abs() < 1e-12 * exact.a_p.max(1.0));
            assert!((parts.c_p - exact.c_p).abs() < 1e-12 * exact.c_p.max(1.0));
        }
    }

    #[test]
    fn smooth_upper_bounds_exact() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(32);
        let obj = MdgObjective::new(&g, m);
        let x = vec![4.0_f64.ln(); g.node_count()];
        let exact = obj.eval(&x, Sharpness::Exact);
        for s in [2.0, 8.0, 32.0] {
            let smooth = obj.eval(&x, Sharpness::Smooth(s));
            assert!(smooth.phi >= exact.phi - 1e-12);
            assert!(smooth.c_p >= exact.c_p - 1e-12);
        }
        // Sharper smoothing is tighter.
        let s8 = obj.eval(&x, Sharpness::Smooth(8.0));
        let s64 = obj.eval(&x, Sharpness::Smooth(64.0));
        assert!(s64.phi <= s8.phi + 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let obj = MdgObjective::new(&g, m);
        let n = g.node_count();
        let sharp = Sharpness::Smooth(8.0);
        // A generic interior point.
        let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * (i as f64).sin()).collect();
        let (_, grad) = obj.eval_grad(&x, sharp);
        let h = 1e-6;
        for j in 0..n {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[j] += h;
            xm[j] -= h;
            let fd = (obj.eval(&xp, sharp).phi - obj.eval(&xm, sharp).phi) / (2.0 * h);
            assert!(
                (grad[j] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "var {j}: analytic {} vs fd {}",
                grad[j],
                fd
            );
        }
    }

    #[test]
    fn structural_variables_have_zero_gradient() {
        let g = fig1();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let x = vec![0.5; g.node_count()];
        let (_, grad) = obj.eval_grad(&x, Sharpness::Smooth(8.0));
        assert_eq!(grad[g.start().0], 0.0);
        assert_eq!(grad[g.stop().0], 0.0);
    }

    #[test]
    fn fig1_objective_prefers_mixed_allocation() {
        // At the paper's mixed allocation (N1 on 4, N2/N3 on 2) the exact
        // C_p equals 14.3 s and A_p = (5.2*4 + 9.1*2 + 9.1*2)/4 = 14.3 s.
        let g = fig1();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let mut alloc = Allocation::uniform(&g, 1.0);
        alloc.set(NodeId(1), 4.0);
        alloc.set(NodeId(2), 2.0);
        alloc.set(NodeId(3), 2.0);
        let mixed = obj.exact_phi(&alloc);
        assert!((mixed.c_p - 14.3).abs() < 1e-9);
        assert!((mixed.a_p - 14.3).abs() < 1e-9);
        // The all-4 allocation has a *lower bound* Phi of max(A_p, C_p)
        // with A_p = 15.6 (area) — worse than mixed.
        let all4 = obj.exact_phi(&Allocation::uniform(&g, 4.0));
        assert!((all4.a_p - 15.6).abs() < 1e-9);
        assert!(all4.phi > mixed.phi);
    }

    #[test]
    fn objective_is_logspace_convex_on_cm5() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let obj = MdgObjective::new(&g, m);
        let n = g.node_count();
        let ub = obj.x_upper();
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..n).map(|i| ((k * 31 + i * 7) % 97) as f64 / 97.0 * ub).collect())
            .collect();
        for sharp in [Sharpness::Exact, Sharpness::Smooth(16.0)] {
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let mid: Vec<f64> =
                        pts[i].iter().zip(&pts[j]).map(|(a, b)| (a + b) / 2.0).collect();
                    let lhs = obj.eval(&mid, sharp).phi;
                    let rhs = 0.5 * (obj.eval(&pts[i], sharp).phi + obj.eval(&pts[j], sharp).phi);
                    assert!(
                        lhs <= rhs + 1e-9 * rhs.abs(),
                        "objective not convex at pair ({i},{j}) with {sharp:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_d_transfers_build_without_max_nodes() {
        let mut b = MdgBuilder::new("2d");
        let x = b.compute("x", AmdahlParams::new(0.1, 1.0));
        let y = b.compute("y", AmdahlParams::new(0.1, 1.0));
        b.edge(x, y, vec![ArrayTransfer::matrix_2d(64, 64)]);
        let g = b.finish().unwrap();
        let obj = MdgObjective::new(&g, Machine::cm5(8));
        // 2D costs are pure posynomials: no Max nodes in T expressions.
        fn has_max(e: &Expr) -> bool {
            match e {
                Expr::Mono(_) => false,
                Expr::Sum(v) => v.iter().any(has_max),
                Expr::Max(_) => true,
            }
        }
        for (id, _) in g.nodes() {
            assert!(!has_max(obj.node_expr(id)), "2D transfer produced a Max node");
        }
    }

    #[test]
    fn allocation_from_x_clamps() {
        let g = fig1();
        let obj = MdgObjective::new(&g, Machine::cm5(4));
        let x = vec![-1.0, 10.0, 0.5, 0.0, 0.0];
        let a = obj.allocation_from_x(&x);
        assert_eq!(a.get(NodeId(0)), 1.0);
        assert_eq!(a.get(NodeId(1)), 4.0);
        assert!((a.get(NodeId(2)) - 0.5_f64.exp()).abs() < 1e-12);
    }
}
