//! # paradigm-solver — convex programming allocation
//!
//! Solves the paper's Section 2 allocation problem: choose (continuous)
//! processor counts `p_i ∈ [1, p]` for every MDG node, minimizing
//!
//! ```text
//! Phi = max(A_p, C_p)
//! A_p = (1/p) Σ T_i p_i                      (average finish time)
//! C_p = y_STOP,  y_i = max_{m∈PRED}(y_m + t^D_mi) + T_i
//! ```
//!
//! Under the substitution `x_i = ln p_i`, every cost component is a
//! *generalized posynomial* (sums and pointwise maxima of monomials), so
//! both `A_p` and `C_p` — and hence `Phi` — are convex in `x`
//! (Section 2's claim; the one exception, the 1D network term when
//! `t_n > 0`, is replaced by a monomial upper bound; see
//! [`objective`]). A convex function over a box has no spurious local
//! minima, so a projected-gradient method with a smoothed `max` finds the
//! global optimum.
//!
//! Module map:
//! * [`expr`] — generalized posynomial expression trees with smoothed
//!   evaluation and gradients in log-space;
//! * [`compiled`] — flat, tape-recording compiled form of those trees
//!   backing the hot forward/backward sweeps (no re-evaluation on the
//!   backward pass, integer-sharpness `smax` via repeated squaring);
//! * [`objective`] — assembles `Phi` for an (MDG, machine) pair;
//! * [`solve`] — projected gradient with Armijo line search, sharpness
//!   annealing, and multi-start;
//! * [`bruteforce`] — exact power-of-two enumeration oracle for small
//!   graphs (used to validate solver quality);
//! * [`convexity`] — numeric convexity probes used by tests/ablations;
//! * [`error`] — typed solver failures ([`SolverError`]) and the
//!   degradation-ladder tiers ([`FallbackTier`]) recorded by
//!   [`allocate_resilient`];
//! * [`workspace`] — reusable, pooled scratch buffers that make the
//!   descent loop allocation-free after warm-up;
//! * [`alloc_count`] — an optional counting global allocator backing the
//!   zero-allocation test and the `bench-solve` allocs/iter metric.

pub mod alloc_count;
pub mod batch;
pub mod bruteforce;
pub mod compiled;
pub mod convexity;
pub mod coordinate;
pub mod error;
pub mod expr;
pub mod objective;
pub mod race_suites;
pub mod solve;
pub mod workspace;

pub use alloc_count::{allocation_count, CountingAllocator};
pub use bruteforce::{brute_force_pow2, BruteForceResult};
pub use compiled::CompiledExpr;
pub use coordinate::{allocate_coordinate, CoordinateConfig, CoordinateResult};
pub use error::{FallbackTier, SolverError};
pub use expr::{Expr, Monomial};
pub use objective::MdgObjective;
pub use solve::{
    allocate, allocate_resilient, descend_multi_stage, descend_stage, equal_split_allocation,
    optimality_residual, try_allocate, AllocationResult, SolverConfig,
};
pub use workspace::{
    BatchEvalScratch, BatchWorkspace, EvalScratch, PooledBatchWorkspace, PooledWorkspace,
    SolverWorkspace,
};
