//! Reusable solver scratch memory.
//!
//! Every hot entry point of the solver — the objective's forward/backward
//! sweeps, the projected-gradient descent loop, coordinate descent's
//! golden-section evaluations — works out of a [`SolverWorkspace`]: a set
//! of preallocated buffers sized for one (MDG, machine) objective. After
//! the first call at a given graph size ("warm-up"), no code path that
//! holds a workspace performs any heap allocation per iteration; the
//! `alloc_free` integration test asserts this with a counting allocator.
//!
//! The workspace splits into [`EvalScratch`] (the objective's sweep
//! buffers) and the descent loop's own iterate/gradient buffers, so the
//! loop can hand `&mut scratch` to the objective while holding mutable
//! borrows of its gradient buffers — disjoint fields, disjoint borrows.
//!
//! Workspaces are checked out of a small global pool
//! ([`acquire`]/[`PooledWorkspace`]) so long-lived callers — the serving
//! layer's worker threads, the multistart solver's scoped threads —
//! reuse warm buffers across solves instead of re-growing them. The pool
//! is deliberately simple: a mutex-guarded free list capped at
//! [`POOL_CAP`] entries; contention is one lock per *solve start*, not
//! per iteration, so it never shows up in profiles.

use crate::compiled::VarCache;
use paradigm_race::plock;
use paradigm_race::sync::atomic::{AtomicU64, Ordering};
use paradigm_race::sync::Mutex;
use std::ops::{Deref, DerefMut};

/// Sweep buffers for one objective evaluation (forward value sweep,
/// smax-weight tape, backward adjoint sweep, and the shared value stack
/// that replaces per-node candidate `Vec`s).
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per-node finish times `y_v` of the forward `C_p` sweep.
    pub(crate) y: Vec<f64>,
    /// Per-node adjoints of the backward sweep (`∂Φ/∂y_v`).
    pub(crate) adjoint: Vec<f64>,
    /// Per-edge `smax` weight recorded by the forward sweep (the tape;
    /// each edge is an in-edge of exactly one node, so edge id is a
    /// collision-free index).
    pub(crate) tape_w: Vec<f64>,
    /// Shared value stack for expression `max` nodes and the per-node
    /// candidate lists of the DAG recurrence.
    pub(crate) stack: Vec<f64>,
    /// Per-node `T_v` value of the forward sweep (finish time minus
    /// start time), reused by the fused `A_p` backward pass.
    pub(crate) t_val: Vec<f64>,
    /// Per-op values of every compiled expression, recorded by the
    /// forward sweep and replayed by `backprop` (offsets are owned by
    /// the objective's tape layout).
    pub(crate) tape_vals: Vec<f64>,
    /// Per-`max` gradient weights of every compiled expression; same
    /// lifecycle as `tape_vals`.
    pub(crate) tape_wts: Vec<f64>,
    /// Per-variable `exp(x_j)` caches filled once per smoothed
    /// objective call (see [`VarCache`]).
    pub(crate) var_cache: VarCache,
}

impl EvalScratch {
    /// Resize the sweep buffers for a graph with `nodes` nodes and
    /// `edges` edges and zero them. Capacity is retained, so repeated
    /// calls at the same (or smaller) size allocate nothing.
    pub(crate) fn ensure(&mut self, nodes: usize, edges: usize) {
        fn fit(v: &mut Vec<f64>, len: usize) {
            v.clear();
            v.resize(len, 0.0);
        }
        fit(&mut self.y, nodes);
        fit(&mut self.adjoint, nodes);
        fit(&mut self.tape_w, edges);
        fit(&mut self.t_val, nodes);
        // `stack` grows on demand and retains its high-water capacity.
    }

    /// Resize the expression tapes to an objective's total compiled
    /// sizes. No zeroing: the forward sweep overwrites every slot it
    /// later reads. Capacity is retained across calls.
    pub(crate) fn ensure_tape(&mut self, vals: usize, wts: usize) {
        self.tape_vals.resize(vals, 0.0);
        self.tape_wts.resize(wts, 0.0);
    }
}

/// Preallocated buffers for one solver thread: the objective's
/// [`EvalScratch`] plus the descent loop's iterate and gradient buffers.
///
/// Construct one directly for a dedicated thread, or [`acquire`] a
/// pooled one; pass it by `&mut` to the `*_with` entry points on
/// [`crate::MdgObjective`] and to [`crate::descend_stage`].
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Objective sweep buffers (public so callers holding their own
    /// gradient vectors can use the `*_with` objective entry points).
    pub scratch: EvalScratch,
    /// Descent-loop gradient at the current iterate.
    pub(crate) grad: Vec<f64>,
    /// Descent-loop gradient at the accepted trial iterate.
    pub(crate) grad_new: Vec<f64>,
    /// Descent-loop trial iterate.
    pub(crate) trial: Vec<f64>,
    /// Dense gradient of `A_p` for the stationarity residual.
    pub(crate) grad_a: Vec<f64>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are then
    /// retained across calls.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// Upper bound on pooled idle workspaces; beyond this, released
/// workspaces are simply dropped. Sized for a serving layer running a
/// few dozen workers, not for unbounded retention.
const POOL_CAP: usize = 64;

static POOL: Mutex<Vec<SolverWorkspace>> = Mutex::new(Vec::new());
static ACQUIRES: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);

/// A workspace checked out of the global pool; returned on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<SolverWorkspace>,
}

impl Deref for PooledWorkspace {
    type Target = SolverWorkspace;
    fn deref(&self) -> &SolverWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace {
    fn deref_mut(&mut self) -> &mut SolverWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            let mut pool = plock(&POOL);
            if pool.len() < POOL_CAP {
                pool.push(ws);
            }
        }
    }
}

/// Check a workspace out of the global pool (creating a cold one when
/// the pool is empty). The warm buffers inside survive across acquire /
/// release cycles, which is what makes repeat solves — e.g. the serving
/// layer's workers answering cache misses — allocation-free after the
/// first request at a given graph size.
pub fn acquire() -> PooledWorkspace {
    ACQUIRES.fetch_add(1, Ordering::Relaxed);
    let ws = {
        let mut pool = plock(&POOL);
        pool.pop()
    };
    let ws = match ws {
        Some(w) => {
            REUSES.fetch_add(1, Ordering::Relaxed);
            w
        }
        None => SolverWorkspace::new(),
    };
    PooledWorkspace { ws: Some(ws) }
}

/// Lifetime counters of the global pool: `(acquires, reuses)`. A reuse
/// is an acquire satisfied by a previously released (warm) workspace.
/// Exposed so the serving layer can report how often its workers hit
/// warm buffers.
pub fn pool_counters() -> (u64, u64) {
    (ACQUIRES.load(Ordering::Relaxed), REUSES.load(Ordering::Relaxed))
}

/// Drop every pooled workspace and zero the counters. The pool is
/// process-global; the model checker re-runs a closure under many
/// schedules and needs each run to start from the identical empty pool,
/// so its suites call this at the top of every execution. Harmless (but
/// pointless) anywhere else.
#[doc(hidden)]
pub fn reset_pool() {
    plock(&POOL).clear();
    ACQUIRES.store(0, Ordering::Relaxed);
    REUSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_workspaces() {
        let (a0, _) = pool_counters();
        {
            let mut ws = acquire();
            ws.scratch.ensure(8, 12);
            assert_eq!(ws.scratch.y.len(), 8);
            assert_eq!(ws.scratch.tape_w.len(), 12);
        }
        // The released workspace (or another thread's) comes back warm.
        let ws = acquire();
        let (a1, r1) = pool_counters();
        assert!(a1 >= a0 + 2);
        assert!(r1 >= 1, "second acquire should reuse a released workspace");
        drop(ws);
    }

    #[test]
    fn ensure_is_exact_and_idempotent() {
        let mut s = EvalScratch::default();
        s.ensure(5, 7);
        s.adjoint[3] = 1.0;
        s.ensure(5, 7);
        assert_eq!(s.adjoint[3], 0.0, "ensure re-zeroes sweep buffers");
        s.ensure(2, 3);
        assert_eq!(s.y.len(), 2);
        assert_eq!(s.tape_w.len(), 3);
    }
}
