//! Reusable solver scratch memory.
//!
//! Every hot entry point of the solver — the objective's forward/backward
//! sweeps, the projected-gradient descent loop, coordinate descent's
//! golden-section evaluations — works out of a [`SolverWorkspace`]: a set
//! of preallocated buffers sized for one (MDG, machine) objective. After
//! the first call at a given graph size ("warm-up"), no code path that
//! holds a workspace performs any heap allocation per iteration; the
//! `alloc_free` integration test asserts this with a counting allocator.
//!
//! The workspace splits into [`EvalScratch`] (the objective's sweep
//! buffers) and the descent loop's own iterate/gradient buffers, so the
//! loop can hand `&mut scratch` to the objective while holding mutable
//! borrows of its gradient buffers — disjoint fields, disjoint borrows.
//!
//! Workspaces are checked out of a small global pool
//! ([`acquire`]/[`PooledWorkspace`]) so long-lived callers — the serving
//! layer's worker threads, the multistart solver's scoped threads —
//! reuse warm buffers across solves instead of re-growing them. The pool
//! is deliberately simple: a mutex-guarded free list capped at
//! [`POOL_CAP`] entries; contention is one lock per *solve start*, not
//! per iteration, so it never shows up in profiles.

use crate::batch::BatchVarCache;
use crate::compiled::VarCache;
use crate::objective::ObjectiveParts;
use paradigm_race::plock;
use paradigm_race::sync::atomic::{AtomicU64, Ordering};
use paradigm_race::sync::Mutex;
use std::ops::{Deref, DerefMut};

/// Sweep buffers for one objective evaluation (forward value sweep,
/// smax-weight tape, backward adjoint sweep, and the shared value stack
/// that replaces per-node candidate `Vec`s).
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Per-node finish times `y_v` of the forward `C_p` sweep.
    pub(crate) y: Vec<f64>,
    /// Per-node adjoints of the backward sweep (`∂Φ/∂y_v`).
    pub(crate) adjoint: Vec<f64>,
    /// Per-edge `smax` weight recorded by the forward sweep (the tape;
    /// each edge is an in-edge of exactly one node, so edge id is a
    /// collision-free index).
    pub(crate) tape_w: Vec<f64>,
    /// Shared value stack for expression `max` nodes and the per-node
    /// candidate lists of the DAG recurrence.
    pub(crate) stack: Vec<f64>,
    /// Per-node `T_v` value of the forward sweep (finish time minus
    /// start time), reused by the fused `A_p` backward pass.
    pub(crate) t_val: Vec<f64>,
    /// Per-op values of every compiled expression, recorded by the
    /// forward sweep and replayed by `backprop` (offsets are owned by
    /// the objective's tape layout).
    pub(crate) tape_vals: Vec<f64>,
    /// Per-`max` gradient weights of every compiled expression; same
    /// lifecycle as `tape_vals`.
    pub(crate) tape_wts: Vec<f64>,
    /// Per-variable `exp(x_j)` caches filled once per smoothed
    /// objective call (see [`VarCache`]).
    pub(crate) var_cache: VarCache,
    /// Adjoint stack of the multi-seed backward sweep (the `Φ` and
    /// `A_p`/`C_p` seed lanes pushed through one scalar tape together).
    pub(crate) multi_adj: Vec<f64>,
    /// Lane-major gradient accumulator of the multi-seed backward
    /// sweep (`n_vars * lanes`).
    pub(crate) multi_grad: Vec<f64>,
    /// Per-lane temporaries of the multi-seed backward sweep
    /// (`3 * lanes`: area weights | adjoint row copy | seed row).
    pub(crate) multi_tmp: Vec<f64>,
}

impl EvalScratch {
    /// Resize the sweep buffers for a graph with `nodes` nodes and
    /// `edges` edges and zero them. Capacity is retained, so repeated
    /// calls at the same (or smaller) size allocate nothing.
    pub(crate) fn ensure(&mut self, nodes: usize, edges: usize) {
        fn fit(v: &mut Vec<f64>, len: usize) {
            v.clear();
            v.resize(len, 0.0);
        }
        fit(&mut self.y, nodes);
        fit(&mut self.adjoint, nodes);
        fit(&mut self.tape_w, edges);
        fit(&mut self.t_val, nodes);
        // `stack` grows on demand and retains its high-water capacity.
    }

    /// Resize the expression tapes to an objective's total compiled
    /// sizes. No zeroing: the forward sweep overwrites every slot it
    /// later reads. Capacity is retained across calls.
    pub(crate) fn ensure_tape(&mut self, vals: usize, wts: usize) {
        self.tape_vals.resize(vals, 0.0);
        self.tape_wts.resize(wts, 0.0);
    }
}

/// Lane-major sweep buffers for one K-wide batched objective
/// evaluation: the structure-of-arrays counterpart of [`EvalScratch`].
/// Every per-node / per-edge / per-op buffer holds `k` lanes per slot
/// (`slot * k + lane`), so the batched forward and backward sweeps in
/// `objective` run elementwise lane kernels over contiguous rows.
///
/// Also embeds a scalar [`EvalScratch`] plus gather/scatter temporaries
/// for the exact-mode (`s = ∞`) bypass, which runs each lane through the
/// scalar sweep to keep exact `max` tie-breaking bit-identical.
#[derive(Debug, Default)]
pub struct BatchEvalScratch {
    /// Current lane count (set by [`BatchEvalScratch::ensure`]).
    pub(crate) k: usize,
    /// Per-node, per-lane finish times of the forward `C_p` sweep.
    pub(crate) y: Vec<f64>,
    /// Per-node, per-lane adjoints of the backward sweep.
    pub(crate) adjoint: Vec<f64>,
    /// Per-edge, per-lane `smax` weights (the DAG-level tape).
    pub(crate) tape_w: Vec<f64>,
    /// Shared k-wide-slot value stack (expression `max` candidates and
    /// the per-node candidate rows of the DAG recurrence).
    pub(crate) stack: Vec<f64>,
    /// Per-node, per-lane `T_v` values, reused by the fused `A_p` pass.
    pub(crate) t_val: Vec<f64>,
    /// Lane-major per-op values of every compiled expression.
    pub(crate) tape_vals: Vec<f64>,
    /// Lane-major per-`max` gradient weights.
    pub(crate) tape_wts: Vec<f64>,
    /// Batched per-variable `exp(x_j)` caches (see [`BatchVarCache`]).
    pub(crate) var_cache: BatchVarCache,
    /// Per-lane `A_p` numerator accumulator of the forward sweep.
    pub(crate) area: Vec<f64>,
    /// Per-lane adjoint-row copy of the backward sweep (breaks the
    /// aliasing between a node's adjoint row and its predecessors').
    pub(crate) a_tmp: Vec<f64>,
    /// Per-lane node-seed row of the backward sweep.
    pub(crate) seed_tmp: Vec<f64>,
    /// Per-lane `C_p` seed weights (`w_c` from the top-level smax).
    pub(crate) c_seed: Vec<f64>,
    /// Per-lane `A_p` seed weights (`w_a`).
    pub(crate) a_seed: Vec<f64>,
    /// Scalar sweep buffers for the exact-mode per-lane bypass.
    pub(crate) scalar: EvalScratch,
    /// Gather buffer (`n_vars`) for one lane's point in the bypass.
    pub(crate) x_tmp: Vec<f64>,
    /// Scatter buffer (`n_vars`) for one lane's gradient in the bypass.
    pub(crate) grad_tmp: Vec<f64>,
}

impl BatchEvalScratch {
    /// Resize the lane-major sweep buffers for a graph with `nodes`
    /// nodes and `edges` edges at lane count `k`, and zero them.
    /// Capacity is retained across calls.
    pub(crate) fn ensure(&mut self, nodes: usize, edges: usize, k: usize) {
        fn fit(v: &mut Vec<f64>, len: usize) {
            v.clear();
            v.resize(len, 0.0);
        }
        self.k = k;
        fit(&mut self.y, nodes * k);
        fit(&mut self.adjoint, nodes * k);
        fit(&mut self.tape_w, edges * k);
        fit(&mut self.t_val, nodes * k);
        fit(&mut self.area, k);
        fit(&mut self.a_tmp, k);
        fit(&mut self.seed_tmp, k);
        fit(&mut self.c_seed, k);
        fit(&mut self.a_seed, k);
    }

    /// Resize the lane-major expression tapes to an objective's total
    /// compiled sizes. No zeroing: the forward sweep overwrites every
    /// slot it later reads.
    pub(crate) fn ensure_tape(&mut self, vals: usize, wts: usize, k: usize) {
        self.tape_vals.resize(vals * k, 0.0);
        self.tape_wts.resize(wts * k, 0.0);
    }
}

/// Preallocated buffers for one batched solver thread: the lane-major
/// [`BatchEvalScratch`] plus the K-wide descent loop's per-lane iterate,
/// gradient, and line-search state, plus a scalar [`SolverWorkspace`]
/// for the per-lane exact-polish stage and other scalar tail work.
///
/// Acquire one from the batch pool with [`acquire_batch`]; pass it by
/// `&mut` to the batched `MdgObjective` entry points and to
/// `descend_multi_stage`.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    /// Batched objective sweep buffers.
    pub scratch: BatchEvalScratch,
    /// Scalar workspace for per-lane scalar phases (exact polish,
    /// residuals) without a second pool checkout.
    pub inner: SolverWorkspace,
    /// Lane-major current iterates (`n_vars * k`).
    pub(crate) xs: Vec<f64>,
    /// Lane-major gradients at the current iterates.
    pub(crate) grads: Vec<f64>,
    /// Lane-major gradients at the accepted trial iterates.
    pub(crate) grads_new: Vec<f64>,
    /// Lane-major trial iterates. Public so callers batching their own
    /// line searches (e.g. ADMM block solves) can stage candidates here.
    pub trials: Vec<f64>,
    /// Per-lane objective values at the current iterates.
    pub(crate) phis: Vec<f64>,
    /// Per-lane line-search step sizes.
    pub(crate) steps: Vec<f64>,
    /// Per-lane last accepted move magnitude (∞-norm).
    pub(crate) moved: Vec<f64>,
    /// Per-lane convergence flags (a finished lane is frozen).
    pub(crate) finished: Vec<bool>,
    /// Per-lane line-search accept flags for the current iteration.
    pub(crate) accepted: Vec<bool>,
    /// Per-lane iteration counts for the current stage.
    pub(crate) lane_iters: Vec<usize>,
    /// Per-lane objective parts at the current iterates.
    pub(crate) parts: Vec<ObjectiveParts>,
    /// Per-lane objective parts at the trial iterates. Public for the
    /// same external line-search batching as `trials`.
    pub parts_new: Vec<ObjectiveParts>,
}

impl BatchWorkspace {
    /// An empty batch workspace; buffers grow on first use.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Size the K-wide descent state for `n` variables and `k` lanes and
    /// reset the per-lane loop state (step 0.25, nothing finished).
    /// `xs` is resized but its contents are preserved, so callers may
    /// gather points first or re-enter for a new annealing stage without
    /// losing the iterates. Capacity is retained across calls.
    pub fn ensure_lanes(&mut self, n: usize, k: usize) {
        fn fit(v: &mut Vec<f64>, len: usize) {
            v.clear();
            v.resize(len, 0.0);
        }
        self.xs.resize(n * k, 0.0);
        fit(&mut self.grads, n * k);
        fit(&mut self.grads_new, n * k);
        fit(&mut self.trials, n * k);
        fit(&mut self.phis, k);
        fit(&mut self.moved, k);
        self.steps.clear();
        self.steps.resize(k, 0.25);
        self.finished.clear();
        self.finished.resize(k, false);
        self.accepted.clear();
        self.accepted.resize(k, false);
        self.lane_iters.clear();
        self.lane_iters.resize(k, 0);
        let zero = ObjectiveParts { phi: 0.0, a_p: 0.0, c_p: 0.0 };
        self.parts.clear();
        self.parts.resize(k, zero);
        self.parts_new.clear();
        self.parts_new.resize(k, zero);
    }
}

/// Preallocated buffers for one solver thread: the objective's
/// [`EvalScratch`] plus the descent loop's iterate and gradient buffers.
///
/// Construct one directly for a dedicated thread, or [`acquire`] a
/// pooled one; pass it by `&mut` to the `*_with` entry points on
/// [`crate::MdgObjective`] and to [`crate::descend_stage`].
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// Objective sweep buffers (public so callers holding their own
    /// gradient vectors can use the `*_with` objective entry points).
    pub scratch: EvalScratch,
    /// Descent-loop gradient at the current iterate.
    pub(crate) grad: Vec<f64>,
    /// Descent-loop gradient at the accepted trial iterate.
    pub(crate) grad_new: Vec<f64>,
    /// Descent-loop trial iterate.
    pub(crate) trial: Vec<f64>,
    /// Dense gradient of `A_p` for the stationarity residual.
    pub(crate) grad_a: Vec<f64>,
}

impl SolverWorkspace {
    /// An empty workspace; buffers grow on first use and are then
    /// retained across calls.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// Upper bound on pooled idle workspaces; beyond this, released
/// workspaces are simply dropped. Sized for a serving layer running a
/// few dozen workers, not for unbounded retention.
const POOL_CAP: usize = 64;

static POOL: Mutex<Vec<SolverWorkspace>> = Mutex::new(Vec::new());
static ACQUIRES: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);

/// A workspace checked out of the global pool; returned on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<SolverWorkspace>,
}

impl Deref for PooledWorkspace {
    type Target = SolverWorkspace;
    fn deref(&self) -> &SolverWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace {
    fn deref_mut(&mut self) -> &mut SolverWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            let mut pool = plock(&POOL);
            if pool.len() < POOL_CAP {
                pool.push(ws);
            }
        }
    }
}

/// Check a workspace out of the global pool (creating a cold one when
/// the pool is empty). The warm buffers inside survive across acquire /
/// release cycles, which is what makes repeat solves — e.g. the serving
/// layer's workers answering cache misses — allocation-free after the
/// first request at a given graph size.
pub fn acquire() -> PooledWorkspace {
    ACQUIRES.fetch_add(1, Ordering::Relaxed);
    let ws = {
        let mut pool = plock(&POOL);
        pool.pop()
    };
    let ws = match ws {
        Some(w) => {
            REUSES.fetch_add(1, Ordering::Relaxed);
            w
        }
        None => SolverWorkspace::new(),
    };
    PooledWorkspace { ws: Some(ws) }
}

/// Lifetime counters of the global pool: `(acquires, reuses)`. A reuse
/// is an acquire satisfied by a previously released (warm) workspace.
/// Exposed so the serving layer can report how often its workers hit
/// warm buffers.
pub fn pool_counters() -> (u64, u64) {
    (ACQUIRES.load(Ordering::Relaxed), REUSES.load(Ordering::Relaxed))
}

static BATCH_POOL: Mutex<Vec<BatchWorkspace>> = Mutex::new(Vec::new());
static BATCH_ACQUIRES: AtomicU64 = AtomicU64::new(0);
static BATCH_REUSES: AtomicU64 = AtomicU64::new(0);

/// A batch workspace checked out of the global batch pool; returned on
/// drop. Same discipline as [`PooledWorkspace`].
#[derive(Debug)]
pub struct PooledBatchWorkspace {
    ws: Option<BatchWorkspace>,
}

impl Deref for PooledBatchWorkspace {
    type Target = BatchWorkspace;
    fn deref(&self) -> &BatchWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledBatchWorkspace {
    fn deref_mut(&mut self) -> &mut BatchWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledBatchWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            let mut pool = plock(&BATCH_POOL);
            if pool.len() < POOL_CAP {
                pool.push(ws);
            }
        }
    }
}

/// Check a [`BatchWorkspace`] out of the global batch pool (creating a
/// cold one when the pool is empty). Batch workspaces are pooled
/// separately from scalar ones: their lane-major buffers are `k` times
/// larger, so mixing the free lists would hand K-wide allocations to
/// scalar callers that never need them.
pub fn acquire_batch() -> PooledBatchWorkspace {
    BATCH_ACQUIRES.fetch_add(1, Ordering::Relaxed);
    let ws = {
        let mut pool = plock(&BATCH_POOL);
        pool.pop()
    };
    let ws = match ws {
        Some(w) => {
            BATCH_REUSES.fetch_add(1, Ordering::Relaxed);
            w
        }
        None => BatchWorkspace::new(),
    };
    PooledBatchWorkspace { ws: Some(ws) }
}

/// Lifetime counters of the batch pool: `(acquires, reuses)`.
pub fn batch_pool_counters() -> (u64, u64) {
    (BATCH_ACQUIRES.load(Ordering::Relaxed), BATCH_REUSES.load(Ordering::Relaxed))
}

/// Drop every pooled workspace and zero the counters. The pool is
/// process-global; the model checker re-runs a closure under many
/// schedules and needs each run to start from the identical empty pool,
/// so its suites call this at the top of every execution. Harmless (but
/// pointless) anywhere else.
#[doc(hidden)]
pub fn reset_pool() {
    plock(&POOL).clear();
    ACQUIRES.store(0, Ordering::Relaxed);
    REUSES.store(0, Ordering::Relaxed);
    plock(&BATCH_POOL).clear();
    BATCH_ACQUIRES.store(0, Ordering::Relaxed);
    BATCH_REUSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_workspaces() {
        let (a0, _) = pool_counters();
        {
            let mut ws = acquire();
            ws.scratch.ensure(8, 12);
            assert_eq!(ws.scratch.y.len(), 8);
            assert_eq!(ws.scratch.tape_w.len(), 12);
        }
        // The released workspace (or another thread's) comes back warm.
        let ws = acquire();
        let (a1, r1) = pool_counters();
        assert!(a1 >= a0 + 2);
        assert!(r1 >= 1, "second acquire should reuse a released workspace");
        drop(ws);
    }

    #[test]
    fn batch_pool_recycles_workspaces() {
        let (a0, _) = batch_pool_counters();
        {
            let mut ws = acquire_batch();
            ws.scratch.ensure(8, 12, 4);
            ws.ensure_lanes(8, 4);
            assert_eq!(ws.scratch.y.len(), 32);
            assert_eq!(ws.scratch.tape_w.len(), 48);
            assert_eq!(ws.xs.len(), 32);
            assert!(ws.steps.iter().all(|&s| s == 0.25));
        }
        let ws = acquire_batch();
        let (a1, r1) = batch_pool_counters();
        assert!(a1 >= a0 + 2);
        assert!(r1 >= 1, "second acquire should reuse a released batch workspace");
        drop(ws);
    }

    #[test]
    fn ensure_lanes_preserves_iterates() {
        let mut ws = BatchWorkspace::new();
        ws.ensure_lanes(3, 2);
        ws.xs[5] = 7.5;
        ws.finished[1] = true;
        ws.steps[0] = 1e-10;
        ws.ensure_lanes(3, 2);
        assert_eq!(ws.xs[5], 7.5, "iterates survive a stage re-entry");
        assert!(!ws.finished[1], "loop state resets per stage");
        assert_eq!(ws.steps[0], 0.25);
    }

    #[test]
    fn ensure_is_exact_and_idempotent() {
        let mut s = EvalScratch::default();
        s.ensure(5, 7);
        s.adjoint[3] = 1.0;
        s.ensure(5, 7);
        assert_eq!(s.adjoint[3], 0.0, "ensure re-zeroes sweep buffers");
        s.ensure(2, 3);
        assert_eq!(s.y.len(), 2);
        assert_eq!(s.tape_w.len(), 3);
    }
}
