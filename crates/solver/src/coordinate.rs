//! Coordinate-descent solver — an independent cross-check for the
//! projected-gradient method.
//!
//! The objective restricted to one variable is still convex (a convex
//! function along an axis), so golden-section search per coordinate with
//! round-robin sweeps converges on the box. It needs no gradients at
//! all, which makes it a genuinely independent implementation: if both
//! solvers agree on `Phi` to a fraction of a percent, a bug would have
//! to be present in both the analytic gradients *and* the evaluation —
//! the `ablation_solver_quality` bench and the test-suite rely on this.

use crate::expr::Sharpness;
use crate::objective::MdgObjective;
use crate::workspace;
use paradigm_cost::{Allocation, Machine, PhiBreakdown};
use paradigm_mdg::Mdg;

/// Coordinate-descent configuration.
///
/// Note the sharpness *schedule*: cyclic coordinate descent can stall on
/// non-smooth convex functions (a `max` kink couples variables so that
/// no single-coordinate move helps even away from the optimum), so the
/// stages run on the smoothed objective with increasing sharpness and
/// only the final stage uses the exact max.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinateConfig {
    /// Full sweeps over all variables, per sharpness stage.
    pub max_sweeps: usize,
    /// Golden-section iterations per 1-D minimization.
    pub line_iters: usize,
    /// Stop a stage when a sweep improves `Phi` by less than this
    /// fraction.
    pub rel_tol: f64,
    /// Smoothing stages (a final exact stage is always appended).
    pub sharpness_schedule: Vec<f64>,
}

impl Default for CoordinateConfig {
    fn default() -> Self {
        CoordinateConfig {
            max_sweeps: 40,
            line_iters: 48,
            rel_tol: 1e-10,
            sharpness_schedule: vec![8.0, 64.0, 512.0],
        }
    }
}

/// Result of a coordinate-descent solve.
#[derive(Debug, Clone)]
pub struct CoordinateResult {
    /// Best allocation found.
    pub alloc: Allocation,
    /// Exact objective breakdown at that allocation.
    pub phi: PhiBreakdown,
    /// Sweeps actually performed.
    pub sweeps: usize,
}

/// Minimize `Phi` by cyclic coordinate descent with golden-section line
/// searches, starting from the box midpoint.
pub fn allocate_coordinate(g: &Mdg, machine: Machine, cfg: &CoordinateConfig) -> CoordinateResult {
    let obj = MdgObjective::new(g, machine);
    let n = obj.num_vars();
    let ub = obj.x_upper();
    let mut x = vec![ub / 2.0; n];
    x[g.start().0] = 0.0;
    x[g.stop().0] = 0.0;

    let mut sweeps = 0;
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // 1/golden ratio

    let mut stages: Vec<Sharpness> =
        cfg.sharpness_schedule.iter().map(|&s| Sharpness::Smooth(s)).collect();
    stages.push(Sharpness::Exact);

    // One pooled workspace for the whole solve: golden-section probes are
    // pure evaluations, so every one of them runs allocation-free through
    // the same sweep scratch.
    let mut ws = workspace::acquire();
    for sharp in stages {
        let mut best = obj.eval_with(&x, sharp, &mut ws.scratch).phi;
        for _ in 0..cfg.max_sweeps {
            sweeps += 1;
            let before = best;
            for j in 0..n {
                if j == g.start().0 || j == g.stop().0 {
                    continue;
                }
                // Golden-section over [0, ub] for coordinate j.
                let (mut lo, mut hi) = (0.0_f64, ub);
                let mut c = hi - INV_PHI * (hi - lo);
                let mut d = lo + INV_PHI * (hi - lo);
                let mut f_at = |xj: f64, x: &mut Vec<f64>| {
                    let old = x[j];
                    x[j] = xj;
                    let v = obj.eval_with(x, sharp, &mut ws.scratch).phi;
                    x[j] = old;
                    v
                };
                let mut fc = f_at(c, &mut x);
                let mut fd = f_at(d, &mut x);
                for _ in 0..cfg.line_iters {
                    if fc <= fd {
                        hi = d;
                        d = c;
                        fd = fc;
                        c = hi - INV_PHI * (hi - lo);
                        fc = f_at(c, &mut x);
                    } else {
                        lo = c;
                        c = d;
                        fc = fd;
                        d = lo + INV_PHI * (hi - lo);
                        fd = f_at(d, &mut x);
                    }
                }
                let cand = if fc <= fd { (c, fc) } else { (d, fd) };
                if cand.1 < best {
                    x[j] = cand.0;
                    best = cand.1;
                }
            }
            if before - best <= cfg.rel_tol * best.abs() {
                break;
            }
        }
    }
    let alloc = obj.allocation_from_x(&x);
    let phi = obj.exact_phi(&alloc);
    CoordinateResult { alloc, phi, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{allocate, SolverConfig};
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, random_layered_mdg, KernelCostTable, RandomMdgConfig,
    };

    #[test]
    fn coordinate_descent_matches_gradient_solver_fig1() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let cd = allocate_coordinate(&g, m, &CoordinateConfig::default());
        let pg = allocate(&g, m, &SolverConfig::default());
        let rel = (cd.phi.phi - pg.phi.phi).abs() / pg.phi.phi;
        assert!(rel < 5e-3, "cd {} vs pg {}", cd.phi.phi, pg.phi.phi);
    }

    #[test]
    fn coordinate_descent_matches_gradient_solver_cmm() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let cd = allocate_coordinate(&g, m, &CoordinateConfig::default());
        let pg = allocate(&g, m, &SolverConfig::default());
        let rel = (cd.phi.phi - pg.phi.phi).abs() / pg.phi.phi;
        assert!(rel < 1e-2, "cd {} vs pg {}", cd.phi.phi, pg.phi.phi);
    }

    #[test]
    fn coordinate_descent_on_random_graphs() {
        let cfg =
            RandomMdgConfig { layers: 3, width_min: 1, width_max: 3, ..RandomMdgConfig::default() };
        for seed in 0..4 {
            let g = random_layered_mdg(&cfg, seed);
            let m = Machine::cm5(8);
            let cd = allocate_coordinate(&g, m, &CoordinateConfig::default());
            let pg = allocate(&g, m, &SolverConfig::default());
            let rel = (cd.phi.phi - pg.phi.phi).abs() / pg.phi.phi;
            assert!(rel < 2e-2, "seed {seed}: cd {} vs pg {}", cd.phi.phi, pg.phi.phi);
        }
    }

    #[test]
    fn result_is_feasible() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let cd = allocate_coordinate(&g, m, &CoordinateConfig::default());
        for (id, _) in g.nodes() {
            let q = cd.alloc.get(id);
            assert!((1.0..=4.0 + 1e-9).contains(&q));
        }
        assert!(cd.sweeps >= 1);
    }
}
