//! Exact enumeration oracle: try every power-of-two allocation for every
//! compute node and return the allocation with the smallest exact `Phi`.
//!
//! Exponential (`k^m` for `m` compute nodes and `k = log2(p) + 1`
//! choices), so only usable on small graphs — which is precisely its job:
//! validating the convex solver and the rounding step in tests and
//! ablations.

use crate::error::SolverError;
use crate::objective::MdgObjective;
use paradigm_cost::{Allocation, Machine, PhiBreakdown};
use paradigm_mdg::Mdg;

/// The oracle's result.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// The best power-of-two allocation.
    pub alloc: Allocation,
    /// Its exact objective breakdown.
    pub phi: PhiBreakdown,
    /// Number of allocations evaluated.
    pub evaluated: usize,
}

/// Enumerate every power-of-two allocation (`p_i ∈ {1, 2, 4, …, 2^k}`,
/// `2^k <= p`) over the compute nodes of `g`, refusing with
/// [`SolverError::TooLarge`] if more than `limit` combinations would be
/// needed.
pub fn brute_force_pow2(
    g: &Mdg,
    machine: Machine,
    limit: usize,
) -> Result<BruteForceResult, SolverError> {
    let choices: Vec<f64> = {
        let mut v = Vec::new();
        let mut q = 1u32;
        while q <= machine.procs {
            v.push(q as f64);
            if q > machine.procs / 2 {
                break;
            }
            q *= 2;
        }
        v
    };
    let compute: Vec<usize> =
        g.nodes().filter(|(_, n)| !n.is_structural()).map(|(id, _)| id.0).collect();
    let k = choices.len() as u128;
    let combos = k.checked_pow(compute.len() as u32).unwrap_or(u128::MAX);
    if combos > limit as u128 {
        return Err(SolverError::TooLarge { combinations: combos });
    }

    let obj = MdgObjective::new(g, machine);
    let mut alloc = Allocation::uniform(g, 1.0);
    let mut idx = vec![0usize; compute.len()];
    let mut best: Option<(Allocation, PhiBreakdown)> = None;
    let mut evaluated = 0usize;
    loop {
        for (slot, &node) in idx.iter().zip(&compute) {
            alloc.set(paradigm_mdg::NodeId(node), choices[*slot]);
        }
        let phi = obj.exact_phi(&alloc);
        evaluated += 1;
        let better = best.as_ref().map(|(_, b)| phi.phi < b.phi).unwrap_or(true);
        if better {
            best = Some((alloc.clone(), phi));
        }
        // Odometer increment.
        let mut carry = true;
        for slot in idx.iter_mut() {
            if carry {
                *slot += 1;
                if *slot == choices.len() {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    let (alloc, phi) = best.expect("at least one combination evaluated");
    Ok(BruteForceResult { alloc, phi, evaluated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{example_fig1_mdg, AmdahlParams, MdgBuilder, NodeId};

    #[test]
    fn fig1_oracle_finds_paper_schedule() {
        let g = example_fig1_mdg();
        let r = brute_force_pow2(&g, Machine::cm5(4), usize::MAX).unwrap();
        // Optimal pow2 allocation: N1 on 4, N2/N3 on 2 -> Phi = 14.3.
        assert!((r.phi.phi - 14.3).abs() < 1e-9, "Phi = {}", r.phi.phi);
        assert_eq!(r.alloc.as_u32(NodeId(1)), 4);
        assert_eq!(r.alloc.as_u32(NodeId(2)), 2);
        assert_eq!(r.alloc.as_u32(NodeId(3)), 2);
        // 3 choices (1,2,4) ^ 3 nodes = 27 combos.
        assert_eq!(r.evaluated, 27);
    }

    #[test]
    fn limit_is_enforced() {
        let g = example_fig1_mdg();
        let err = brute_force_pow2(&g, Machine::cm5(4), 10).unwrap_err();
        assert_eq!(err, SolverError::TooLarge { combinations: 27 });
    }

    #[test]
    fn single_node_gets_whole_machine_when_efficient() {
        // alpha = 0: perfect speedup, more processors always better.
        let mut b = MdgBuilder::new("solo");
        b.compute("solo", AmdahlParams::new(0.0, 8.0));
        let g = b.finish().unwrap();
        let r = brute_force_pow2(&g, Machine::cm5(8), usize::MAX).unwrap();
        assert_eq!(r.alloc.as_u32(NodeId(1)), 8);
        assert!((r.phi.phi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_result_is_power_of_two() {
        let g = example_fig1_mdg();
        let r = brute_force_pow2(&g, Machine::cm5(4), usize::MAX).unwrap();
        assert!(r.alloc.is_power_of_two());
    }
}
