//! Projected-gradient solver for the allocation convex program.
//!
//! The objective is convex in `x = ln p` over the box `[0, ln p]^n`
//! (see [`crate::objective`]), so projected gradient descent with an
//! Armijo backtracking line search converges to the global minimum of the
//! smoothed objective; annealing the max-sharpness upward then drives the
//! smoothed optimum onto the exact one. Multi-start is kept as a
//! safety net (it also randomizes tie-breaking on the max kinks) and runs
//! the starts on scoped threads.

use crate::coordinate::{allocate_coordinate, CoordinateConfig};
use crate::error::{FallbackTier, SolverError};
use crate::expr::Sharpness;
use crate::objective::MdgObjective;
use crate::workspace::{self, BatchWorkspace, SolverWorkspace};
use paradigm_cost::{Allocation, Machine, MdgWeights, PhiBreakdown};
use paradigm_mdg::Mdg;
use paradigm_race::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use paradigm_race::time::Instant;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Solver tuning knobs. The defaults solve every workload in this
/// repository to well under 1 % of the brute-force oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Increasing p-norm sharpness stages; a final exact-max polish stage
    /// is always appended.
    pub sharpness_schedule: Vec<f64>,
    /// Gradient iterations per stage.
    pub max_iters_per_stage: usize,
    /// Stop a stage when the projected-gradient step improves `Phi` by
    /// less than this relative amount.
    pub rel_tol: f64,
    /// Number of random interior starts (in addition to the three
    /// deterministic ones: all-1, all-p, geometric midpoint).
    pub random_starts: usize,
    /// RNG seed for the random starts.
    pub seed: u64,
    /// Run starts on scoped threads.
    pub parallel: bool,
    /// Watchdog wall-time budget across all starts; when it expires the
    /// solver returns its best iterate so far, or
    /// [`SolverError::BudgetExceeded`] if no iteration ever ran. `None`
    /// never expires.
    pub time_limit: Option<Duration>,
    /// Watchdog budget on total gradient iterations summed over all
    /// starts and stages; same semantics as `time_limit`.
    pub max_total_iters: Option<usize>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            sharpness_schedule: vec![4.0, 16.0, 64.0, 256.0],
            max_iters_per_stage: 400,
            rel_tol: 1e-10,
            random_starts: 3,
            seed: 0x5eed,
            parallel: true,
            time_limit: None,
            max_total_iters: None,
        }
    }
}

impl SolverConfig {
    /// A cheaper configuration for property tests and huge random graphs.
    pub fn fast() -> Self {
        SolverConfig {
            sharpness_schedule: vec![8.0, 64.0],
            max_iters_per_stage: 150,
            random_starts: 1,
            ..SolverConfig::default()
        }
    }
}

/// The outcome of one allocation solve.
#[derive(Debug, Clone)]
pub struct AllocationResult {
    /// The best continuous allocation found.
    pub alloc: Allocation,
    /// Exact (true-max) objective breakdown at `alloc`; `phi.phi` is the
    /// paper's `Phi` — the optimum finish time lower bound.
    pub phi: PhiBreakdown,
    /// Total gradient iterations across all starts and stages.
    pub iterations: usize,
    /// Number of starts evaluated.
    pub starts: usize,
    /// Which rung of the degradation ladder produced this result
    /// ([`FallbackTier::Primary`] unless a resilient entry point fell
    /// back).
    pub tier: FallbackTier,
}

/// Lane width of the batched multistart: starts are grouped into fixed
/// consecutive chunks of this many lanes, each chunk descending through
/// one shared-tape batched gradient per iteration. Eight lanes fill one
/// AVX-512 register per kernel chunk (see [`crate::batch`]) and match
/// the default start count (3 deterministic + 5 random rounds up to 8).
const BATCH_K: usize = 8;

/// Shared watchdog budget checked by every descent iteration.
struct Budget {
    deadline: Option<Instant>,
    max_iters: Option<usize>,
    used: AtomicUsize,
    /// Latch set once the deadline has been observed expired, so later
    /// checks short-circuit without touching the clock again.
    expired: AtomicBool,
}

impl Budget {
    fn new(deadline: Option<Instant>, max_iters: Option<usize>) -> Self {
        Budget { deadline, max_iters, used: AtomicUsize::new(0), expired: AtomicBool::new(false) }
    }

    fn exhausted(&self) -> bool {
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        let used = self.used.load(Ordering::Relaxed);
        if let Some(d) = self.deadline {
            // `Instant::now()` is a vDSO call but still dominates a cheap
            // descent iteration when taken every time; amortize the clock
            // read to every 64th iteration of the shared counter (the
            // first check, at `used == 0`, always consults the clock, so
            // an already-expired deadline is caught before any work).
            if used & 63 == 0 && Instant::now() >= d {
                self.expired.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(m) = self.max_iters {
            if used >= m {
                return true;
            }
        }
        false
    }
}

/// Solve the allocation problem for `g` on `machine`.
///
/// ```
/// use paradigm_mdg::example_fig1_mdg;
/// use paradigm_cost::Machine;
/// use paradigm_solver::{allocate, SolverConfig};
///
/// let g = example_fig1_mdg();
/// let res = allocate(&g, Machine::cm5(4), &SolverConfig::default());
/// // The paper's mixed schedule achieves 14.3 s; the continuous optimum
/// // can only be at least as good.
/// assert!(res.phi.phi <= 14.3 + 1e-9);
/// ```
///
/// # Panics
/// Panics if [`try_allocate`] would return an error; callers that need
/// to survive bad inputs or budgets should use [`try_allocate`] or
/// [`allocate_resilient`] instead.
pub fn allocate(g: &Mdg, machine: Machine, cfg: &SolverConfig) -> AllocationResult {
    try_allocate(g, machine, cfg).unwrap_or_else(|e| panic!("allocation solve failed: {e}"))
}

/// Fallible [`allocate`]: validates the configuration and the objective,
/// enforces the watchdog budget, and returns a typed [`SolverError`]
/// instead of panicking.
///
/// Budget semantics: if the budget expires *mid-run*, the best iterate
/// found so far is returned (`Ok`); if it was already exhausted before
/// any descent iteration ran (e.g. `time_limit` of zero), the solver has
/// nothing useful to return and fails with
/// [`SolverError::BudgetExceeded`].
pub fn try_allocate(
    g: &Mdg,
    machine: Machine,
    cfg: &SolverConfig,
) -> Result<AllocationResult, SolverError> {
    let started = Instant::now();
    for &s in &cfg.sharpness_schedule {
        if !s.is_finite() || s < 1.0 {
            return Err(SolverError::InvalidConfig(format!(
                "sharpness {s} must be finite and >= 1"
            )));
        }
    }
    if !cfg.rel_tol.is_finite() || cfg.rel_tol < 0.0 {
        return Err(SolverError::InvalidConfig(format!(
            "relative tolerance {} must be finite and >= 0",
            cfg.rel_tol
        )));
    }
    let obj = MdgObjective::try_new(g, machine).map_err(SolverError::BadObjective)?;
    let n = obj.num_vars();
    let ub = obj.x_upper();

    let budget = Budget::new(cfg.time_limit.map(|d| started + d), cfg.max_total_iters);
    if budget.exhausted() {
        return Err(SolverError::BudgetExceeded { elapsed: started.elapsed(), iterations: 0 });
    }

    // Deterministic starts.
    let mut starts: Vec<Vec<f64>> = vec![vec![0.0; n], vec![ub; n], vec![ub / 2.0; n]];
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.random_starts {
        starts.push((0..n).map(|_| rng.random_range(0.0..=ub)).collect());
    }
    // Structural variables pinned to ln 1 = 0 (they never appear in the
    // objective, but a clean value keeps reports readable).
    for s in &mut starts {
        s[g.start().0] = 0.0;
        s[g.stop().0] = 0.0;
    }

    // Starts run through the K-wide batched descent in fixed
    // consecutive chunks of `BATCH_K`: all smooth annealing stages of a
    // chunk share one batched tape sweep per iteration (lane l = start
    // `chunk_base + l`, fixed), then each lane gets its scalar
    // exact-max polish. The lane assignment and chunk boundaries are
    // identical in the serial and parallel paths — and lane arithmetic
    // is lane-independent — so parallel multistart stays
    // bitwise-identical to serial.
    let run_chunk = |chunk: Vec<(usize, Vec<f64>)>| -> Vec<(usize, (Vec<f64>, usize))> {
        // Pooled batch workspace: warm lane-major buffers across chunks
        // and across solves (serve workers re-hit the same pool on
        // every cache miss).
        let mut bw = workspace::acquire_batch();
        let k = chunk.len();
        let mut stages = cfg.sharpness_schedule.clone();
        stages.sort_by(f64::total_cmp);
        bw.ensure_lanes(n, k);
        for (l, (_, x0)) in chunk.iter().enumerate() {
            for (j, &v) in x0.iter().enumerate() {
                bw.xs[j * k + l] = v;
            }
        }
        let mut lane_totals = vec![0usize; k];
        for s in stages {
            descend_multi(
                &obj,
                k,
                Sharpness::Smooth(s),
                cfg.max_iters_per_stage,
                cfg.rel_tol,
                ub,
                &budget,
                &mut bw,
            );
            for (tot, &it) in lane_totals.iter_mut().zip(&bw.lane_iters) {
                *tot += it;
            }
        }
        let mut out = Vec::with_capacity(k);
        for (l, (i, x0)) in chunk.into_iter().enumerate() {
            let mut x = x0;
            for (j, v) in x.iter_mut().enumerate() {
                *v = bw.xs[j * k + l];
            }
            let it = descend(
                &obj,
                &mut x,
                Sharpness::Exact,
                cfg.max_iters_per_stage,
                cfg.rel_tol,
                ub,
                &budget,
                &mut bw.inner,
            );
            out.push((i, (x, lane_totals[l] + it)));
        }
        out
    };

    let total = starts.len();
    let mut chunks: Vec<Vec<(usize, Vec<f64>)>> = Vec::with_capacity(total.div_ceil(BATCH_K));
    for (i, x0) in starts.into_iter().enumerate() {
        if chunks.last().is_none_or(|c| c.len() == BATCH_K) {
            chunks.push(Vec::with_capacity(BATCH_K));
        }
        chunks.last_mut().expect("chunk pushed above").push((i, x0));
    }
    let results: Vec<(Vec<f64>, usize)> = if cfg.parallel && chunks.len() > 1 {
        let joined = paradigm_race::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let run_chunk = &run_chunk;
                    scope.spawn(move || run_chunk(chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        let mut slots: Vec<Option<(Vec<f64>, usize)>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        for r in joined {
            match r {
                Ok(pairs) => {
                    for (i, v) in pairs {
                        slots[i] = Some(v);
                    }
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("unknown panic");
                    return Err(SolverError::StartPanicked(msg.to_string()));
                }
            }
        }
        slots.into_iter().map(|s| s.expect("every start chunk reported")).collect()
    } else {
        let mut out: Vec<(usize, (Vec<f64>, usize))> = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(run_chunk(chunk));
        }
        out.sort_by_key(|&(i, _)| i);
        out.into_iter().map(|(_, v)| v).collect()
    };

    let mut best: Option<(Allocation, PhiBreakdown)> = None;
    let mut total_iters = 0;
    let starts_n = results.len();
    for (x, iters) in results {
        total_iters += iters;
        let alloc = obj.allocation_from_x(&x);
        let phi = obj.exact_phi(&alloc);
        let better = match &best {
            None => true,
            Some((_, b)) => phi.phi < b.phi,
        };
        if better {
            best = Some((alloc, phi));
        }
    }
    let Some((alloc, phi)) = best else {
        return Err(SolverError::NonFinite { phi: f64::NAN });
    };
    if total_iters == 0 && budget.exhausted() {
        return Err(SolverError::BudgetExceeded { elapsed: started.elapsed(), iterations: 0 });
    }
    if !phi.phi.is_finite() {
        return Err(SolverError::NonFinite { phi: phi.phi });
    }
    Ok(AllocationResult {
        alloc,
        phi,
        iterations: total_iters,
        starts: starts_n,
        tier: FallbackTier::Primary,
    })
}

/// The degradation ladder: [`try_allocate`], then gradient-free
/// coordinate descent, then the analytic equal split. Always returns a
/// finite, feasible allocation and records which rung produced it —
/// this is the entry point the serving pipeline uses so a misbehaving
/// solve yields a *degraded* answer instead of a dead worker.
pub fn allocate_resilient(g: &Mdg, machine: Machine, cfg: &SolverConfig) -> AllocationResult {
    if let Ok(Ok(r)) = catch_unwind(AssertUnwindSafe(|| try_allocate(g, machine, cfg))) {
        return r;
    }
    // Rung 2: the gradient-free cross-check solver, trimmed for fallback
    // duty (one smoothing stage, few sweeps — a valid allocation fast,
    // not the last fraction of a percent).
    let cd_cfg = CoordinateConfig {
        max_sweeps: 8,
        line_iters: 24,
        sharpness_schedule: vec![16.0],
        ..CoordinateConfig::default()
    };
    if let Ok(r) = catch_unwind(AssertUnwindSafe(|| allocate_coordinate(g, machine, &cd_cfg))) {
        if r.phi.phi.is_finite() {
            return AllocationResult {
                alloc: r.alloc,
                phi: r.phi,
                iterations: r.sweeps,
                starts: 1,
                tier: FallbackTier::Coordinate,
            };
        }
    }
    equal_split_allocation(g, machine)
}

/// Rung 3 of the ladder: the analytic allocation that gives each of the
/// `m` compute nodes `clamp(p/m, 1, p)` processors. Needs no
/// optimization at all, so it cannot fail — the service's answer of
/// last resort.
pub fn equal_split_allocation(g: &Mdg, machine: Machine) -> AllocationResult {
    let p = (machine.procs.max(1)) as f64;
    let m = g.compute_node_count().max(1) as f64;
    let share = (p / m).clamp(1.0, p);
    let mut alloc = Allocation::uniform(g, share);
    alloc.set(g.start(), 1.0);
    alloc.set(g.stop(), 1.0);
    // Score with the exact ground-truth evaluator directly (it never
    // asserts on cost values, unlike the symbolic objective builder).
    let phi = MdgWeights::compute(g, &machine, &alloc).phi(g);
    AllocationResult { alloc, phi, iterations: 0, starts: 0, tier: FallbackTier::EqualSplit }
}

/// First-order stationarity residual for the minimax program
/// `min max(A_p, C_p)` over the box `[0, ln p]^n`.
///
/// A point is stationary iff some convex combination
/// `lambda ∇A_p + (1 - lambda) ∇C_p` (with `lambda` supported on the
/// *active* pieces) lies in the normal cone of the box. The residual
/// scans `lambda` over a grid, projects each combined gradient onto the
/// feasible directions (per variable: interior -> `|g|`, lower bound ->
/// `max(0, -g)`, upper bound -> `max(0, g)`) and returns the smallest
/// infinity norm found, normalized by `Phi`. Zero certifies stationarity
/// — and by convexity, global optimality.
pub fn optimality_residual(obj: &MdgObjective<'_>, x: &[f64], sharp: Sharpness) -> f64 {
    let ub = obj.x_upper();
    let mut ws = workspace::acquire();
    let SolverWorkspace { scratch, grad: grad_c, grad_a, .. } = &mut *ws;
    let parts = obj.eval_grad_parts_with(x, sharp, scratch, grad_a, grad_c);
    let (grad_a, grad_c) = (&*grad_a, &*grad_c);
    // Admissible multipliers: only active pieces may carry weight. A
    // piece is "active" within a small relative band of the max.
    let tol = 1e-6 * parts.phi.abs().max(f64::MIN_POSITIVE);
    let a_active = parts.a_p >= parts.phi - tol.max(1e-3 * parts.phi);
    let c_active = parts.c_p >= parts.phi - tol.max(1e-3 * parts.phi);
    let lambdas: Vec<f64> = match (a_active, c_active) {
        (true, false) => vec![1.0],
        (false, true) => vec![0.0],
        // Both active (the kink) or numerically ambiguous: scan.
        _ => (0..=100).map(|k| k as f64 / 100.0).collect(),
    };
    let start = obj.graph().start().0;
    let stop = obj.graph().stop().0;
    let mut best = f64::INFINITY;
    for lambda in lambdas {
        let mut worst = 0.0_f64;
        for j in 0..x.len() {
            if j == start || j == stop {
                continue;
            }
            let gj = lambda * grad_a[j] + (1.0 - lambda) * grad_c[j];
            let v = if x[j] <= 1e-12 {
                (-gj).max(0.0)
            } else if x[j] >= ub - 1e-12 {
                gj.max(0.0)
            } else {
                gj.abs()
            };
            worst = worst.max(v);
        }
        best = best.min(worst);
    }
    best / parts.phi.abs().max(f64::MIN_POSITIVE)
}

/// One projected-gradient descent stage at fixed sharpness. Returns the
/// iteration count. `x` is updated in place and stays inside `[0, ub]^n`.
/// Stops early (keeping the current iterate) once `budget` is exhausted.
///
/// Every buffer the loop touches — gradients, the trial iterate, and the
/// objective's sweep scratch — lives in `ws`, so after the first
/// iteration at a given graph size the loop performs zero heap
/// allocations (asserted by the `alloc_free` integration test).
#[allow(clippy::too_many_arguments)]
fn descend(
    obj: &MdgObjective<'_>,
    x: &mut [f64],
    sharp: Sharpness,
    max_iters: usize,
    rel_tol: f64,
    ub: f64,
    budget: &Budget,
    ws: &mut SolverWorkspace,
) -> usize {
    let n = x.len();
    let mut step = 0.25;
    let mut iters = 0;
    // Disjoint borrows: the objective sweeps through `scratch` while the
    // loop holds the gradient and trial buffers.
    let SolverWorkspace { scratch, grad, grad_new, trial, .. } = ws;
    trial.clear();
    trial.resize(n, 0.0);
    let mut parts = obj.eval_grad_with(x, sharp, scratch, grad);
    for _ in 0..max_iters {
        if budget.exhausted() {
            break;
        }
        budget.used.fetch_add(1, Ordering::Relaxed);
        iters += 1;
        // Projected step with backtracking.
        let mut accepted = false;
        for _ in 0..40 {
            for j in 0..n {
                trial[j] = (x[j] - step * grad[j]).clamp(0.0, ub);
            }
            let f_new = obj.eval_with(trial, sharp, scratch).phi;
            // Armijo on the projected step: require a decrease
            // proportional to g . (x - trial).
            let decrease: f64 = grad
                .iter()
                .zip(x.iter().zip(trial.iter()))
                .map(|(g, (xi, ti))| g * (xi - ti))
                .sum();
            if f_new <= parts.phi - 1e-4 * decrease && f_new.is_finite() {
                accepted = true;
                break;
            }
            step *= 0.5;
            if step < 1e-14 {
                break;
            }
        }
        if !accepted {
            break;
        }
        let moved: f64 = x.iter().zip(trial.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        x.copy_from_slice(trial);
        let new_parts = obj.eval_grad_with(x, sharp, scratch, grad_new);
        let improve = parts.phi - new_parts.phi;
        parts = new_parts;
        std::mem::swap(grad, grad_new);
        step = (step * 1.8).min(4.0);
        if improve <= rel_tol * parts.phi.abs() && moved < 1e-12 {
            break;
        }
        if improve <= rel_tol * parts.phi.abs() && improve >= 0.0 && moved < 1e-9 {
            break;
        }
    }
    iters
}

/// K-wide batched projected-gradient descent at fixed sharpness: every
/// lane is one independent descent trajectory, and each iteration runs
/// one batched `eval_grad` (shared tape, lane-major kernels) plus up to
/// 40 batched line-search probes across all still-active lanes.
///
/// Per lane, the arithmetic is the scalar [`descend`] loop verbatim —
/// same Armijo test, same step halving/growth, same stop conditions —
/// and every lane's values depend only on its own slots, so a lane's
/// trajectory is independent of which other starts share its batch.
/// Converged ("finished") lanes are frozen: their iterates stop moving,
/// and the batched sweeps simply recompute their (identical) gradients
/// alongside the active lanes.
///
/// Expects `bw.xs` to hold the lane-major start points; leaves the
/// final iterates there. Per-lane iteration counts land in
/// `bw.lane_iters`; the return value is their sum (== budget charge).
#[allow(clippy::too_many_arguments)]
fn descend_multi(
    obj: &MdgObjective<'_>,
    k: usize,
    sharp: Sharpness,
    max_iters: usize,
    rel_tol: f64,
    ub: f64,
    budget: &Budget,
    bw: &mut BatchWorkspace,
) -> usize {
    let n = obj.num_vars();
    bw.ensure_lanes(n, k);
    let BatchWorkspace {
        scratch,
        xs,
        grads,
        grads_new,
        trials,
        phis,
        steps,
        moved,
        finished,
        accepted,
        lane_iters,
        parts,
        parts_new,
        ..
    } = bw;
    let mut iters_total = 0;
    obj.eval_grad_batch_with(xs, k, sharp, scratch, grads, parts);
    for (p, f) in parts.iter().zip(phis.iter_mut()) {
        *f = p.phi;
    }
    for _ in 0..max_iters {
        if finished.iter().all(|&f| f) || budget.exhausted() {
            break;
        }
        let active = finished.iter().filter(|&&f| !f).count();
        budget.used.fetch_add(active, Ordering::Relaxed);
        iters_total += active;
        for (it, &f) in lane_iters.iter_mut().zip(finished.iter()) {
            if !f {
                *it += 1;
            }
        }
        // Batched backtracking line search: each probe round recomputes
        // the trial of every lane still searching, then one batched
        // evaluation scores all of them. A lane stops probing once it
        // accepts or its step underflows (same 1e-14 floor and 40-probe
        // cap as the scalar loop).
        accepted[..k].copy_from_slice(&finished[..k]);
        trials.copy_from_slice(xs);
        for _ in 0..40 {
            let mut any = false;
            for l in 0..k {
                if accepted[l] || steps[l] < 1e-14 {
                    continue;
                }
                any = true;
                for j in 0..n {
                    trials[j * k + l] =
                        (xs[j * k + l] - steps[l] * grads[j * k + l]).clamp(0.0, ub);
                }
            }
            if !any {
                break;
            }
            obj.eval_batch_with(trials, k, sharp, scratch, parts_new);
            for l in 0..k {
                if accepted[l] || steps[l] < 1e-14 {
                    continue;
                }
                let f_new = parts_new[l].phi;
                let mut decrease = 0.0;
                for j in 0..n {
                    decrease += grads[j * k + l] * (xs[j * k + l] - trials[j * k + l]);
                }
                if f_new <= phis[l] - 1e-4 * decrease && f_new.is_finite() {
                    accepted[l] = true;
                } else {
                    steps[l] *= 0.5;
                }
            }
        }
        for l in 0..k {
            if finished[l] {
                continue;
            }
            if !accepted[l] {
                finished[l] = true;
                continue;
            }
            let mut mv = 0.0_f64;
            for j in 0..n {
                mv = mv.max((xs[j * k + l] - trials[j * k + l]).abs());
            }
            moved[l] = mv;
            for j in 0..n {
                xs[j * k + l] = trials[j * k + l];
            }
        }
        if finished.iter().all(|&f| f) {
            break;
        }
        obj.eval_grad_batch_with(xs, k, sharp, scratch, grads_new, parts_new);
        std::mem::swap(grads, grads_new);
        for l in 0..k {
            if finished[l] {
                continue;
            }
            let improve = phis[l] - parts_new[l].phi;
            phis[l] = parts_new[l].phi;
            parts[l] = parts_new[l];
            steps[l] = (steps[l] * 1.8).min(4.0);
            if improve <= rel_tol * phis[l].abs()
                && (moved[l] < 1e-12 || (improve >= 0.0 && moved[l] < 1e-9))
            {
                finished[l] = true;
            }
        }
    }
    iters_total
}

/// Public batched single-stage descent entry point with no watchdog:
/// gathers `points` into lane-major layout, runs [`descend_multi`] at
/// one fixed sharpness out of the caller's batch workspace, and
/// scatters the final iterates back. Returns the summed iteration
/// count. Used by the `bench-solve` batched cases and the batched
/// allocation-free test; the solver proper goes through
/// [`try_allocate`].
pub fn descend_multi_stage(
    obj: &MdgObjective<'_>,
    points: &mut [Vec<f64>],
    sharp: Sharpness,
    max_iters: usize,
    rel_tol: f64,
    bw: &mut BatchWorkspace,
) -> usize {
    let n = obj.num_vars();
    let k = points.len();
    if k == 0 {
        return 0;
    }
    let budget = Budget::new(None, None);
    bw.ensure_lanes(n, k);
    for (l, p) in points.iter().enumerate() {
        debug_assert_eq!(p.len(), n);
        for (j, &v) in p.iter().enumerate() {
            bw.xs[j * k + l] = v;
        }
    }
    let iters = descend_multi(obj, k, sharp, max_iters, rel_tol, obj.x_upper(), &budget, bw);
    for (l, p) in points.iter_mut().enumerate() {
        for (j, v) in p.iter_mut().enumerate() {
            *v = bw.xs[j * k + l];
        }
    }
    iters
}

/// Public single-stage descent entry point with no watchdog: runs
/// [`descend`] at one fixed sharpness out of the caller's workspace.
/// Used by the `bench-solve` harness (to time the inner loop and count
/// allocations per iteration in isolation) and by the allocation-free
/// integration test; the solver proper goes through [`try_allocate`].
pub fn descend_stage(
    obj: &MdgObjective<'_>,
    x: &mut [f64],
    sharp: Sharpness,
    max_iters: usize,
    rel_tol: f64,
    ws: &mut SolverWorkspace,
) -> usize {
    let budget = Budget::new(None, None);
    descend(obj, x, sharp, max_iters, rel_tol, obj.x_upper(), &budget, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_pow2;
    use crate::error::{FallbackTier, SolverError};
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, random_layered_mdg, strassen_mdg, KernelCostTable,
        NodeId, RandomMdgConfig,
    };

    #[test]
    fn fig1_solver_matches_paper_optimum() {
        let g = example_fig1_mdg();
        let res = allocate(&g, Machine::cm5(4), &SolverConfig::default());
        // Mixed power-of-two allocation achieves 14.3 s; the continuous
        // optimum can only be <= that, and the naive 15.6 s must be beaten.
        assert!(res.phi.phi <= 14.3 + 1e-6, "Phi = {}", res.phi.phi);
        assert!(res.phi.phi > 12.0, "Phi suspiciously low: {}", res.phi.phi);
        // N1 should get (near) the whole machine.
        assert!(res.alloc.get(NodeId(1)) > 3.0);
    }

    #[test]
    fn solver_at_least_as_good_as_pow2_oracle_fig1() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let oracle = brute_force_pow2(&g, m, usize::MAX).expect("small graph");
        let res = allocate(&g, m, &SolverConfig::default());
        assert!(
            res.phi.phi <= oracle.phi.phi * (1.0 + 1e-9),
            "continuous optimum {} must be <= pow2 optimum {}",
            res.phi.phi,
            oracle.phi.phi
        );
        // And the pow2 optimum is the paper's mixed schedule: 14.3 s.
        assert!((oracle.phi.phi - 14.3).abs() < 1e-9);
    }

    #[test]
    fn solver_close_to_oracle_on_random_graphs() {
        let cfg =
            RandomMdgConfig { layers: 3, width_min: 1, width_max: 2, ..RandomMdgConfig::default() };
        let m = Machine::cm5(8);
        for seed in 0..5 {
            let g = random_layered_mdg(&cfg, seed);
            if g.compute_node_count() > 6 {
                continue;
            }
            let oracle = brute_force_pow2(&g, m, usize::MAX).expect("small graph");
            let res = allocate(&g, m, &SolverConfig::default());
            assert!(
                res.phi.phi <= oracle.phi.phi * 1.0 + 1e-9,
                "seed {seed}: solver {} vs oracle {}",
                res.phi.phi,
                oracle.phi.phi
            );
        }
    }

    #[test]
    fn solver_beats_naive_on_cmm() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = allocate(&g, m, &SolverConfig::default());
        let naive = MdgObjective::new(&g, m).exact_phi(&Allocation::uniform(&g, 16.0));
        assert!(res.phi.phi < naive.phi, "solver {} vs naive {}", res.phi.phi, naive.phi);
    }

    #[test]
    fn solver_handles_strassen_at_all_paper_sizes() {
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        for p in [16, 32, 64] {
            let res = allocate(&g, Machine::cm5(p), &SolverConfig::default());
            assert!(res.phi.phi > 0.0 && res.phi.phi.is_finite());
            // Allocation within bounds.
            for (id, _) in g.nodes() {
                let q = res.alloc.get(id);
                assert!((1.0..=p as f64 + 1e-9).contains(&q));
            }
        }
    }

    #[test]
    fn phi_decreases_with_machine_size_cmm() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let cfg = SolverConfig::default();
        let phi16 = allocate(&g, Machine::cm5(16), &cfg).phi.phi;
        let phi32 = allocate(&g, Machine::cm5(32), &cfg).phi.phi;
        let phi64 = allocate(&g, Machine::cm5(64), &cfg).phi.phi;
        assert!(phi32 <= phi16 * 1.001, "{phi32} vs {phi16}");
        assert!(phi64 <= phi32 * 1.001, "{phi64} vs {phi32}");
    }

    #[test]
    fn sequential_and_parallel_starts_agree() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let par = allocate(&g, m, &SolverConfig { parallel: true, ..SolverConfig::default() });
        let seq = allocate(&g, m, &SolverConfig { parallel: false, ..SolverConfig::default() });
        assert!((par.phi.phi - seq.phi.phi).abs() <= 1e-9 * par.phi.phi);
    }

    #[test]
    fn residual_separates_solution_from_bad_points() {
        // At the solver's solution the point typically sits on the
        // A_p = C_p kink, where the *smoothed* gradient does not vanish
        // exactly — so the diagnostic is comparative: the residual at
        // the solution must be far below the residual at bad points.
        // Moderate smoothing is the diagnostic's operating point: sharp
        // enough to approximate the exact objective, soft enough that the
        // inner DAG max-kinks keep usable gradients.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = allocate(&g, m, &SolverConfig::default());
        let obj = MdgObjective::new(&g, m);
        let sharp = crate::expr::Sharpness::Smooth(64.0);
        let x_sol: Vec<f64> = g.nodes().map(|(id, _)| res.alloc.get(id).ln()).collect();
        let r_sol = optimality_residual(&obj, &x_sol, sharp);
        let r_ones = optimality_residual(&obj, &vec![0.0; g.node_count()], sharp);
        let r_allp = optimality_residual(&obj, &vec![obj.x_upper(); g.node_count()], sharp);
        assert!(r_sol < 0.01, "solution residual {r_sol}");
        assert!(r_ones > 10.0 * r_sol, "all-ones residual {r_ones} vs solution {r_sol}");
        assert!(r_allp > 10.0 * r_sol, "all-p residual {r_allp} vs solution {r_sol}");
    }

    #[test]
    fn zero_time_budget_is_a_typed_error() {
        let g = example_fig1_mdg();
        let cfg = SolverConfig { time_limit: Some(Duration::ZERO), ..SolverConfig::fast() };
        let err = try_allocate(&g, Machine::cm5(4), &cfg).unwrap_err();
        assert!(matches!(err, SolverError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn mid_run_iteration_budget_returns_best_so_far() {
        let g = example_fig1_mdg();
        let cfg = SolverConfig { max_total_iters: Some(5), ..SolverConfig::fast() };
        let r = try_allocate(&g, Machine::cm5(4), &cfg).unwrap();
        assert!(r.phi.phi.is_finite() && r.phi.phi > 0.0);
        // The shared counter may overshoot by at most one per concurrent
        // start; the point is the watchdog cut the run short.
        assert!(r.iterations <= 5 + r.starts, "{} iterations", r.iterations);
        assert_eq!(r.tier, FallbackTier::Primary);
    }

    #[test]
    fn invalid_sharpness_is_a_typed_error() {
        let g = example_fig1_mdg();
        let cfg = SolverConfig { sharpness_schedule: vec![f64::NAN], ..SolverConfig::fast() };
        let err = try_allocate(&g, Machine::cm5(4), &cfg).unwrap_err();
        assert!(matches!(err, SolverError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn bad_machine_is_a_typed_error() {
        let g = example_fig1_mdg();
        let mut m = Machine::cm5(4);
        m.xfer.t_ss = f64::NAN;
        let err = try_allocate(&g, m, &SolverConfig::fast()).unwrap_err();
        assert!(matches!(err, SolverError::BadObjective(_)), "{err}");
    }

    #[test]
    fn resilient_degrades_to_coordinate_on_exhausted_budget() {
        let g = example_fig1_mdg();
        let cfg = SolverConfig { time_limit: Some(Duration::ZERO), ..SolverConfig::fast() };
        let r = allocate_resilient(&g, Machine::cm5(4), &cfg);
        assert_eq!(r.tier, FallbackTier::Coordinate);
        assert!(r.phi.phi.is_finite() && r.phi.phi > 0.0);
        for (id, _) in g.nodes() {
            assert!((1.0..=4.0 + 1e-9).contains(&r.alloc.get(id)));
        }
    }

    #[test]
    fn resilient_bottoms_out_at_equal_split() {
        // A NaN transfer constant on a graph with real data transfers
        // kills both real solvers (typed error from the gradient solver,
        // caught panic from coordinate descent's objective builder); the
        // analytic split must still produce an allocation.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let mut m = Machine::cm5(4);
        m.xfer.t_ss = f64::NAN;
        let r = allocate_resilient(&g, m, &SolverConfig::fast());
        assert_eq!(r.tier, FallbackTier::EqualSplit);
        for (id, _) in g.nodes() {
            assert!((1.0..=4.0 + 1e-9).contains(&r.alloc.get(id)));
        }
    }

    #[test]
    fn equal_split_is_feasible_and_finite() {
        let g = example_fig1_mdg();
        let r = equal_split_allocation(&g, Machine::cm5(4));
        assert_eq!(r.tier, FallbackTier::EqualSplit);
        assert!(r.phi.phi.is_finite() && r.phi.phi > 0.0);
        // 3 compute nodes on 4 procs: everyone gets floor-ish p/m >= 1.
        assert!((r.alloc.get(NodeId(1)) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.alloc.get(g.start()), 1.0);
    }

    #[test]
    fn fast_config_is_still_reasonable() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let full = allocate(&g, m, &SolverConfig::default());
        let fast = allocate(&g, m, &SolverConfig::fast());
        assert!(
            fast.phi.phi <= full.phi.phi * 1.05,
            "fast {} vs full {}",
            fast.phi.phi,
            full.phi.phi
        );
    }
}
