//! Numeric convexity probes.
//!
//! The paper's correctness argument rests on the objective being a convex
//! program after the log substitution. These helpers test that claim
//! empirically on arbitrary objectives: sample segment midpoints and
//! report any violation of midpoint convexity. They are used by unit
//! tests, the property-test suite, and the `ablation_solver_quality`
//! bench.

/// A detected violation of midpoint convexity.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexityViolation {
    /// Index of the first segment endpoint in the probe set.
    pub i: usize,
    /// Index of the second segment endpoint.
    pub j: usize,
    /// `f(midpoint)`.
    pub mid_value: f64,
    /// `(f(a) + f(b)) / 2`.
    pub chord_value: f64,
}

/// Check midpoint convexity of `f` over all pairs from `points`.
/// Violations beyond `rel_tol` (relative to the chord value) are
/// collected; an empty vector is consistent with convexity.
pub fn probe_midpoint_convexity<F>(
    f: F,
    points: &[Vec<f64>],
    rel_tol: f64,
) -> Vec<ConvexityViolation>
where
    F: Fn(&[f64]) -> f64,
{
    let mut violations = Vec::new();
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let mid: Vec<f64> =
                points[i].iter().zip(&points[j]).map(|(a, b)| (a + b) / 2.0).collect();
            let mid_value = f(&mid);
            let chord_value = 0.5 * (f(&points[i]) + f(&points[j]));
            if mid_value > chord_value + rel_tol * chord_value.abs().max(1e-300) {
                violations.push(ConvexityViolation { i, j, mid_value, chord_value });
            }
        }
    }
    violations
}

/// Deterministic low-discrepancy probe points inside `[0, ub]^n`
/// (a simple Weyl/Kronecker sequence — good spread, no RNG dependency).
pub fn probe_points(n: usize, ub: f64, count: usize) -> Vec<Vec<f64>> {
    // Irrational stride per dimension (fractional powers of the plastic
    // constant generalization).
    let mut points = Vec::with_capacity(count);
    let g = 1.324_717_957_244_746_f64; // plastic number
    let alphas: Vec<f64> = (1..=n).map(|d| (1.0 / g.powi(d as i32)).fract()).collect();
    for k in 1..=count {
        let p: Vec<f64> = alphas.iter().map(|a| ((k as f64) * a).fract() * ub).collect();
        points.push(p);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_function_has_no_violations() {
        let pts = probe_points(3, 4.0, 10);
        let v = probe_midpoint_convexity(|x| x.iter().map(|a| a * a).sum::<f64>(), &pts, 1e-12);
        assert!(v.is_empty());
    }

    #[test]
    fn concave_function_is_flagged() {
        let pts = probe_points(2, 4.0, 8);
        let v = probe_midpoint_convexity(|x| -(x.iter().map(|a| a * a).sum::<f64>()), &pts, 1e-12);
        assert!(!v.is_empty());
        let first = &v[0];
        assert!(first.mid_value > first.chord_value);
    }

    #[test]
    fn probe_points_stay_in_box() {
        let pts = probe_points(5, 2.5, 40);
        assert_eq!(pts.len(), 40);
        for p in &pts {
            assert_eq!(p.len(), 5);
            assert!(p.iter().all(|&x| (0.0..=2.5).contains(&x)));
        }
    }

    #[test]
    fn probe_points_are_spread() {
        // Not all identical, and distinct across indices.
        let pts = probe_points(2, 1.0, 16);
        let distinct: std::collections::HashSet<String> =
            pts.iter().map(|p| format!("{:.6},{:.6}", p[0], p[1])).collect();
        assert_eq!(distinct.len(), 16);
    }
}
