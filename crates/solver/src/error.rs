//! Typed solver failures and the degradation-ladder tier labels.
//!
//! [`SolverError`] replaces the panics the solver used to raise on bad
//! configurations, non-finite objectives, and exhausted budgets, so the
//! serving layer can turn solver misbehavior into a *degraded* answer
//! instead of a dead worker. [`FallbackTier`] records which rung of the
//! ladder produced an [`crate::AllocationResult`]:
//!
//! 1. `Primary` — projected gradient converged normally;
//! 2. `Coordinate` — the gradient solver failed, the gradient-free
//!    coordinate-descent cross-check produced the allocation;
//! 3. `EqualSplit` — both solvers failed; the analytic `p/m`-per-node
//!    split is always finite and feasible.

use std::time::Duration;

/// Which rung of the degradation ladder produced an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackTier {
    /// The projected-gradient solver succeeded (no degradation).
    Primary,
    /// The distributed consensus-ADMM solver produced the allocation
    /// (a peer of `Primary` for graphs too large for one dense solve,
    /// not a degradation rung).
    Admm,
    /// Fell back to gradient-free coordinate descent.
    Coordinate,
    /// Fell back to the analytic equal-split allocation.
    EqualSplit,
}

impl FallbackTier {
    /// Stable wire/report label for the tier.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackTier::Primary => "none",
            FallbackTier::Admm => "admm",
            FallbackTier::Coordinate => "coordinate",
            FallbackTier::EqualSplit => "equal-split",
        }
    }

    /// True for any tier below the primary solver. The ADMM tier is an
    /// alternative full-quality path, not a degradation.
    pub fn is_degraded(self) -> bool {
        !matches!(self, FallbackTier::Primary | FallbackTier::Admm)
    }
}

impl std::fmt::Display for FallbackTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A solver failure the caller can act on (retry, degrade, reject).
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The [`crate::SolverConfig`] itself is unusable (non-finite
    /// sharpness, sharpness below 1, bad tolerance).
    InvalidConfig(String),
    /// The (graph, machine) pair cannot form a valid objective
    /// (non-finite node costs, invalid transfer constants).
    BadObjective(String),
    /// Every start converged to a non-finite objective value.
    NonFinite {
        /// The best (still non-finite) `Phi` observed.
        phi: f64,
    },
    /// The time/iteration budget was exhausted before any descent
    /// progress was made.
    BudgetExceeded {
        /// Wall time spent before giving up.
        elapsed: Duration,
        /// Gradient iterations completed before giving up.
        iterations: usize,
    },
    /// A solver start thread panicked.
    StartPanicked(String),
    /// Brute-force enumeration would exceed the caller's limit.
    TooLarge {
        /// The number of combinations that would have to be evaluated.
        combinations: u128,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::InvalidConfig(msg) => write!(f, "invalid solver config: {msg}"),
            SolverError::BadObjective(msg) => write!(f, "objective cannot be built: {msg}"),
            SolverError::NonFinite { phi } => {
                write!(f, "solver produced a non-finite objective (Phi = {phi})")
            }
            SolverError::BudgetExceeded { elapsed, iterations } => write!(
                f,
                "solver budget exhausted after {} ms / {iterations} iterations",
                elapsed.as_millis()
            ),
            SolverError::StartPanicked(msg) => write!(f, "solver start panicked: {msg}"),
            SolverError::TooLarge { combinations } => {
                write!(f, "brute force would evaluate {combinations} allocations")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(FallbackTier::Primary.as_str(), "none");
        assert_eq!(FallbackTier::Admm.as_str(), "admm");
        assert_eq!(FallbackTier::Coordinate.as_str(), "coordinate");
        assert_eq!(FallbackTier::EqualSplit.as_str(), "equal-split");
        assert!(!FallbackTier::Primary.is_degraded());
        assert!(!FallbackTier::Admm.is_degraded());
        assert!(FallbackTier::Coordinate.is_degraded());
        assert!(FallbackTier::EqualSplit.is_degraded());
    }

    #[test]
    fn errors_render_their_facts() {
        let e = SolverError::BudgetExceeded { elapsed: Duration::from_millis(7), iterations: 3 };
        let s = e.to_string();
        assert!(s.contains("7 ms") && s.contains("3 iterations"), "{s}");
        let t = SolverError::TooLarge { combinations: 27 }.to_string();
        assert!(t.contains("27"), "{t}");
    }
}
