//! A counting global allocator for allocation-accounting tests and the
//! `bench-solve` allocs-per-iteration metric.
//!
//! Wraps the system allocator and bumps a relaxed atomic on every
//! `alloc` / `alloc_zeroed` / `realloc`. Install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: paradigm_solver::CountingAllocator = paradigm_solver::CountingAllocator;
//! ```
//!
//! and read deltas of [`allocation_count`] around the region of
//! interest. Counts are process-global, so measurements are only
//! meaningful while no other thread allocates — the `alloc_free` test
//! and the benchmark take their deltas on a single thread.

use std::alloc::{GlobalAlloc, Layout, System};
// The global allocator must never hit a model scheduling point: a shim
// atomic inside `alloc()` would re-enter the scheduler from every
// allocation the scheduler itself performs. Raw std stays correct here —
// the counter is diagnostic, not synchronization. (raw-sync: allow)
use std::sync::atomic::{AtomicU64, Ordering}; // raw-sync: allow

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocation events (frees are not
/// counted: the metric of interest is "how often does the hot loop ask
/// the allocator for memory", and every free pairs with a counted
/// alloc).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counter bump has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Number of allocation events since process start (0 unless
/// [`CountingAllocator`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
