//! Sampled re-verification of served solve results.
//!
//! The serving layer answers from a cache and a degradation ladder, so a
//! single bad entry — a stale schedule, a corrupted fallback, a solver
//! regression — can be replayed to many clients. [`audit_solve_output`]
//! re-checks one [`SolveOutput`] from first principles using
//! [`paradigm_analyze::ScheduleAuditor`]: node and edge weights are
//! re-derived from the graph, machine, and rounded allocation, the
//! completion recurrence is re-run, machine-wide capacity is swept, and
//! the reported `Phi`/`T_psa` are checked against the schedule itself.
//! Nothing the solver computed is trusted.
//!
//! [`crate::ServeConfig::audit_rate`] samples this check over live
//! traffic (every `N`th completed response, including cache hits and
//! degraded-tier answers); results land in the `audit_pass` /
//! `audit_fail` metrics and the first failure is kept verbatim for
//! post-mortems.

use paradigm_analyze::{AuditClaims, AuditReport, ScheduleAuditor};
use paradigm_core::{SolveOutput, SolveSpec};
use paradigm_cost::Allocation;
use paradigm_mdg::Mdg;

/// Re-verify one pipeline output against the graph and spec that
/// produced it. Returns the full audit report; [`AuditReport::is_clean`]
/// is the pass/fail signal.
pub fn audit_solve_output(g: &Mdg, spec: &SolveSpec, out: &SolveOutput) -> AuditReport {
    // Rebuild the rounded allocation the schedule claims to realize.
    // `SolveOutput::alloc` lists compute nodes in node-index order —
    // the same order `g.nodes()` yields them — and structural nodes
    // always run on one processor.
    let mut alloc = Allocation::uniform(g, 1.0);
    for ((id, _), entry) in g.nodes().filter(|(_, n)| !n.is_structural()).zip(&out.alloc) {
        alloc.set(id, f64::from(entry.procs.max(1)));
    }
    let claims = AuditClaims { phi: out.phi, t_psa: out.t_psa, tier: out.degraded };
    ScheduleAuditor::new().audit(g, &spec.machine, &alloc, &out.schedule, &claims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_core::{gallery_graph, solve_pipeline, solve_pipeline_degraded};
    use paradigm_cost::Machine;

    #[test]
    fn primary_pipeline_output_audits_clean() {
        let g = gallery_graph("fig1").unwrap();
        let spec = SolveSpec::new(Machine::cm5(4));
        let out = solve_pipeline(&g, &spec);
        let rep = audit_solve_output(&g, &spec, &out);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn degraded_pipeline_output_audits_clean() {
        let g = gallery_graph("fig1").unwrap();
        let spec = SolveSpec::new(Machine::cm5(4));
        let out = solve_pipeline_degraded(&g, &spec);
        let rep = audit_solve_output(&g, &spec, &out);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn corrupted_output_fails_the_audit() {
        let g = gallery_graph("fig1").unwrap();
        let spec = SolveSpec::new(Machine::cm5(4));
        let mut out = solve_pipeline(&g, &spec);
        out.t_psa *= 2.0; // claim no longer matches the schedule
        let rep = audit_solve_output(&g, &spec, &out);
        assert!(!rep.is_clean());
    }
}
