//! A blocking NDJSON protocol client with retry and backoff.
//!
//! [`Client`] wraps one TCP connection to a `paradigm serve` instance
//! and resends retryable failures under a [`RetryPolicy`]:
//!
//! * transport faults — connection reset, EOF mid-response, an
//!   unparseable (truncated) frame — reconnect and resend;
//! * protocol errors marked `"retryable": true` (today: `shed` from
//!   admission control) — back off and resend on the same connection.
//!
//! Non-retryable protocol errors (`bad-request`, `invalid`, `deadline`,
//! `solve-failed`) are returned to the caller immediately: resending an
//! input the server has *decided* against cannot succeed.
//!
//! Backoff is exponential with deterministic decorrelated jitter
//! (seeded splitmix64), so load tests stay reproducible while still
//! spreading retry storms.

use crate::json::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry tuning.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts after the first (0 = fail fast).
    pub max_retries: u32,
    /// First backoff; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed (reproducible load tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed: 0,
        }
    }
}

/// A failed request, after retries were exhausted or ruled out.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF).
    Io(std::io::Error),
    /// The server answered with a non-retryable error response.
    Rejected {
        /// The error's `kind` discriminator.
        kind: String,
        /// The human-readable message.
        message: String,
    },
    /// Retries exhausted; holds the last failure's description.
    RetriesExhausted(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Rejected { kind, message } => write!(f, "rejected ({kind}): {message}"),
            ClientError::RetriesExhausted(last) => {
                write!(f, "retries exhausted; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One connection to a serve instance, plus the retry machinery.
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<BufReader<TcpStream>>,
    retries: u64,
    reconnects: u64,
    jitter_state: u64,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connect to `addr` with the given retry policy. The initial
    /// connection is lazy — made on the first request — so a briefly
    /// unavailable server costs a retry, not a construction failure.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Client {
        let jitter_state = policy.seed;
        Client {
            addr,
            policy,
            conn: None,
            retries: 0,
            reconnects: 0,
            jitter_state,
            read_timeout: None,
        }
    }

    /// Bound how long one request may block waiting for a response.
    /// A timed-out read surfaces as a transport fault (the connection
    /// is dropped and, policy permitting, the request is retried), so
    /// a hung server cannot stall the caller indefinitely.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Client {
        self.read_timeout = Some(timeout);
        self
    }

    /// Connect with default retries.
    pub fn connect(addr: SocketAddr) -> Client {
        Client::new(addr, RetryPolicy::default())
    }

    /// Total resends performed over this client's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Times the connection was re-established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Send one request line, retrying per policy, until a terminal
    /// response (success or non-retryable error) or exhaustion.
    pub fn request(&mut self, line: &str) -> Result<Json, ClientError> {
        let mut last_failure = String::new();
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                self.retries += 1;
                self.backoff(attempt);
            }
            match self.round_trip(line) {
                Ok(doc) => {
                    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
                        return Ok(doc);
                    }
                    let kind =
                        doc.get("kind").and_then(Json::as_str).unwrap_or("unknown").to_string();
                    let message = doc.get("error").and_then(Json::as_str).unwrap_or("").to_string();
                    let retryable = doc.get("retryable").and_then(Json::as_bool).unwrap_or(false);
                    if !retryable {
                        return Err(ClientError::Rejected { kind, message });
                    }
                    last_failure = format!("{kind}: {message}");
                }
                Err(e) => {
                    // Transport fault: drop the connection so the next
                    // attempt reconnects from scratch.
                    self.conn = None;
                    last_failure = e;
                }
            }
        }
        Err(ClientError::RetriesExhausted(last_failure))
    }

    /// One send/receive on the current connection (reconnecting first
    /// if needed). Any I/O or framing problem is a `String` so the
    /// retry loop can uniformly treat it as transient.
    fn round_trip(&mut self, line: &str) -> Result<Json, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(self.read_timeout).ok();
            self.conn = Some(BufReader::new(stream));
            self.reconnects += 1;
        }
        let reader = self.conn.as_mut().expect("just connected");
        let stream = reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("connection closed before response".into());
        }
        if !response.ends_with('\n') {
            return Err("truncated response frame".into());
        }
        parse(response.trim()).map_err(|e| format!("bad response frame: {e}"))
    }

    /// Exponential backoff with deterministic jitter: sleep in
    /// `[d/2, d)` where `d = min(base * 2^(attempt-1), cap)`.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.cap)
            .as_micros() as u64;
        if exp == 0 {
            return;
        }
        self.jitter_state = splitmix64(self.jitter_state);
        let us = exp / 2 + self.jitter_state % (exp / 2).max(1);
        std::thread::sleep(Duration::from_micros(us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::service::ServeConfig;
    use std::sync::atomic::Ordering;

    fn start_server(cfg: ServeConfig) -> (SocketAddr, impl FnOnce()) {
        let server = Server::bind(ServerConfig { service: cfg, port: 0 }).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        let handle = std::thread::spawn(move || server.run());
        (addr, move || {
            flag.store(true, Ordering::Relaxed);
            handle.join().unwrap();
        })
    }

    #[test]
    fn plain_round_trip() {
        let (addr, stop) = start_server(ServeConfig {
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        let mut c = Client::connect(addr);
        let doc = c.request(r#"{"op":"solve","gallery":"fig1","procs":4}"#).unwrap();
        assert!((doc.get("t_psa").and_then(Json::as_f64).unwrap() - 14.3).abs() < 1e-9);
        assert_eq!(c.retries(), 0);
        stop();
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let (addr, stop) = start_server(ServeConfig {
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        let mut c = Client::connect(addr);
        let err = c.request(r#"{"op":"solve","gallery":"nope"}"#).unwrap_err();
        match err {
            ClientError::Rejected { kind, .. } => assert_eq!(kind, "bad-request"),
            other => panic!("expected Rejected, got {other}"),
        }
        assert_eq!(c.retries(), 0, "bad requests must not be retried");
        stop();
    }

    #[test]
    fn connection_faults_are_retried_until_answered() {
        // Drop ~40% of responses: with 5 retries the request still gets
        // through, and the retry counter shows work was done.
        let (addr, stop) = start_server(ServeConfig {
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 4,
            chaos: Some(crate::chaos::FaultPlan { seed: 21, conn_drop: 0.4, ..Default::default() }),
            ..ServeConfig::default()
        });
        let mut c =
            Client::new(addr, RetryPolicy { max_retries: 10, seed: 7, ..RetryPolicy::default() });
        let mut answered = 0;
        for procs in [2u32, 4, 8, 16] {
            let line = format!(r#"{{"op":"solve","gallery":"fig1","procs":{procs}}}"#);
            answered += usize::from(c.request(&line).is_ok());
        }
        assert_eq!(answered, 4, "every request eventually answered");
        assert!(c.retries() >= 1, "drops must have forced retries");
        assert!(c.reconnects() >= 2, "each drop forces a reconnect");
        stop();
    }
}
