//! Sharded, LRU-bounded, content-addressed result cache with
//! single-flight deduplication.
//!
//! Keys are the 128-bit canonical fingerprints produced by
//! [`paradigm_core::solve_fingerprint`]; values are `Arc`-shared solve
//! outputs. The map is split into [`SHARDS`] independently locked
//! shards (selected by the key's low bits) so concurrent requests for
//! different keys never contend on one mutex.
//!
//! **Single-flight:** the first requester of a missing key installs an
//! in-flight marker and computes *outside* the shard lock; every
//! concurrent requester of the same key blocks on that flight's condvar
//! instead of re-running the (milliseconds-expensive, deterministic)
//! solve. When the computation finishes, all waiters receive the same
//! `Arc`. If it fails (the pipeline panicked on a degenerate input),
//! the error is propagated to all waiters and the marker is removed so
//! a later request can retry — failures are never cached.
//!
//! **LRU bound:** each shard holds at most `capacity / SHARDS` ready
//! entries. Recency is a monotone tick stamped on every touch; eviction
//! scans the shard for the stalest *ready* entry (in-flight markers are
//! never evicted). The scan is `O(shard len)`, which at the bounded
//! shard sizes this service uses is cheaper and simpler than an
//! intrusive list.

use paradigm_race::sync::atomic::{AtomicU64, Ordering};
use paradigm_race::sync::{Condvar, Mutex};
use paradigm_race::{plock, pwait};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 8;

/// How a lookup was satisfied, for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ready entry found.
    Hit,
    /// This caller ran the computation.
    Miss,
    /// Another caller was already computing this key; we waited.
    DedupWait,
}

/// One in-flight computation: waiters block on the condvar until the
/// leader publishes `Some(result)`.
struct Flight<V> {
    done: Mutex<Option<Result<Arc<V>, String>>>,
    cv: Condvar,
}

enum Entry<V> {
    Ready { value: Arc<V>, tick: u64 },
    InFlight(Arc<Flight<V>>),
}

struct Shard<V> {
    map: Mutex<HashMap<u128, Entry<V>>>,
}

/// The sharded single-flight cache. `V` is the cached value type.
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// A cache bounded to roughly `capacity` ready entries in total
    /// (each shard holds at most `ceil(capacity / SHARDS)`).
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARDS).max(1);
        ShardedCache {
            shards: (0..SHARDS).map(|_| Shard { map: Mutex::new(HashMap::new()) }).collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Shard<V> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Total ready entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| plock(&s.map).values().filter(|e| matches!(e, Entry::Ready { .. })).count())
            .sum()
    }

    /// True if no ready entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Peek at `key` without computing: returns the ready entry if one
    /// exists (refreshing its recency), `None` otherwise. In-flight
    /// computations are *not* waited on — the degraded serving path
    /// uses this to answer from cache while the circuit breaker is open
    /// without ever blocking on the (possibly wedged) primary solver.
    pub fn get(&self, key: u128) -> Option<Arc<V>> {
        let mut map = plock(&self.shard(key).map);
        match map.get_mut(&key) {
            Some(Entry::Ready { value, tick }) => {
                *tick = self.next_tick();
                Some(Arc::clone(value))
            }
            _ => None,
        }
    }

    /// Look up `key`, computing it with `compute` on a miss. Returns
    /// the shared value and how it was obtained. Concurrent calls with
    /// the same key during the computation block and share the result.
    ///
    /// `compute` runs without any shard lock held. A panic inside it is
    /// caught, reported as `Err` to this caller *and* all waiters, and
    /// leaves the key uncached.
    pub fn get_or_compute<F>(&self, key: u128, compute: F) -> (Result<Arc<V>, String>, Outcome)
    where
        F: FnOnce() -> V,
    {
        let shard = self.shard(key);
        let flight = {
            let mut map = plock(&shard.map);
            match map.get_mut(&key) {
                Some(Entry::Ready { value, tick }) => {
                    *tick = self.next_tick();
                    return (Ok(Arc::clone(value)), Outcome::Hit);
                }
                Some(Entry::InFlight(flight)) => {
                    let flight = Arc::clone(flight);
                    drop(map);
                    let mut done = plock(&flight.done);
                    while done.is_none() {
                        done = pwait(&flight.cv, done);
                    }
                    return (done.clone().expect("checked above"), Outcome::DedupWait);
                }
                None => {
                    let flight = Arc::new(Flight { done: Mutex::new(None), cv: Condvar::new() });
                    map.insert(key, Entry::InFlight(Arc::clone(&flight)));
                    flight
                }
            }
        };

        // We are the leader: compute outside the lock.
        let result: Result<Arc<V>, String> =
            catch_unwind(AssertUnwindSafe(compute)).map(Arc::new).map_err(|panic| {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("solve panicked");
                format!("solve failed: {msg}")
            });

        // Publish to the map first (so new arrivals see Ready/absent),
        // then wake the waiters parked on the flight.
        {
            let mut map = plock(&shard.map);
            match &result {
                Ok(value) => {
                    map.insert(
                        key,
                        Entry::Ready { value: Arc::clone(value), tick: self.next_tick() },
                    );
                    self.evict_if_over(&mut map);
                }
                Err(_) => {
                    map.remove(&key);
                }
            }
        }
        {
            let mut done = plock(&flight.done);
            *done = Some(result.clone());
            flight.cv.notify_all();
        }
        (result, Outcome::Miss)
    }

    /// Evict stalest ready entries until the shard is within capacity.
    fn evict_if_over(&self, map: &mut HashMap<u128, Entry<V>>) {
        loop {
            let ready = map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { tick, .. } => Some((*k, *tick)),
                    Entry::InFlight(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= self.per_shard_capacity {
                return;
            }
            if let Some(&(stalest, _)) = ready.iter().min_by_key(|(_, tick)| *tick) {
                map.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn hit_after_miss() {
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        let (v, o) = cache.get_or_compute(7, || 42);
        assert_eq!((*v.unwrap(), o), (42, Outcome::Miss));
        let (v, o) = cache.get_or_compute(7, || unreachable!("must not recompute"));
        assert_eq!((*v.unwrap(), o), (42, Outcome::Hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_returns_ready_entries_only() {
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        assert_eq!(cache.get(3), None);
        assert_eq!(cache.get_or_compute(3, || 30).1, Outcome::Miss);
        assert_eq!(cache.get(3).as_deref(), Some(&30));
        // Peeking refreshes recency: with 2 slots per shard, touching 0
        // via get() must make 8 the eviction victim when 16 arrives.
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        assert_eq!(cache.get_or_compute(0, || 10).1, Outcome::Miss);
        assert_eq!(cache.get_or_compute(8, || 20).1, Outcome::Miss);
        assert!(cache.get(0).is_some());
        assert_eq!(cache.get_or_compute(16, || 30).1, Outcome::Miss);
        assert!(cache.get(0).is_some());
        assert_eq!(cache.get(8), None);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(16));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(thread::spawn(move || {
                let (v, o) = cache.get_or_compute(99, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so waiters really pile up.
                    thread::sleep(std::time::Duration::from_millis(30));
                    1234u64
                });
                assert_eq!(*v.unwrap(), 1234);
                o
            }));
        }
        let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single flight");
        // Exactly one leader; the rest either waited on the flight or
        // arrived after publication and hit.
        assert_eq!(outcomes.iter().filter(|&&o| o == Outcome::Miss).count(), 1);
        let followers =
            outcomes.iter().filter(|&&o| matches!(o, Outcome::DedupWait | Outcome::Hit)).count();
        assert_eq!(followers, 7);
    }

    #[test]
    fn lru_evicts_stalest_within_shard() {
        // Capacity 8 over 8 shards = 1 ready entry per shard. Keys 0 and
        // 8 land in shard 0; inserting both must evict the staler one.
        let cache: ShardedCache<u64> = ShardedCache::new(8);
        assert_eq!(cache.get_or_compute(0, || 10).1, Outcome::Miss);
        assert_eq!(cache.get_or_compute(8, || 20).1, Outcome::Miss);
        assert_eq!(cache.evictions(), 1);
        // Key 0 was evicted; recomputing it is a miss.
        let (_, o) = cache.get_or_compute(0, || 11);
        assert_eq!(o, Outcome::Miss);
    }

    #[test]
    fn touch_refreshes_recency() {
        // Capacity 16 over 8 shards = 2 ready entries per shard; keys
        // 0, 8, 16 all land in shard 0.
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        assert_eq!(cache.get_or_compute(0, || 10).1, Outcome::Miss);
        assert_eq!(cache.get_or_compute(8, || 20).1, Outcome::Miss);
        // Touch 0 so 8 becomes the stalest: 16's insert must evict 8.
        assert_eq!(cache.get_or_compute(0, || unreachable!()).1, Outcome::Hit);
        assert_eq!(cache.get_or_compute(16, || 30).1, Outcome::Miss);
        let (_, o) = cache.get_or_compute(0, || unreachable!());
        assert_eq!(o, Outcome::Hit);
        let (_, o8) = cache.get_or_compute(8, || 21);
        assert_eq!(o8, Outcome::Miss);
    }

    #[test]
    fn panicking_compute_propagates_and_is_not_cached() {
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        let (r, o) = cache.get_or_compute(5, || panic!("bad graph"));
        assert_eq!(o, Outcome::Miss);
        let msg = r.unwrap_err();
        assert!(msg.contains("bad graph"), "{msg}");
        assert_eq!(cache.len(), 0);
        // Retry succeeds.
        let (v, o) = cache.get_or_compute(5, || 7);
        assert_eq!((*v.unwrap(), o), (7, Outcome::Miss));
    }

    #[test]
    fn panic_wakes_waiters_with_error() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(16));
        let mut handles = Vec::new();
        for i in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(thread::spawn(move || {
                cache.get_or_compute(77, || {
                    thread::sleep(std::time::Duration::from_millis(20 + i));
                    panic!("poisoned input")
                })
            }));
        }
        // Every compute panics, so whether a thread led its own flight
        // or waited on another's, it must observe an error.
        for h in handles {
            let (r, _) = h.join().unwrap();
            assert!(r.is_err());
        }
        assert_eq!(cache.len(), 0);
    }
}
