//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request, in order.
//! Grammar (field order free; unknown fields rejected to catch typos):
//!
//! ```text
//! request   = solve | admm_block | stats | ping | shutdown
//! solve     = { "op":"solve", graph-src, "procs":int?, "machine":str?,
//!               "policy":("est"|"hlf")?, "pb":int?, "refine":bool?,
//!               "full_solver":bool?, "simulate":bool?, "admm":bool?,
//!               "deadline_ms":int? }
//! graph-src = "gallery": name            ; built-in workload, or
//!           | "graph": mdg-text          ; inline MDG text format
//! stats     = { "op":"stats" }
//! ping      = { "op":"ping" }
//! shutdown  = { "op":"shutdown" }
//! admm_block = see the [`crate::worker`] module — a consensus-ADMM
//!              block subproblem; only honoured by `serve --worker`
//!              nodes.
//!
//! response  = { "ok":true, ... } | { "ok":false, "error":str }
//! ```
//!
//! Defaults: `procs` 16, `machine` `"cm5"`, `policy` `"est"`, `pb`
//! automatic (Corollary 1), `refine`/`simulate`/`admm` false, fast
//! solver. A solve response carries `phi`, `t_psa`, `pb`,
//! `deviation_percent`, `utilization`, the allocation table,
//! `cached`/`deduplicated` flags, and the service latency in
//! microseconds; solves routed through the distributed tier add an
//! `admm` object with the coordinator's iteration counts and final
//! residuals.

use crate::json::{parse, Json};
use crate::service::{ServeError, Service, SolveResponse};
use crate::worker::{block_solution_response, parse_block_job};
use paradigm_admm::{solve_block_job, BlockJob};
use paradigm_core::{gallery_graph, machine_from_spec, SolveSpec, GALLERY_NAMES, MACHINE_SPECS};
use paradigm_mdg::{from_text, Mdg};
use paradigm_sched::SchedPolicy;
use std::sync::Arc;
use std::time::Duration;

/// A decoded request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Solve one graph under one spec.
    Solve {
        /// The graph to solve (already parsed/resolved).
        graph: Arc<Mdg>,
        /// Pipeline parameters.
        spec: SolveSpec,
        /// Max time the job may spend queued.
        deadline: Option<Duration>,
    },
    /// Solve one consensus-ADMM block subproblem (worker role only).
    AdmmBlock {
        /// The self-contained block x-update job.
        job: Box<BlockJob>,
    },
    /// Return the metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Decode one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line).map_err(|e| e.to_string())?;
    let Json::Obj(members) = &doc else {
        return Err("request must be a JSON object".into());
    };
    let op = doc.get("op").and_then(Json::as_str).ok_or("missing string field `op`")?;
    match op {
        "stats" | "ping" | "shutdown" => {
            if members.len() != 1 {
                return Err(format!("`{op}` takes no other fields"));
            }
            Ok(match op {
                "stats" => Request::Stats,
                "ping" => Request::Ping,
                _ => Request::Shutdown,
            })
        }
        "solve" => parse_solve(&doc, members),
        "admm_block" => {
            parse_block_job(&doc, members).map(|job| Request::AdmmBlock { job: Box::new(job) })
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

const SOLVE_FIELDS: [&str; 11] = [
    "op",
    "gallery",
    "graph",
    "procs",
    "machine",
    "policy",
    "pb",
    "refine",
    "full_solver",
    "simulate",
    "admm",
];

fn parse_solve(doc: &Json, members: &[(String, Json)]) -> Result<Request, String> {
    for (key, _) in members {
        if key != "deadline_ms" && !SOLVE_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in solve request"));
        }
    }
    let graph = match (doc.get("gallery"), doc.get("graph")) {
        (Some(_), Some(_)) => return Err("give `gallery` or `graph`, not both".into()),
        (Some(name), None) => {
            let name = name.as_str().ok_or("`gallery` must be a string")?;
            gallery_graph(name).ok_or_else(|| {
                format!("unknown gallery graph `{name}` (try {})", GALLERY_NAMES.join(", "))
            })?
        }
        (None, Some(text)) => {
            let text = text.as_str().ok_or("`graph` must be a string (MDG text format)")?;
            from_text(text).map_err(|e| format!("bad inline graph: {e}"))?
        }
        (None, None) => return Err("solve needs `gallery` or `graph`".into()),
    };
    let procs = match doc.get("procs") {
        None => 16,
        Some(v) => {
            let p = v.as_u64().ok_or("`procs` must be a non-negative integer")?;
            u32::try_from(p).ok().filter(|&p| p >= 1).ok_or("`procs` must be in 1..=2^32-1")?
        }
    };
    let machine_name = match doc.get("machine") {
        None => "cm5",
        Some(v) => v.as_str().ok_or("`machine` must be a string")?,
    };
    let machine = machine_from_spec(machine_name, procs).ok_or_else(|| {
        format!("unknown machine `{machine_name}` (try {})", MACHINE_SPECS.join(", "))
    })?;
    let policy = match doc.get("policy").map(|v| v.as_str().ok_or("`policy` must be a string")) {
        None => SchedPolicy::LowestEst,
        Some(Ok("est")) => SchedPolicy::LowestEst,
        Some(Ok("hlf")) => SchedPolicy::HighestLevelFirst,
        Some(Ok(other)) => return Err(format!("unknown policy `{other}` (try est, hlf)")),
        Some(Err(e)) => return Err(e.into()),
    };
    let pb = match doc.get("pb") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            u32::try_from(v.as_u64().ok_or("`pb` must be a non-negative integer")?)
                .map_err(|_| "`pb` out of range")?,
        ),
    };
    let flag = |key: &str| -> Result<bool, String> {
        match doc.get(key) {
            None => Ok(false),
            Some(v) => v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean")),
        }
    };
    let deadline = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(
            v.as_u64().ok_or("`deadline_ms` must be a non-negative integer")?,
        )),
    };
    let spec = SolveSpec {
        machine,
        policy,
        pb,
        refine: flag("refine")?,
        fast_solver: !flag("full_solver")?,
        simulate: flag("simulate")?,
        admm: flag("admm")?,
    };
    Ok(Request::Solve { graph: Arc::new(graph), spec, deadline })
}

/// Encode an error response. Every error carries a stable `kind`
/// discriminator and a `retryable` hint so clients can decide between
/// backing off and giving up without parsing prose.
pub fn error_response_with(message: &str, kind: &str, retryable: bool) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(message)),
        ("kind".into(), Json::str(kind)),
        ("retryable".into(), Json::Bool(retryable)),
    ])
}

/// Encode a request-parse error (`kind` `"bad-request"`, not
/// retryable — resending the same malformed frame cannot help).
pub fn error_response(message: &str) -> Json {
    error_response_with(message, "bad-request", false)
}

/// Encode a [`ServeError`] with its own kind and retryability.
pub fn serve_error_response(e: &ServeError) -> Json {
    error_response_with(&e.to_string(), e.kind(), e.retryable())
}

/// Encode a successful solve response.
pub fn solve_response(r: &SolveResponse) -> Json {
    let alloc: Vec<Json> = r
        .output
        .alloc
        .iter()
        .map(|a| {
            Json::Obj(vec![
                ("node".into(), Json::str(&a.node)),
                ("continuous".into(), Json::num(a.continuous)),
                ("procs".into(), Json::num(f64::from(a.procs))),
            ])
        })
        .collect();
    let mut members = vec![
        ("ok".into(), Json::Bool(true)),
        ("graph".into(), Json::str(&r.graph)),
        ("compute_nodes".into(), Json::num(r.output.compute_nodes as f64)),
        ("phi".into(), Json::num(r.output.phi)),
        ("t_psa".into(), Json::num(r.output.t_psa)),
        ("pb".into(), Json::num(f64::from(r.output.pb))),
        ("deviation_percent".into(), Json::num(r.output.deviation_percent)),
        ("utilization".into(), Json::num(r.output.utilization)),
        ("alloc".into(), Json::Arr(alloc)),
        ("cached".into(), Json::Bool(r.cached)),
        ("deduplicated".into(), Json::Bool(r.deduplicated)),
        ("service_us".into(), Json::num(r.service.as_micros() as f64)),
    ];
    if let Some(sim) = r.output.sim_makespan {
        members.push(("sim_makespan".into(), Json::num(sim)));
    }
    if r.output.degraded.is_degraded() {
        members.push(("degraded".into(), Json::str(r.output.degraded.as_str())));
    }
    if let Some(stats) = &r.output.admm {
        members.push((
            "admm".into(),
            Json::Obj(vec![
                ("blocks".into(), Json::num(stats.blocks as f64)),
                ("cut_edges".into(), Json::num(stats.cut_edges as f64)),
                ("outer_iters".into(), Json::num(stats.outer_iters as f64)),
                ("inner_iters".into(), Json::num(stats.inner_iters as f64)),
                ("polish_iters".into(), Json::num(stats.polish_iters as f64)),
                ("primal_residual".into(), Json::num(stats.primal_residual)),
                ("dual_residual".into(), Json::num(stats.dual_residual)),
                ("converged".into(), Json::Bool(stats.converged)),
                ("blocks_retried".into(), Json::num(stats.blocks_retried as f64)),
                ("blocks_stolen".into(), Json::num(stats.blocks_stolen as f64)),
                ("blocks_stale".into(), Json::num(stats.blocks_stale as f64)),
                ("max_block_stale_rounds".into(), Json::num(stats.max_block_stale_rounds as f64)),
                ("workers_quarantined".into(), Json::num(stats.workers_quarantined as f64)),
                ("backend_downgrades".into(), Json::num(stats.backend_downgrades as f64)),
            ]),
        ));
    }
    Json::Obj(members)
}

/// Dispatch one already-parsed request against a service. `Shutdown`
/// and `Ping` are acknowledged here; the *server* decides what shutdown
/// means for its accept loop.
pub fn dispatch(service: &Service, request: &Request) -> Json {
    match request {
        Request::Ping => {
            Json::Obj(vec![("ok".into(), Json::Bool(true)), ("pong".into(), Json::Bool(true))])
        }
        Request::Stats => Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("stats".into(), service.stats().to_json()),
        ]),
        Request::Shutdown => Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("shutting_down".into(), Json::Bool(true)),
        ]),
        Request::Solve { graph, spec, deadline } => {
            match service.submit_with_deadline(Arc::clone(graph), spec.clone(), *deadline) {
                Ok(r) => solve_response(&r),
                Err(e) => serve_error_response(&e),
            }
        }
        Request::AdmmBlock { job } => {
            if !service.worker_enabled() {
                return error_response_with(
                    "admm_block requires worker mode (start with `serve --worker`)",
                    "not-a-worker",
                    false,
                );
            }
            // Block solves bypass the queue and cache: they are the
            // inner loop of a distributed solve, change every round,
            // and the coordinator already paces its own requests.
            if let Some(chaos) = service.chaos() {
                chaos.maybe_block_slow();
                chaos.maybe_block_crash();
            }
            let mut ws = paradigm_solver::workspace::acquire_batch();
            match solve_block_job(job, &mut ws) {
                Ok(sol) => {
                    service.record_block_solved();
                    block_solution_response(&sol)
                }
                Err(e) => error_response_with(&e, "invalid", false),
            }
        }
    }
}

/// Handle one raw request line end-to-end: parse, dispatch, encode.
/// The bool is true if the client asked for shutdown.
pub fn handle_line(service: &Service, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(msg) => (error_response(&msg).render(), false),
        Ok(req) => {
            let shutdown = matches!(req, Request::Shutdown);
            (dispatch(service, &req).render(), shutdown)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use paradigm_mdg::to_text;

    fn svc() -> Service {
        Service::start(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            queue_capacity: 8,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn solve_request_parses_with_defaults() {
        let req = parse_request(r#"{"op":"solve","gallery":"fig1"}"#).unwrap();
        let Request::Solve { graph, spec, deadline } = req else { panic!("not solve") };
        assert_eq!(graph.name(), "fig1-example");
        assert_eq!(spec.machine.procs, 16);
        assert_eq!(spec.policy, SchedPolicy::LowestEst);
        assert!(spec.fast_solver && !spec.refine && !spec.simulate);
        assert!(spec.pb.is_none() && deadline.is_none());
    }

    #[test]
    fn solve_request_full_options() {
        let req = parse_request(
            r#"{"op":"solve","gallery":"cmm","procs":32,"machine":"mesh","policy":"hlf",
                "pb":8,"refine":true,"full_solver":true,"simulate":true,"deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Solve { spec, deadline, .. } = req else { panic!("not solve") };
        assert_eq!(spec.machine.procs, 32);
        assert!(spec.machine.xfer.t_n > 0.0, "mesh has a network term");
        assert_eq!(spec.policy, SchedPolicy::HighestLevelFirst);
        assert_eq!(spec.pb, Some(8));
        assert!(spec.refine && spec.simulate && !spec.fast_solver);
        assert_eq!(deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn inline_graph_accepted() {
        let text = to_text(&paradigm_core::gallery_graph("fig1").unwrap());
        let line = Json::Obj(vec![
            ("op".into(), Json::str("solve")),
            ("graph".into(), Json::str(text)),
            ("procs".into(), Json::num(4.0)),
        ])
        .render();
        let Request::Solve { graph, .. } = parse_request(&line).unwrap() else {
            panic!("not solve")
        };
        assert_eq!(graph.compute_node_count(), 3);
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"solve"}"#,
            r#"{"op":"solve","gallery":"nope"}"#,
            r#"{"op":"solve","gallery":"fig1","graph":"mdg x"}"#,
            r#"{"op":"solve","gallery":"fig1","procs":0}"#,
            r#"{"op":"solve","gallery":"fig1","procs":1.5}"#,
            r#"{"op":"solve","gallery":"fig1","machine":"vax"}"#,
            r#"{"op":"solve","gallery":"fig1","policy":"random"}"#,
            r#"{"op":"solve","gallery":"fig1","wat":1}"#,
            r#"{"op":"solve","graph":"mdg broken\nnode x"}"#,
            r#"{"op":"stats","extra":1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn end_to_end_solve_and_stats() {
        let svc = svc();
        let (resp, shutdown) = handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4}"#);
        assert!(!shutdown);
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert!((doc.get("t_psa").and_then(Json::as_f64).unwrap() - 14.3).abs() < 1e-9);
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("alloc").and_then(Json::as_arr).map(<[Json]>::len), Some(3));

        let (resp2, _) = handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4}"#);
        let doc2 = parse(&resp2).unwrap();
        assert_eq!(doc2.get("cached").and_then(Json::as_bool), Some(true));

        let (stats, _) = handle_line(&svc, r#"{"op":"stats"}"#);
        let sdoc = parse(&stats).unwrap();
        let inner = sdoc.get("stats").expect("stats payload");
        assert_eq!(inner.get("solves").and_then(Json::as_u64), Some(1));
        assert_eq!(inner.get("cache_hits").and_then(Json::as_u64), Some(1));

        let (pong, _) = handle_line(&svc, r#"{"op":"ping"}"#);
        assert!(pong.contains("pong"));

        let (bye, shutdown) = handle_line(&svc, r#"{"op":"shutdown"}"#);
        assert!(shutdown);
        assert!(bye.contains("shutting_down"));
        svc.shutdown();
    }

    #[test]
    fn solve_error_is_protocol_error_not_panic() {
        let svc = svc();
        // pb larger than the machine: rejected by spec validation.
        let (resp, _) = handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4,"pb":64}"#);
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert!(doc.get("error").and_then(Json::as_str).unwrap().contains("processor bound"));
        svc.shutdown();
    }

    #[test]
    fn errors_carry_kind_and_retryability() {
        let svc = svc();
        let (resp, _) = handle_line(&svc, "not json");
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("bad-request"));
        assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(false));

        let (resp, _) = handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4,"pb":64}"#);
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("invalid"));
        assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(false));
        svc.shutdown();
    }

    #[test]
    fn degraded_solves_are_labelled() {
        let svc = Service::start(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            queue_capacity: 8,
            chaos: Some(crate::chaos::FaultPlan {
                seed: 1,
                worker_panic: 1.0,
                ..Default::default()
            }),
            ..ServeConfig::default()
        });
        let (resp, _) = handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4}"#);
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("degraded").and_then(Json::as_str), Some("equal-split"));
        svc.shutdown();
    }

    #[test]
    fn simulate_adds_sim_makespan() {
        let svc = svc();
        let (resp, _) =
            handle_line(&svc, r#"{"op":"solve","gallery":"fig1","procs":4,"simulate":true}"#);
        let doc = parse(&resp).unwrap();
        assert!(doc.get("sim_makespan").and_then(Json::as_f64).unwrap() > 0.0);
        svc.shutdown();
    }
}
