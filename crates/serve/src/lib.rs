//! `paradigm-serve`: a concurrent scheduling service over the PARADIGM
//! compile pipeline.
//!
//! The pipeline solve (convex allocation → PSA schedule) is pure and
//! deterministic: one `(MDG, machine, processor count, policy)` request
//! always produces the same allocation, schedule, and predicted Φ. That
//! makes it an ideal memoization target, and this crate builds the
//! serving layer around that observation:
//!
//! * [`cache`] — a sharded, LRU-bounded, content-addressed result cache
//!   keyed by the canonical structural fingerprint
//!   ([`paradigm_core::solve_fingerprint`]), with **single-flight**
//!   deduplication: concurrent identical requests collapse into one
//!   solve.
//! * [`service`] — a worker thread pool draining a bounded job queue
//!   with backpressure and per-request queueing deadlines;
//!   [`Service::submit`] is the synchronous in-process API.
//! * [`protocol`] — the line-delimited JSON request/response protocol
//!   (ops `solve`, `stats`, `ping`, `shutdown`, plus `admm_block` on
//!   worker nodes), built on the hand-rolled [`json`] reader/writer —
//!   the crate stays std-only.
//! * [`worker`] — the distributed-ADMM worker role: wire codecs for
//!   consensus-ADMM block subproblems and [`TcpBlockBackend`], the
//!   coordinator-side backend that fans x-updates out to
//!   `paradigm serve --worker` nodes.
//! * [`server`] — the `std::net::TcpListener` front end with graceful
//!   (SIGINT-safe on unix) drain.
//! * [`metrics`] — request/hit/miss/dedup counters and a log₂ latency
//!   histogram, served live via the `stats` op and dumped on shutdown.
//! * [`bench`] — a closed-loop load generator measuring cold-solve vs
//!   repeated-workload throughput (the `paradigm bench-serve` command).
//!
//! The resilience layer (this crate's failure model is spelled out in
//! DESIGN.md §9):
//!
//! * [`chaos`] — seeded, deterministic fault injection ([`FaultPlan`]):
//!   worker panics, slow solves, queue stalls, dropped connections,
//!   truncated frames.
//! * [`breaker`] — a sliding-window failure-rate circuit breaker
//!   guarding the primary solve path.
//! * [`client`] — a protocol client with exponential-backoff retry for
//!   retryable failures (shed requests, transport faults).

pub mod audit;
pub mod bench;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod client;
pub use paradigm_mdg::json;
pub mod metrics;
pub mod protocol;
#[cfg(test)]
mod race_proptests;
pub mod race_suites;
pub mod server;
pub mod service;
pub mod worker;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{Outcome, ShardedCache, SHARDS};
pub use chaos::{Chaos, FaultPlan};
pub use client::{Client, ClientError, RetryPolicy};
pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{Metrics, MetricsSnapshot, HIST_BUCKETS};
pub use protocol::{handle_line, parse_request, Request};
pub use server::{Server, ServerConfig};
pub use service::{AdmmFleetSpec, ServeConfig, ServeError, Service, SolveResponse};
pub use worker::{FleetConfig, FleetError, TcpBlockBackend};
