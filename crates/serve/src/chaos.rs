//! Deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] describes *which* faults to inject and at what rates;
//! the runtime [`Chaos`] object turns the plan into reproducible
//! decisions. Every injection site keeps its own monotone draw counter,
//! and each decision hashes `(seed, site, counter)` through splitmix64
//! into a uniform draw in `[0, 1)` — so a given `(plan, request order)`
//! pair always injects exactly the same faults, which is what the chaos
//! integration test needs to assert precise outcomes.
//!
//! Injection sites and what they simulate:
//!
//! * **worker panic** — the pipeline solve aborts mid-flight (a bug, a
//!   degenerate input). Injected inside the primary compute closure, so
//!   it exercises the cache's catch_unwind, the circuit breaker, and
//!   the degraded fallback path.
//! * **slow solve** — a solve that takes far longer than predicted
//!   (contended machine, pathological graph). Stretches queue waits so
//!   admission control has something to shed.
//! * **queue stall** — a worker naps before popping work (GC pause,
//!   scheduler hiccup).
//! * **connection drop** — the TCP handler severs the connection before
//!   writing the response, forcing clients onto their retry path.
//! * **truncated frame** — the handler writes only a prefix of the
//!   response line, exercising client-side parse-failure retries.
//!
//! Worker-level faults for the distributed ADMM tier (`admm_block`
//! frames only), exercising the coordinator's retry/steal/quarantine
//! machinery:
//!
//! * **block crash** — the worker dies mid-block-solve (the connection
//!   thread panics, so the coordinator sees EOF with no response).
//! * **block slow** — a straggler block solve, long enough to trip the
//!   coordinator's per-job deadline when one is set.
//! * **block drop / block truncate** — the `admm_block` response frame
//!   is severed or cut short on the wire.

use paradigm_race::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which faults to inject, at what probability, under which seed.
/// Probabilities are in `[0, 1]`; a default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability a solve panics mid-flight.
    pub worker_panic: f64,
    /// Number of panic-site draws that are skipped before panics can
    /// fire (lets tests warm the cache deterministically first).
    pub panic_after: u64,
    /// Probability a solve is artificially slowed.
    pub slow_solve: f64,
    /// How long a slowed solve sleeps.
    pub slow_ms: u64,
    /// Probability a worker stalls before popping the queue.
    pub queue_stall: f64,
    /// How long a stalled worker sleeps.
    pub stall_ms: u64,
    /// Probability the server drops a connection instead of responding.
    pub conn_drop: f64,
    /// Probability the server truncates the response frame.
    pub truncate: f64,
    /// Probability a worker crashes mid-block-solve (`admm_block` only).
    pub block_crash: f64,
    /// Probability a block solve straggles (`admm_block` only).
    pub block_slow: f64,
    /// How long a straggling block solve sleeps.
    pub block_slow_ms: u64,
    /// Probability an `admm_block` response connection is dropped.
    pub block_drop: f64,
    /// Probability an `admm_block` response frame is truncated.
    pub block_truncate: f64,
}

impl FaultPlan {
    /// Parse a compact plan spec of comma-separated `key=value` items:
    ///
    /// ```text
    /// seed=42,panic=0.5,panic-after=3,slow=0.3:50,stall=0.2:20,drop=0.1,truncate=0.1
    /// ```
    ///
    /// Worker-level faults for the ADMM tier use the same grammar:
    ///
    /// ```text
    /// block-crash=0.3,block-slow=0.2:30,block-drop=0.1,block-truncate=0.1
    /// ```
    ///
    /// `slow`, `stall`, and `block-slow` take an optional `:<ms>`
    /// duration suffix (defaults: 50 ms slow, 20 ms stall, 30 ms
    /// block-slow). Unknown keys and out-of-range probabilities are
    /// errors.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan =
            FaultPlan { slow_ms: 50, stall_ms: 20, block_slow_ms: 30, ..FaultPlan::default() };
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) =
                item.split_once('=').ok_or_else(|| format!("expected key=value, got `{item}`"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(format!("probability for `{key}` must be in [0, 1], got {v}"));
                }
                Ok(p)
            };
            let prob_ms = |v: &str| -> Result<(f64, Option<u64>), String> {
                match v.split_once(':') {
                    Some((p, ms)) => {
                        let ms =
                            ms.parse().map_err(|_| format!("bad duration `{ms}` for `{key}`"))?;
                        Ok((prob(p)?, Some(ms)))
                    }
                    None => Ok((prob(v)?, None)),
                }
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "panic" => plan.worker_panic = prob(value)?,
                "panic-after" => {
                    plan.panic_after =
                        value.parse().map_err(|_| format!("bad panic-after `{value}`"))?;
                }
                "slow" => {
                    let (p, ms) = prob_ms(value)?;
                    plan.slow_solve = p;
                    if let Some(ms) = ms {
                        plan.slow_ms = ms;
                    }
                }
                "stall" => {
                    let (p, ms) = prob_ms(value)?;
                    plan.queue_stall = p;
                    if let Some(ms) = ms {
                        plan.stall_ms = ms;
                    }
                }
                "drop" => plan.conn_drop = prob(value)?,
                "truncate" => plan.truncate = prob(value)?,
                "block-crash" => plan.block_crash = prob(value)?,
                "block-slow" => {
                    let (p, ms) = prob_ms(value)?;
                    plan.block_slow = p;
                    if let Some(ms) = ms {
                        plan.block_slow_ms = ms;
                    }
                }
                "block-drop" => plan.block_drop = prob(value)?,
                "block-truncate" => plan.block_truncate = prob(value)?,
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// True if every fault probability is zero (nothing to inject).
    pub fn is_quiet(&self) -> bool {
        self.worker_panic == 0.0
            && self.slow_solve == 0.0
            && self.queue_stall == 0.0
            && self.conn_drop == 0.0
            && self.truncate == 0.0
            && self.block_crash == 0.0
            && self.block_slow == 0.0
            && self.block_drop == 0.0
            && self.block_truncate == 0.0
    }
}

/// Per-site draw counters; one [`Chaos`] per service instance.
#[derive(Debug, Default)]
pub struct Chaos {
    plan: FaultPlan,
    panic_draws: AtomicU64,
    slow_draws: AtomicU64,
    stall_draws: AtomicU64,
    drop_draws: AtomicU64,
    truncate_draws: AtomicU64,
    block_crash_draws: AtomicU64,
    block_slow_draws: AtomicU64,
    block_drop_draws: AtomicU64,
    block_truncate_draws: AtomicU64,
    /// Faults actually injected (all sites combined).
    injected: AtomicU64,
}

/// splitmix64: a tiny, high-quality bijective mixer — plenty for
/// turning (seed, site, counter) into an independent-looking stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Chaos {
    /// Build the runtime decision stream for `plan`.
    pub fn new(plan: FaultPlan) -> Chaos {
        Chaos { plan, ..Chaos::default() }
    }

    /// The plan this stream was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far (all sites).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One deterministic Bernoulli draw at `site` with probability `p`,
    /// numbered by the site's counter.
    fn draw(&self, site: u64, counter: &AtomicU64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let n = counter.fetch_add(1, Ordering::Relaxed);
        self.draw_at(site, n, p)
    }

    /// The deterministic decision for draw number `n` at `site`.
    fn draw_at(&self, site: u64, n: u64, p: f64) -> bool {
        let h = splitmix64(self.plan.seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f) ^ n);
        // Map the top 53 bits to [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let fire = u < p;
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Panic the calling worker if the plan says so. The first
    /// `panic_after` draws at this site never fire. One atomic
    /// increment both numbers the draw and decides the skip, so
    /// concurrent workers skip exactly `panic_after` draws.
    pub fn maybe_panic(&self) {
        if self.plan.worker_panic <= 0.0 {
            return;
        }
        let n = self.panic_draws.fetch_add(1, Ordering::Relaxed);
        if n < self.plan.panic_after {
            return;
        }
        if self.draw_at(1, n, self.plan.worker_panic) {
            panic!("chaos: injected worker panic");
        }
    }

    /// Sleep inside the solve if the plan says so.
    pub fn maybe_slow(&self) {
        if self.draw(2, &self.slow_draws, self.plan.slow_solve) {
            paradigm_race::thread::sleep(Duration::from_millis(self.plan.slow_ms));
        }
    }

    /// Stall the worker before it pops the queue if the plan says so.
    pub fn maybe_stall(&self) {
        if self.draw(3, &self.stall_draws, self.plan.queue_stall) {
            paradigm_race::thread::sleep(Duration::from_millis(self.plan.stall_ms));
        }
    }

    /// Should the server sever this connection instead of responding?
    pub fn drop_connection(&self) -> bool {
        self.draw(4, &self.drop_draws, self.plan.conn_drop)
    }

    /// Should the server write only a prefix of the response frame?
    pub fn truncate_frame(&self) -> bool {
        self.draw(5, &self.truncate_draws, self.plan.truncate)
    }

    /// Crash the worker mid-block-solve if the plan says so. The panic
    /// kills the connection handler thread, so the coordinator sees EOF
    /// with no response — a worker dying with the job on its bench.
    pub fn maybe_block_crash(&self) {
        if self.draw(6, &self.block_crash_draws, self.plan.block_crash) {
            panic!("chaos: injected block-solve crash");
        }
    }

    /// Straggle the block solve if the plan says so.
    pub fn maybe_block_slow(&self) {
        if self.draw(7, &self.block_slow_draws, self.plan.block_slow) {
            paradigm_race::thread::sleep(Duration::from_millis(self.plan.block_slow_ms));
        }
    }

    /// Should this `admm_block` response connection be severed?
    pub fn drop_block_frame(&self) -> bool {
        self.draw(8, &self.block_drop_draws, self.plan.block_drop)
    }

    /// Should this `admm_block` response frame be truncated?
    pub fn truncate_block_frame(&self) -> bool {
        self.draw(9, &self.block_truncate_draws, self.plan.block_truncate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42,panic=0.5,panic-after=3,slow=0.3:75,stall=0.2:20,drop=0.1,truncate=0.05",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.worker_panic, 0.5);
        assert_eq!(p.panic_after, 3);
        assert_eq!((p.slow_solve, p.slow_ms), (0.3, 75));
        assert_eq!((p.queue_stall, p.stall_ms), (0.2, 20));
        assert_eq!(p.conn_drop, 0.1);
        assert_eq!(p.truncate, 0.05);
        assert!(!p.is_quiet());
    }

    #[test]
    fn parse_defaults_and_errors() {
        let p = FaultPlan::parse("slow=0.5").unwrap();
        assert_eq!(p.slow_ms, 50, "default slow duration");
        assert!(FaultPlan::parse("").unwrap().is_quiet());
        assert!(FaultPlan::parse("panic=1.5").is_err(), "probability out of range");
        assert!(FaultPlan::parse("panic=nan").is_err());
        assert!(FaultPlan::parse("frobnicate=0.5").is_err(), "unknown key");
        assert!(FaultPlan::parse("panic").is_err(), "missing value");
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan { seed: 7, conn_drop: 0.5, ..FaultPlan::default() };
        let a = Chaos::new(plan.clone());
        let b = Chaos::new(plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.drop_connection()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.drop_connection()).collect();
        assert_eq!(seq_a, seq_b);
        let fired = seq_a.iter().filter(|&&f| f).count();
        assert!(fired > 10 && fired < 54, "p=0.5 over 64 draws fired {fired}");
    }

    #[test]
    fn sites_are_independent_streams() {
        let plan = FaultPlan { seed: 7, conn_drop: 0.5, truncate: 0.5, ..FaultPlan::default() };
        let c = Chaos::new(plan);
        let drops: Vec<bool> = (0..64).map(|_| c.drop_connection()).collect();
        let truncs: Vec<bool> = (0..64).map(|_| c.truncate_frame()).collect();
        assert_ne!(drops, truncs, "sites must not mirror each other");
    }

    #[test]
    fn panic_after_skips_early_draws() {
        let plan = FaultPlan { seed: 1, worker_panic: 1.0, panic_after: 3, ..FaultPlan::default() };
        let c = Chaos::new(plan);
        for _ in 0..3 {
            c.maybe_panic(); // skipped
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.maybe_panic()));
        assert!(r.is_err(), "fourth draw must panic at p=1");
    }

    #[test]
    fn panic_after_skips_exactly_n_under_concurrency() {
        use std::sync::Arc;

        let plan = FaultPlan { seed: 1, worker_panic: 1.0, panic_after: 8, ..FaultPlan::default() };
        let c = Arc::new(Chaos::new(plan));
        let fired = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let fired = Arc::clone(&fired);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            c.maybe_panic();
                        }));
                        if r.is_err() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 16 draws at p=1: exactly the first 8 are skipped, the rest
        // fire — regardless of how the threads interleave.
        assert_eq!(fired.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_probability_never_fires() {
        let c = Chaos::new(FaultPlan { seed: 9, ..FaultPlan::default() });
        for _ in 0..100 {
            c.maybe_panic();
            c.maybe_slow();
            c.maybe_stall();
            c.maybe_block_crash();
            c.maybe_block_slow();
            assert!(!c.drop_connection());
            assert!(!c.truncate_frame());
            assert!(!c.drop_block_frame());
            assert!(!c.truncate_block_frame());
        }
        assert_eq!(c.injected(), 0);
    }

    #[test]
    fn parse_block_fault_keys() {
        let p = FaultPlan::parse(
            "seed=5,block-crash=0.3,block-slow=0.2:35,block-drop=0.1,block-truncate=0.05",
        )
        .unwrap();
        assert_eq!(p.seed, 5);
        assert_eq!(p.block_crash, 0.3);
        assert_eq!((p.block_slow, p.block_slow_ms), (0.2, 35));
        assert_eq!(p.block_drop, 0.1);
        assert_eq!(p.block_truncate, 0.05);
        assert!(!p.is_quiet());
        assert_eq!(FaultPlan::parse("block-slow=0.5").unwrap().block_slow_ms, 30);
        assert!(FaultPlan::parse("block-crash=2").is_err());
    }

    #[test]
    fn block_crash_panics_deterministically() {
        let c = Chaos::new(FaultPlan { seed: 3, block_crash: 1.0, ..FaultPlan::default() });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.maybe_block_crash()));
        assert!(r.is_err(), "block crash must fire at p=1");
        assert_eq!(c.injected(), 1);
    }
}
