//! Closed-loop load generator for the in-process service.
//!
//! Drives [`Service::submit`] from `clients` threads, each issuing its
//! requests back-to-back (closed loop: a client never has more than one
//! request outstanding). Two phases over the same working set of
//! distinct `(graph, spec)` keys:
//!
//! 1. **cold** — one sequential sweep over the working set with a cache
//!    sized to zero-hit (every request is a fresh solve);
//! 2. **hot** — `clients × rounds` sweeps against one shared service,
//!    where all repeats are cache hits or single-flight waits.
//!
//! The report carries both throughputs, the hot-phase latency
//! quantiles, and the hot service's final counters — which is how the
//! headline claim (repeated-workload throughput ≥10× cold solving, with
//! `solves == distinct keys`) is checked rather than asserted.

use crate::metrics::MetricsSnapshot;
use crate::service::{ServeConfig, Service, SolveResponse};
use paradigm_core::{gallery_graph, SolveSpec};
use paradigm_cost::Machine;
use paradigm_mdg::Mdg;
use paradigm_race::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Closed-loop client threads in the hot phase.
    pub clients: usize,
    /// Sweeps over the working set per client in the hot phase.
    pub rounds: usize,
    /// Worker threads in the service under test.
    pub workers: usize,
    /// Queue-wait bound for the hot-phase service (`None` = blocking
    /// backpressure, no shedding). With a bound set, shed requests are
    /// retried with backoff and counted in the report.
    pub max_queue_wait: Option<Duration>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { clients: 4, rounds: 25, workers: 4, max_queue_wait: None }
    }
}

/// Submit with retry-on-shed: admission rejections back off
/// (exponential, deterministically jittered, capped) and resend; any
/// other failure is a bug in the all-valid workload and panics.
fn submit_with_retry(
    svc: &Service,
    g: &Arc<Mdg>,
    spec: &SolveSpec,
    retries: &AtomicU64,
    mut jitter: u64,
) -> SolveResponse {
    const MAX_ATTEMPTS: u32 = 1000;
    for attempt in 0..MAX_ATTEMPTS {
        match svc.submit(Arc::clone(g), spec.clone()) {
            Ok(r) => return r,
            Err(e) if e.retryable() => {
                retries.fetch_add(1, Ordering::Relaxed);
                let cap_us = 20_000u64;
                let exp = (500u64 << attempt.min(12)).min(cap_us);
                jitter =
                    jitter.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                std::thread::sleep(Duration::from_micros(exp / 2 + jitter % (exp / 2).max(1)));
            }
            Err(e) => panic!("hot solve failed with non-retryable {}: {e}", e.kind()),
        }
    }
    panic!("request still shed after {MAX_ATTEMPTS} attempts");
}

/// What the load generator measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Distinct `(graph, spec)` keys in the working set.
    pub distinct_keys: usize,
    /// Requests completed in the cold phase (== distinct keys).
    pub cold_requests: usize,
    /// Cold-phase wall time in seconds.
    pub cold_secs: f64,
    /// Requests completed in the hot phase.
    pub hot_requests: usize,
    /// Hot-phase wall time in seconds.
    pub hot_secs: f64,
    /// Shed-and-resent submissions in the hot phase (0 unless a queue
    /// wait bound was configured).
    pub retries: u64,
    /// Final counters of the hot-phase service.
    pub stats: MetricsSnapshot,
}

impl BenchReport {
    /// Cold-phase throughput (solves per second).
    pub fn cold_throughput(&self) -> f64 {
        self.cold_requests as f64 / self.cold_secs
    }

    /// Hot-phase throughput (requests per second).
    pub fn hot_throughput(&self) -> f64 {
        self.hot_requests as f64 / self.hot_secs
    }

    /// Hot over cold throughput.
    pub fn speedup(&self) -> f64 {
        self.hot_throughput() / self.cold_throughput()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-serve: {} distinct keys\n  cold: {} solves in {:.3} s = {:.1} req/s\n",
            self.distinct_keys,
            self.cold_requests,
            self.cold_secs,
            self.cold_throughput()
        ));
        out.push_str(&format!(
            "  hot:  {} requests in {:.3} s = {:.1} req/s  ({:.1}x cold)\n",
            self.hot_requests,
            self.hot_secs,
            self.hot_throughput(),
            self.speedup()
        ));
        out.push_str(&format!(
            "  hot latency: p50 <= {} us, p99 <= {} us\n",
            self.stats.p50_us().map_or_else(|| "n/a".into(), |v| v.to_string()),
            self.stats.p99_us().map_or_else(|| "n/a".into(), |v| v.to_string()),
        ));
        out.push_str(&format!(
            "  hot counters: solves {}  hits {}  dedup-waits {}  errors {}  shed {}  retries {}\n",
            self.stats.solves,
            self.stats.cache_hits,
            self.stats.dedup_waits,
            self.stats.errors,
            self.stats.shed,
            self.retries
        ));
        out
    }
}

/// The benchmark's working set: six gallery graphs at two processor
/// counts each — 12 distinct cache keys covering small and large MDGs.
pub fn workload() -> Vec<(Arc<Mdg>, SolveSpec)> {
    let graphs = ["fig1", "cmm", "strassen", "fft2d", "block-lu", "stencil"];
    let mut set = Vec::new();
    for name in graphs {
        let g = Arc::new(gallery_graph(name).expect("gallery graph"));
        for procs in [16u32, 64] {
            set.push((Arc::clone(&g), SolveSpec::new(Machine::cm5(procs))));
        }
    }
    set
}

/// Run the two-phase benchmark. Panics if any request fails — the
/// workload is all-valid by construction, so failures are bugs.
pub fn run_bench(cfg: &BenchConfig) -> BenchReport {
    let set = workload();
    let distinct_keys = set.len();

    // Cold phase: cache too small to ever hit across the sweep would
    // still single-flight within it, so just use a fresh service and a
    // single sequential sweep — every request is a cold solve.
    let cold_svc = Service::start(ServeConfig {
        workers: cfg.workers,
        cache_capacity: 1, // effectively disable reuse across keys
        queue_capacity: distinct_keys.max(1),
        ..ServeConfig::default()
    });
    let cold_start = Instant::now();
    for (g, spec) in &set {
        cold_svc.submit(Arc::clone(g), spec.clone()).expect("cold solve");
    }
    let cold_secs = cold_start.elapsed().as_secs_f64();
    cold_svc.shutdown();

    // Hot phase: shared service, ample cache, concurrent closed-loop
    // clients sweeping the same keys.
    let hot_svc = Arc::new(Service::start(ServeConfig {
        workers: cfg.workers,
        cache_capacity: distinct_keys * 8,
        queue_capacity: (cfg.clients * 2).max(8),
        max_queue_wait: cfg.max_queue_wait,
        ..ServeConfig::default()
    }));
    let retries = Arc::new(AtomicU64::new(0));
    let hot_start = Instant::now();
    let rounds = cfg.rounds;
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let svc = Arc::clone(&hot_svc);
            let set = set.clone();
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    // Stagger sweep order per client/round so requests
                    // for one key genuinely collide across clients.
                    for i in 0..set.len() {
                        let (g, spec) = &set[(i + c + r) % set.len()];
                        submit_with_retry(&svc, g, spec, &retries, (c * 31 + r) as u64);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let hot_secs = hot_start.elapsed().as_secs_f64();
    let stats =
        Arc::try_unwrap(hot_svc).unwrap_or_else(|_| unreachable!("clients joined")).shutdown();

    BenchReport {
        distinct_keys,
        cold_requests: distinct_keys,
        cold_secs: cold_secs.max(1e-9),
        hot_requests: cfg.clients * cfg.rounds * distinct_keys,
        hot_secs: hot_secs.max(1e-9),
        retries: retries.load(Ordering::Relaxed),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_completes_and_caches() {
        let report =
            run_bench(&BenchConfig { clients: 2, rounds: 2, workers: 2, max_queue_wait: None });
        assert_eq!(report.distinct_keys, 12);
        assert_eq!(report.hot_requests, 2 * 2 * 12);
        assert_eq!(report.stats.errors, 0);
        assert_eq!(report.retries, 0, "blocking backpressure never sheds");
        // Every request was answered, and at most one solve ran per
        // distinct key in the hot phase.
        assert_eq!(report.stats.completed as usize, report.hot_requests);
        assert!(report.stats.solves as usize <= report.distinct_keys);
        assert!(
            report.stats.cache_hits + report.stats.dedup_waits
                >= (report.hot_requests as u64) - (report.distinct_keys as u64)
        );
        let text = report.render();
        assert!(text.contains("distinct keys"), "{text}");
    }
}
