//! The in-process scheduling service: a worker thread pool draining a
//! bounded job queue, fronted by the single-flight result cache.
//!
//! [`Service::submit`] is the synchronous request path used by the TCP
//! connection handlers, the load generator, and tests:
//!
//! 1. the caller's graph + spec are fingerprinted
//!    ([`paradigm_core::solve_fingerprint`]) and enqueued — blocking
//!    while the queue is full (backpressure), failing fast once the
//!    service is draining;
//! 2. a worker pops the job; if its deadline already passed in the
//!    queue it is rejected without solving, otherwise the worker goes
//!    through [`ShardedCache::get_or_compute`] so identical concurrent
//!    requests collapse into one pipeline solve;
//! 3. the response is published on the job's slot, waking the
//!    submitter.
//!
//! [`Service::shutdown`] is a graceful drain: submissions are refused,
//! workers finish every job already queued (no lost responses), and
//! the final metrics snapshot is returned.

use crate::cache::{Outcome, ShardedCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use paradigm_core::{solve_fingerprint, solve_pipeline, SolveOutput, SolveSpec};
use paradigm_mdg::Mdg;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum ready entries in the result cache.
    pub cache_capacity: usize,
    /// Maximum queued (not yet running) jobs before submitters block.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        ServeConfig { workers, cache_capacity: 1024, queue_capacity: 256, default_deadline: None }
    }
}

/// Why a request was not answered with a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is draining; no new work is accepted.
    ShuttingDown,
    /// The job spent longer queued than its deadline allowed.
    DeadlineExceeded {
        /// How long the job waited before a worker reached it.
        queued_for: Duration,
    },
    /// The request was rejected before solving (bad spec, bad graph).
    Invalid(String),
    /// The pipeline solve itself failed (panic caught by the cache).
    SolveFailed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::DeadlineExceeded { queued_for } => {
                write!(f, "deadline exceeded after {} ms in queue", queued_for.as_millis())
            }
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::SolveFailed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A solved response: the shared pipeline output plus per-request
/// service metadata.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// The cached (or freshly computed) pipeline output.
    pub output: Arc<SolveOutput>,
    /// Graph name from *this* request (cache entries keep the name of
    /// whichever structurally-equal graph arrived first).
    pub graph: String,
    /// True if the response came from a ready cache entry.
    pub cached: bool,
    /// True if this request waited on another request's in-flight solve.
    pub deduplicated: bool,
    /// End-to-end service latency (enqueue → response ready).
    pub service: Duration,
}

struct Job {
    graph: Arc<Mdg>,
    spec: SolveSpec,
    key: u128,
    enqueued: Instant,
    deadline: Option<Duration>,
    slot: Arc<ResponseSlot>,
}

/// One-shot response channel (std has no oneshot; a mutex+condvar pair
/// is enough at this request granularity).
struct ResponseSlot {
    result: Mutex<Option<Result<SolveResponse, ServeError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn fill(&self, r: Result<SolveResponse, ServeError>) {
        let mut slot = self.result.lock().expect("slot poisoned");
        *slot = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<SolveResponse, ServeError> {
        let mut slot = self.result.lock().expect("slot poisoned");
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.cv.wait(slot).expect("slot poisoned");
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// False once shutdown begins; guarded by the queue mutex so a
    /// submitter can't slip a job in after the drain decision.
    accepting: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    /// Signals workers: work available or shutdown.
    not_empty: Condvar,
    /// Signals submitters: queue has room again.
    not_full: Condvar,
    cache: ShardedCache<SolveOutput>,
    metrics: Metrics,
    cfg: ServeConfig,
}

/// The scheduling service. Cheap to share (`Arc` internally); dropped
/// or explicitly [`Service::shutdown`] — both drain cleanly.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the worker pool.
    pub fn start(cfg: ServeConfig) -> Service {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.queue_capacity >= 1, "need a non-empty queue");
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), accepting: true }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cache: ShardedCache::new(cfg.cache_capacity),
            metrics: Metrics::default(),
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Solve one request, blocking until the response is ready. See the
    /// module docs for the path taken.
    pub fn submit(&self, graph: Arc<Mdg>, spec: SolveSpec) -> Result<SolveResponse, ServeError> {
        self.submit_with_deadline(graph, spec, self.inner.cfg.default_deadline)
    }

    /// [`Service::submit`] with an explicit queueing deadline (`None`
    /// never expires).
    pub fn submit_with_deadline(
        &self,
        graph: Arc<Mdg>,
        spec: SolveSpec,
        deadline: Option<Duration>,
    ) -> Result<SolveResponse, ServeError> {
        if let Err(msg) = spec.validate() {
            self.inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(msg));
        }
        let key = solve_fingerprint(&graph, &spec);
        let slot = ResponseSlot::new();
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            loop {
                if !q.accepting {
                    return Err(ServeError::ShuttingDown);
                }
                if q.jobs.len() < self.inner.cfg.queue_capacity {
                    break;
                }
                q = self.inner.not_full.wait(q).expect("queue poisoned");
            }
            q.jobs.push_back(Job {
                graph,
                spec,
                key,
                enqueued: Instant::now(),
                deadline,
                slot: Arc::clone(&slot),
            });
            self.inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.queue_depth.store(q.jobs.len() as u64, Ordering::Relaxed);
        }
        self.inner.not_empty.notify_one();
        slot.wait()
    }

    /// Current metrics.
    pub fn stats(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Ready entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Begin draining without blocking: new submissions are refused
    /// with [`ServeError::ShuttingDown`], but already-queued jobs still
    /// complete. Call [`Service::shutdown`] (or drop) to join workers.
    pub fn drain(&self) {
        self.begin_drain();
    }

    /// Graceful drain: refuse new submissions, let workers finish every
    /// queued job, join them, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.metrics.snapshot()
    }

    fn begin_drain(&self) {
        let mut q = self.inner.queue.lock().expect("queue poisoned");
        q.accepting = false;
        drop(q);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    inner.metrics.queue_depth.store(q.jobs.len() as u64, Ordering::Relaxed);
                    break job;
                }
                if !q.accepting {
                    return; // drained and draining: exit
                }
                q = inner.not_empty.wait(q).expect("queue poisoned");
            }
        };
        inner.not_full.notify_one();

        let queued_for = job.enqueued.elapsed();
        if let Some(deadline) = job.deadline {
            if queued_for > deadline {
                inner.metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
                inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                job.slot.fill(Err(ServeError::DeadlineExceeded { queued_for }));
                continue;
            }
        }

        let (result, outcome) = inner.cache.get_or_compute(job.key, || {
            inner.metrics.solves.fetch_add(1, Ordering::Relaxed);
            solve_pipeline(&job.graph, &job.spec)
        });
        match outcome {
            Outcome::Hit => inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed),
            Outcome::Miss => inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed),
            Outcome::DedupWait => inner.metrics.dedup_waits.fetch_add(1, Ordering::Relaxed),
        };
        // Fold cache-level evictions into the service counter.
        inner.metrics.evictions.store(inner.cache.evictions(), Ordering::Relaxed);

        let service = job.enqueued.elapsed();
        let response = match result {
            Ok(output) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
                inner
                    .metrics
                    .latency
                    .record_us(service.as_micros().min(u128::from(u64::MAX)) as u64);
                Ok(SolveResponse {
                    output,
                    graph: job.graph.name().to_string(),
                    cached: outcome == Outcome::Hit,
                    deduplicated: outcome == Outcome::DedupWait,
                    service,
                })
            }
            Err(msg) => {
                inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::SolveFailed(msg))
            }
        };
        job.slot.fill(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_core::gallery_graph;
    use paradigm_cost::Machine;

    fn fig1() -> Arc<Mdg> {
        Arc::new(gallery_graph("fig1").expect("gallery"))
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig { workers: 2, cache_capacity: 64, queue_capacity: 8, default_deadline: None }
    }

    #[test]
    fn solve_then_hit() {
        let svc = Service::start(small_cfg());
        let spec = SolveSpec::new(Machine::cm5(4));
        let first = svc.submit(fig1(), spec.clone()).unwrap();
        assert!(!first.cached);
        assert!(first.output.phi > 0.0);
        assert!((first.output.t_psa - 14.3).abs() < 1e-9);
        let second = svc.submit(fig1(), spec).unwrap();
        assert!(second.cached);
        assert_eq!(second.output.t_psa, first.output.t_psa);
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn structurally_equal_graphs_share_one_entry() {
        let svc = Service::start(small_cfg());
        let spec = SolveSpec::new(Machine::cm5(4));
        // Round-trip through the text format: different object, same
        // structure and name-set, so the fingerprint matches.
        let g1 = fig1();
        let g2 = Arc::new(paradigm_mdg::from_text(&paradigm_mdg::to_text(&g1)).unwrap());
        svc.submit(g1, spec.clone()).unwrap();
        let r = svc.submit(g2, spec).unwrap();
        assert!(r.cached, "structural equality must hit");
        let stats = svc.shutdown();
        assert_eq!(stats.solves, 1);
    }

    #[test]
    fn invalid_spec_rejected_without_solving() {
        let svc = Service::start(small_cfg());
        let mut spec = SolveSpec::new(Machine::cm5(4));
        spec.pb = Some(64); // exceeds machine size
        let err = svc.submit(fig1(), spec).unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)), "{err}");
        let stats = svc.shutdown();
        assert_eq!(stats.solves, 0);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let svc = Service::start(ServeConfig { workers: 1, ..small_cfg() });
        let err = svc
            .submit_with_deadline(fig1(), SolveSpec::new(Machine::cm5(4)), Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
        let stats = svc.shutdown();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let svc = Service::start(small_cfg());
        svc.begin_drain();
        let err = svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn drop_drains_cleanly() {
        let svc = Service::start(small_cfg());
        svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap();
        drop(svc); // must not hang or panic
    }
}
