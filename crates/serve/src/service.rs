//! The in-process scheduling service: a worker thread pool draining a
//! bounded job queue, fronted by the single-flight result cache.
//!
//! [`Service::submit`] is the synchronous request path used by the TCP
//! connection handlers, the load generator, and tests:
//!
//! 1. the caller's graph + spec are fingerprinted
//!    ([`paradigm_core::solve_fingerprint`]) and enqueued — blocking
//!    while the queue is full (backpressure), failing fast once the
//!    service is draining;
//! 2. a worker pops the job; if its deadline already passed in the
//!    queue it is rejected without solving, otherwise the worker goes
//!    through [`ShardedCache::get_or_compute`] so identical concurrent
//!    requests collapse into one pipeline solve;
//! 3. the response is published on the job's slot, waking the
//!    submitter.
//!
//! [`Service::shutdown`] is a graceful drain: submissions are refused,
//! workers finish every job already queued (no lost responses), and
//! the final metrics snapshot is returned.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::cache::{Outcome, ShardedCache};
use crate::chaos::{Chaos, FaultPlan};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::worker::{FleetConfig, TcpBlockBackend};
use paradigm_admm::{AdmmConfig, FailoverBackend, InProcessBackend};
use paradigm_core::{
    routes_through_admm, solve_fingerprint, solve_pipeline, solve_pipeline_degraded,
    try_solve_pipeline_with_backend, SolveOutput, SolveSpec,
};
use paradigm_mdg::Mdg;
use paradigm_race::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use paradigm_race::sync::{Condvar, Mutex};
use paradigm_race::thread::JoinHandle;
use paradigm_race::time::Instant;
use paradigm_race::{plock, pwait, pwait_timeout};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Key salt separating degraded (equal-split) results from primary
/// results in the shared cache: a degraded answer must never shadow the
/// real one once the solver recovers.
const DEGRADED_SALT: u128 = 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c834;

/// Coordinator-side configuration for routing consensus-ADMM solves
/// through a TCP worker fleet instead of in-process threads. The fleet
/// is wrapped in a [`FailoverBackend`], so a total fleet collapse
/// degrades to the in-process backend rather than failing the request.
#[derive(Debug, Clone)]
pub struct AdmmFleetSpec {
    /// Worker addresses (each a `serve --worker` process).
    pub workers: Vec<SocketAddr>,
    /// Bounded-staleness budget per block (0 = strict synchronous
    /// barrier, bitwise-identical to the in-process backend).
    pub max_stale: usize,
    /// Per-block-job deadline; a worker that blows it is treated as
    /// faulted and the block is retried elsewhere.
    pub block_deadline: Duration,
}

impl AdmmFleetSpec {
    /// Fleet spec with the default deadline/staleness knobs.
    pub fn new(workers: Vec<SocketAddr>) -> AdmmFleetSpec {
        AdmmFleetSpec {
            workers,
            max_stale: 0,
            block_deadline: FleetConfig::default().block_deadline,
        }
    }
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Maximum ready entries in the result cache.
    pub cache_capacity: usize,
    /// Maximum queued (not yet running) jobs before submitters block.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// How long a submitter may block on a full queue before the
    /// request is shed (`None` = block indefinitely, the pre-admission
    /// behaviour).
    pub max_queue_wait: Option<Duration>,
    /// Fault-injection plan (tests and chaos drills; `None` in
    /// production).
    pub chaos: Option<FaultPlan>,
    /// Circuit-breaker tuning for the primary solve path.
    pub breaker: BreakerConfig,
    /// Audit every `N`th completed response with an independent
    /// schedule re-verification (`0` disables sampling). Failures bump
    /// the `audit_fail` metric, print the full report to stderr, and
    /// are kept for [`Service::first_audit_failure`].
    pub audit_rate: u64,
    /// Accept `admm_block` sub-problem frames (the distributed ADMM
    /// worker role). Off by default: a scheduling front-end has no
    /// business solving raw block sub-problems for strangers.
    pub worker: bool,
    /// Route ADMM-tier solves through a TCP worker fleet (`None` keeps
    /// the in-process backend).
    pub fleet: Option<AdmmFleetSpec>,
    /// Append-only file persisting the sampled auditor's first-failure
    /// report across restarts: loaded on boot into
    /// [`Service::first_audit_failure`], appended to on the first
    /// failure each run.
    pub audit_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
        ServeConfig {
            workers,
            cache_capacity: 1024,
            queue_capacity: 256,
            default_deadline: None,
            max_queue_wait: None,
            chaos: None,
            breaker: BreakerConfig::default(),
            audit_rate: 0,
            worker: false,
            fleet: None,
            audit_log: None,
        }
    }
}

/// Why a request was not answered with a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is draining; no new work is accepted.
    ShuttingDown,
    /// The job spent longer queued than its deadline allowed.
    DeadlineExceeded {
        /// How long the job waited before a worker reached it.
        queued_for: Duration,
    },
    /// Admission control rejected the job before queueing: the queue
    /// was too deep for its deadline, or stayed full past the
    /// configured wait bound. Retryable — the client should back off
    /// and resubmit.
    Shed {
        /// Jobs queued ahead at rejection time.
        queue_depth: usize,
        /// Estimated wait the job would have faced.
        estimated_wait: Duration,
    },
    /// The request was rejected before solving (bad spec, bad graph).
    Invalid(String),
    /// The pipeline solve itself failed (panic caught by the cache).
    SolveFailed(String),
}

impl ServeError {
    /// Stable machine-readable discriminator (the protocol's `kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::ShuttingDown => "shutting-down",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::Shed { .. } => "shed",
            ServeError::Invalid(_) => "invalid",
            ServeError::SolveFailed(_) => "solve-failed",
        }
    }

    /// True if a client resubmitting the identical request later can
    /// reasonably expect success (transient overload, not a bad input).
    pub fn retryable(&self) -> bool {
        matches!(self, ServeError::Shed { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::DeadlineExceeded { queued_for } => {
                write!(f, "deadline exceeded after {} ms in queue", queued_for.as_millis())
            }
            ServeError::Shed { queue_depth, estimated_wait } => write!(
                f,
                "request shed: {queue_depth} jobs queued, estimated wait {} ms",
                estimated_wait.as_millis()
            ),
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::SolveFailed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A solved response: the shared pipeline output plus per-request
/// service metadata.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// The cached (or freshly computed) pipeline output.
    pub output: Arc<SolveOutput>,
    /// Graph name from *this* request (cache entries keep the name of
    /// whichever structurally-equal graph arrived first).
    pub graph: String,
    /// True if the response came from a ready cache entry.
    pub cached: bool,
    /// True if this request waited on another request's in-flight solve.
    pub deduplicated: bool,
    /// End-to-end service latency (enqueue → response ready).
    pub service: Duration,
}

struct Job {
    graph: Arc<Mdg>,
    spec: SolveSpec,
    key: u128,
    enqueued: Instant,
    deadline: Option<Duration>,
    slot: Arc<ResponseSlot>,
}

/// One-shot response channel (std has no oneshot; a mutex+condvar pair
/// is enough at this request granularity).
struct ResponseSlot {
    result: Mutex<Option<Result<SolveResponse, ServeError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn fill(&self, r: Result<SolveResponse, ServeError>) {
        let mut slot = plock(&self.result);
        *slot = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<SolveResponse, ServeError> {
        let mut slot = plock(&self.result);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = pwait(&self.cv, slot);
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// False once shutdown begins; guarded by the queue mutex so a
    /// submitter can't slip a job in after the drain decision.
    accepting: bool,
}

struct Inner {
    queue: Mutex<QueueState>,
    /// Signals workers: work available or shutdown.
    not_empty: Condvar,
    /// Signals submitters: queue has room again.
    not_full: Condvar,
    cache: ShardedCache<SolveOutput>,
    metrics: Metrics,
    breaker: CircuitBreaker,
    chaos: Option<Arc<Chaos>>,
    cfg: ServeConfig,
    /// Completed-response counter driving audit sampling.
    audit_seq: AtomicU64,
    /// First audit failure, verbatim, for post-mortems. Seeded from
    /// [`ServeConfig::audit_log`] on boot, so it survives restarts.
    audit_failure: Mutex<Option<String>>,
    /// Whether this process has already appended its first failure to
    /// the audit log (each run contributes at most one record).
    audit_logged: AtomicBool,
}

/// The scheduling service. Cheap to share (`Arc` internally); dropped
/// or explicitly [`Service::shutdown`] — both drain cleanly.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the worker pool.
    pub fn start(cfg: ServeConfig) -> Service {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.queue_capacity >= 1, "need a non-empty queue");
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), accepting: true }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cache: ShardedCache::new(cfg.cache_capacity),
            metrics: Metrics::default(),
            breaker: CircuitBreaker::new(cfg.breaker.clone()),
            chaos: cfg.chaos.clone().filter(|p| !p.is_quiet()).map(|p| Arc::new(Chaos::new(p))),
            cfg: cfg.clone(),
            audit_seq: AtomicU64::new(0),
            audit_failure: Mutex::new(cfg.audit_log.as_deref().and_then(load_first_audit_failure)),
            audit_logged: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                paradigm_race::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Solve one request, blocking until the response is ready. See the
    /// module docs for the path taken.
    pub fn submit(&self, graph: Arc<Mdg>, spec: SolveSpec) -> Result<SolveResponse, ServeError> {
        self.submit_with_deadline(graph, spec, self.inner.cfg.default_deadline)
    }

    /// [`Service::submit`] with an explicit queueing deadline (`None`
    /// never expires).
    pub fn submit_with_deadline(
        &self,
        graph: Arc<Mdg>,
        spec: SolveSpec,
        deadline: Option<Duration>,
    ) -> Result<SolveResponse, ServeError> {
        if let Err(msg) = spec.validate() {
            self.inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Invalid(msg));
        }
        let key = solve_fingerprint(&graph, &spec);
        let slot = ResponseSlot::new();
        {
            let mut q = plock(&self.inner.queue);
            if !q.accepting {
                return Err(ServeError::ShuttingDown);
            }
            // Admission control: rather than letting a doomed job block
            // a queue slot and expire anyway, reject it now if the
            // estimated wait (queue depth x average solve time over the
            // worker pool) already exceeds its deadline.
            if let Some(deadline) = deadline {
                let est = estimate_wait(&self.inner, q.jobs.len());
                if est > deadline {
                    self.inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Shed {
                        queue_depth: q.jobs.len(),
                        estimated_wait: est,
                    });
                }
            }
            // Full queue: block for at most `max_queue_wait` (bounded
            // further by the job's own deadline), then shed.
            let wait_started = Instant::now();
            loop {
                if !q.accepting {
                    return Err(ServeError::ShuttingDown);
                }
                if q.jobs.len() < self.inner.cfg.queue_capacity {
                    break;
                }
                let bound = match (self.inner.cfg.max_queue_wait, deadline) {
                    (Some(w), Some(d)) => Some(w.min(d)),
                    (Some(w), None) => Some(w),
                    (None, _) => None,
                };
                match bound {
                    Some(bound) => {
                        let remaining = bound.saturating_sub(wait_started.elapsed());
                        if remaining.is_zero() {
                            self.inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                            // Same semantics as the admission shed above:
                            // an estimate of the wait *ahead*, so clients
                            // sizing backoff from this field see one
                            // consistent meaning.
                            return Err(ServeError::Shed {
                                queue_depth: q.jobs.len(),
                                estimated_wait: estimate_wait(&self.inner, q.jobs.len()),
                            });
                        }
                        let (guard, _timeout) = pwait_timeout(&self.inner.not_full, q, remaining);
                        q = guard;
                    }
                    None => q = pwait(&self.inner.not_full, q),
                }
            }
            q.jobs.push_back(Job {
                graph,
                spec,
                key,
                enqueued: Instant::now(),
                deadline,
                slot: Arc::clone(&slot),
            });
            self.inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.queue_depth.store(q.jobs.len() as u64, Ordering::Relaxed);
        }
        self.inner.not_empty.notify_one();
        slot.wait()
    }

    /// True if this service accepts `admm_block` frames (started with
    /// [`ServeConfig::worker`] set — the `serve --worker` role).
    pub fn worker_enabled(&self) -> bool {
        self.inner.cfg.worker
    }

    /// Current metrics.
    pub fn stats(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The first sampled-audit failure report, if any audit has failed
    /// (see [`ServeConfig::audit_rate`]).
    pub fn first_audit_failure(&self) -> Option<String> {
        plock(&self.inner.audit_failure).clone()
    }

    /// Ready entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// The fault-injection stream, if a chaos plan is active. The TCP
    /// server consults this for connection-level faults.
    pub fn chaos(&self) -> Option<&Arc<Chaos>> {
        self.inner.chaos.as_ref()
    }

    /// Count one `admm_block` sub-problem solved by this process (the
    /// worker role's side of the fleet metrics).
    pub(crate) fn record_block_solved(&self) {
        self.inner.metrics.blocks_solved.fetch_add(1, Ordering::Relaxed);
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.inner.breaker.state()
    }

    /// Begin draining without blocking: new submissions are refused
    /// with [`ServeError::ShuttingDown`], but already-queued jobs still
    /// complete. Call [`Service::shutdown`] (or drop) to join workers.
    pub fn drain(&self) {
        self.begin_drain();
    }

    /// Graceful drain: refuse new submissions, let workers finish every
    /// queued job, join them, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.metrics.snapshot()
    }

    fn begin_drain(&self) {
        let mut q = plock(&self.inner.queue);
        q.accepting = false;
        drop(q);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.begin_drain();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        if let Some(chaos) = &inner.chaos {
            chaos.maybe_stall();
        }
        let job = {
            let mut q = plock(&inner.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    inner.metrics.queue_depth.store(q.jobs.len() as u64, Ordering::Relaxed);
                    break job;
                }
                if !q.accepting {
                    return; // drained and draining: exit
                }
                q = pwait(&inner.not_empty, q);
            }
        };
        inner.not_full.notify_one();

        let queued_for = job.enqueued.elapsed();
        if let Some(deadline) = job.deadline {
            if queued_for > deadline {
                inner.metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
                inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
                job.slot.fill(Err(ServeError::DeadlineExceeded { queued_for }));
                continue;
            }
        }

        job.slot.fill(solve_job(inner, &job));
    }
}

/// Answer one admitted job: primary solve (breaker permitting), cached
/// answer, or degraded fallback — every admitted job gets a terminal
/// response.
fn solve_job(inner: &Inner, job: &Job) -> Result<SolveResponse, ServeError> {
    let state = inner.breaker.state();
    let mut claimed_probe = false;
    let attempt_primary = match state {
        BreakerState::Closed => true,
        BreakerState::HalfOpen => {
            // A cached answer proves nothing about the solver: serve it
            // without spending the single half-open probe on it.
            if let Some(output) = inner.cache.get(job.key) {
                record_outcome(inner, Outcome::Hit);
                publish_breaker_state(inner);
                return Ok(finish(inner, job, output, Outcome::Hit));
            }
            claimed_probe = inner.breaker.try_probe();
            claimed_probe
        }
        BreakerState::Open => false,
    };

    let mut primary_failure: Option<String> = None;
    if attempt_primary {
        let started = Instant::now();
        let (result, outcome) = inner.cache.get_or_compute(job.key, || {
            inner.metrics.solves.fetch_add(1, Ordering::Relaxed);
            if let Some(chaos) = &inner.chaos {
                chaos.maybe_slow();
                chaos.maybe_panic();
            }
            solve_with_configured_backend(inner, &job.graph, &job.spec)
        });
        record_outcome(inner, outcome);
        if outcome == Outcome::Miss {
            // Only fresh solves inform the breaker and the admission
            // estimate — hits and dedup-waits didn't run the solver.
            inner.breaker.on_result(result.is_ok());
            if result.is_ok() {
                let sample = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                let old = inner.metrics.avg_solve_us.load(Ordering::Relaxed);
                let ema = if old == 0 { sample } else { (old * 7 + sample) / 8 };
                inner.metrics.avg_solve_us.store(ema, Ordering::Relaxed);
            }
        } else if claimed_probe {
            // The probe raced a cache fill or another in-flight solve
            // and never ran the solver itself: give the probe back so
            // the next worker can still test the primary path.
            inner.breaker.release_probe();
        }
        publish_breaker_state(inner);
        match result {
            Ok(output) => return Ok(finish(inner, job, output, outcome)),
            Err(msg) => primary_failure = Some(msg),
        }
    } else {
        publish_breaker_state(inner);
        // Breaker open: cached answers are still free to serve.
        if let Some(output) = inner.cache.get(job.key) {
            record_outcome(inner, Outcome::Hit);
            return Ok(finish(inner, job, output, Outcome::Hit));
        }
    }

    // Degraded path: the analytic equal-split schedule, cached under a
    // salted key so it never masks a future primary result. This path
    // never runs the convex solver, so it stays up while the primary
    // path is crashing.
    let (result, outcome) = inner
        .cache
        .get_or_compute(job.key ^ DEGRADED_SALT, || solve_pipeline_degraded(&job.graph, &job.spec));
    record_outcome(inner, outcome);
    match result {
        Ok(output) => Ok(finish(inner, job, output, outcome)),
        Err(degraded_msg) => {
            inner.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let msg = match primary_failure {
                Some(primary) => {
                    format!("{primary}; degraded fallback also failed: {degraded_msg}")
                }
                None => degraded_msg,
            };
            Err(ServeError::SolveFailed(msg))
        }
    }
}

/// The primary pipeline solve, routed through the configured ADMM fleet
/// when one is set and the request takes the ADMM tier. Runs inside the
/// cache's compute closure, so fleet fault counters fold into the
/// metrics exactly once per fresh solve (hits and dedup-waits replay
/// the cached answer without re-counting).
fn solve_with_configured_backend(inner: &Inner, graph: &Mdg, spec: &SolveSpec) -> SolveOutput {
    if let Some(fleet) = &inner.cfg.fleet {
        if routes_through_admm(graph, spec) {
            match solve_on_fleet(fleet, graph, spec) {
                Ok(out) => {
                    if let Some(stats) = &out.admm {
                        let m = &inner.metrics;
                        m.blocks_retried.fetch_add(stats.blocks_retried, Ordering::Relaxed);
                        m.blocks_stolen.fetch_add(stats.blocks_stolen, Ordering::Relaxed);
                        m.blocks_stale.fetch_add(stats.blocks_stale, Ordering::Relaxed);
                        m.workers_quarantined
                            .fetch_add(stats.workers_quarantined, Ordering::Relaxed);
                        m.backend_downgrades.fetch_add(stats.backend_downgrades, Ordering::Relaxed);
                    }
                    return out;
                }
                // Fleet path failed outright (even past the in-process
                // failover): fall through to the local pipeline, which
                // walks the dense degradation ladder.
                Err(e) => {
                    inner.metrics.backend_downgrades.fetch_add(1, Ordering::Relaxed);
                    eprintln!("serve: fleet admm solve failed ({e}); using local pipeline");
                }
            }
        }
    }
    solve_pipeline(graph, spec)
}

/// One ADMM-tier solve over the TCP fleet, failover included.
fn solve_on_fleet(
    fleet: &AdmmFleetSpec,
    graph: &Mdg,
    spec: &SolveSpec,
) -> Result<SolveOutput, String> {
    let tcp = TcpBlockBackend::with_config(
        &fleet.workers,
        FleetConfig { block_deadline: fleet.block_deadline, ..FleetConfig::default() },
    )
    .map_err(|e| e.to_string())?;
    let mut backend = FailoverBackend::new(tcp, InProcessBackend::default());
    let admm_cfg = AdmmConfig { max_stale: fleet.max_stale, ..AdmmConfig::default() };
    try_solve_pipeline_with_backend(graph, spec, &admm_cfg, &mut backend).map_err(|e| e.to_string())
}

/// Estimated wait a job joining behind `depth` queued jobs would face:
/// queue depth times the average solve time, spread over the workers.
fn estimate_wait(inner: &Inner, depth: usize) -> Duration {
    let avg = inner.metrics.avg_solve_us.load(Ordering::Relaxed);
    Duration::from_micros((depth as u64).saturating_mul(avg) / inner.cfg.workers.max(1) as u64)
}

fn record_outcome(inner: &Inner, outcome: Outcome) {
    match outcome {
        Outcome::Hit => inner.metrics.cache_hits.fetch_add(1, Ordering::Relaxed),
        Outcome::Miss => inner.metrics.cache_misses.fetch_add(1, Ordering::Relaxed),
        Outcome::DedupWait => inner.metrics.dedup_waits.fetch_add(1, Ordering::Relaxed),
    };
    // Fold cache-level evictions into the service counter.
    inner.metrics.evictions.store(inner.cache.evictions(), Ordering::Relaxed);
}

fn publish_breaker_state(inner: &Inner) {
    inner.metrics.breaker_state.store(inner.breaker.state().as_gauge(), Ordering::Relaxed);
    inner.metrics.breaker_opens.store(inner.breaker.opens(), Ordering::Relaxed);
}

fn finish(inner: &Inner, job: &Job, output: Arc<SolveOutput>, outcome: Outcome) -> SolveResponse {
    if output.degraded.is_degraded() {
        inner.metrics.degraded.fetch_add(1, Ordering::Relaxed);
    }
    maybe_audit(inner, job, &output);
    inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
    let service = job.enqueued.elapsed();
    inner.metrics.latency.record_us(service.as_micros().min(u128::from(u64::MAX)) as u64);
    SolveResponse {
        output,
        graph: job.graph.name().to_string(),
        cached: outcome == Outcome::Hit,
        deduplicated: outcome == Outcome::DedupWait,
        service,
    }
}

/// Sampled audit: every `audit_rate`-th completed response (cache hits
/// and degraded tiers included) is independently re-verified against
/// the graph and spec of *this* request. A failure is loud — stderr gets
/// the full report, `audit_fail` is bumped, and the first report is
/// kept for [`Service::first_audit_failure`] — but the response is
/// still returned: the auditor flags inconsistencies for operators, it
/// does not invent a better answer to serve.
fn maybe_audit(inner: &Inner, job: &Job, output: &SolveOutput) {
    let rate = inner.cfg.audit_rate;
    if rate == 0 {
        return;
    }
    let n = inner.audit_seq.fetch_add(1, Ordering::Relaxed);
    if !n.is_multiple_of(rate) {
        return;
    }
    let report = crate::audit::audit_solve_output(&job.graph, &job.spec, output);
    if report.is_clean() {
        inner.metrics.audit_pass.fetch_add(1, Ordering::Relaxed);
    } else {
        inner.metrics.audit_fail.fetch_add(1, Ordering::Relaxed);
        let rendered =
            format!("AUDIT FAILURE for graph '{}':\n{}", job.graph.name(), report.render());
        eprintln!("{rendered}");
        {
            let mut slot = plock(&inner.audit_failure);
            slot.get_or_insert(rendered.clone());
        }
        // Persist this run's first failure to the append-only log so a
        // restarted service still reports it (the slot above may hold a
        // record loaded from a previous run; the file keeps both).
        if let Some(path) = &inner.cfg.audit_log {
            if !inner.audit_logged.swap(true, Ordering::Relaxed) {
                if let Err(e) = append_audit_record(path, &rendered) {
                    eprintln!("serve: could not append audit log {}: {e}", path.display());
                }
            }
        }
    }
}

/// Separator line between records in the audit failure log.
const AUDIT_RECORD_SEP: &str = "=== audit record ===";

/// First record of the append-only audit failure log, if the file
/// exists and holds one.
fn load_first_audit_failure(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let first = text.split(AUDIT_RECORD_SEP).map(str::trim).find(|r| !r.is_empty())?;
    Some(first.to_string())
}

/// Append one failure record (report + separator) to the audit log,
/// creating the file and its parent directory as needed.
fn append_audit_record(path: &Path, rendered: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{rendered}\n{AUDIT_RECORD_SEP}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_core::gallery_graph;
    use paradigm_cost::Machine;

    fn fig1() -> Arc<Mdg> {
        Arc::new(gallery_graph("fig1").expect("gallery"))
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig { workers: 2, cache_capacity: 64, queue_capacity: 8, ..ServeConfig::default() }
    }

    #[test]
    fn solve_then_hit() {
        let svc = Service::start(small_cfg());
        let spec = SolveSpec::new(Machine::cm5(4));
        let first = svc.submit(fig1(), spec.clone()).unwrap();
        assert!(!first.cached);
        assert!(first.output.phi > 0.0);
        assert!((first.output.t_psa - 14.3).abs() < 1e-9);
        let second = svc.submit(fig1(), spec).unwrap();
        assert!(second.cached);
        assert_eq!(second.output.t_psa, first.output.t_psa);
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn structurally_equal_graphs_share_one_entry() {
        let svc = Service::start(small_cfg());
        let spec = SolveSpec::new(Machine::cm5(4));
        // Round-trip through the text format: different object, same
        // structure and name-set, so the fingerprint matches.
        let g1 = fig1();
        let g2 = Arc::new(paradigm_mdg::from_text(&paradigm_mdg::to_text(&g1)).unwrap());
        svc.submit(g1, spec.clone()).unwrap();
        let r = svc.submit(g2, spec).unwrap();
        assert!(r.cached, "structural equality must hit");
        let stats = svc.shutdown();
        assert_eq!(stats.solves, 1);
    }

    #[test]
    fn invalid_spec_rejected_without_solving() {
        let svc = Service::start(small_cfg());
        let mut spec = SolveSpec::new(Machine::cm5(4));
        spec.pb = Some(64); // exceeds machine size
        let err = svc.submit(fig1(), spec).unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)), "{err}");
        let stats = svc.shutdown();
        assert_eq!(stats.solves, 0);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let svc = Service::start(ServeConfig { workers: 1, ..small_cfg() });
        let err = svc
            .submit_with_deadline(fig1(), SolveSpec::new(Machine::cm5(4)), Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
        let stats = svc.shutdown();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let svc = Service::start(small_cfg());
        svc.begin_drain();
        let err = svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn drop_drains_cleanly() {
        let svc = Service::start(small_cfg());
        svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap();
        drop(svc); // must not hang or panic
    }

    #[test]
    fn injected_panics_fall_back_to_degraded_answers() {
        // Every primary solve panics; the service must still answer
        // every request, from the degraded path, without aborting.
        let cfg = ServeConfig {
            chaos: Some(FaultPlan { seed: 11, worker_panic: 1.0, ..FaultPlan::default() }),
            ..small_cfg()
        };
        let svc = Service::start(cfg);
        let r = svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap();
        assert!(r.output.degraded.is_degraded(), "got tier {:?}", r.output.degraded);
        assert!(r.output.t_psa.is_finite() && r.output.t_psa > 0.0);
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(stats.degraded >= 1);
        assert_eq!(stats.errors, 0, "degraded answers are not errors");
    }

    #[test]
    fn breaker_opens_under_sustained_panics_and_skips_primary() {
        let cfg = ServeConfig {
            workers: 1,
            chaos: Some(FaultPlan { seed: 3, worker_panic: 1.0, ..FaultPlan::default() }),
            breaker: BreakerConfig {
                window: 4,
                min_samples: 2,
                failure_threshold: 0.5,
                cooldown: Duration::from_secs(60),
            },
            ..small_cfg()
        };
        let svc = Service::start(cfg);
        let specs: Vec<SolveSpec> =
            [4u32, 8, 16, 32, 64].iter().map(|&p| SolveSpec::new(Machine::cm5(p))).collect();
        for spec in &specs {
            let r = svc.submit(fig1(), spec.clone()).unwrap();
            assert!(r.output.degraded.is_degraded());
        }
        assert_eq!(svc.breaker_state(), BreakerState::Open);
        let stats = svc.shutdown();
        assert!(stats.breaker_opens >= 1);
        // Once open, later requests skip the primary solver entirely:
        // strictly fewer primary attempts than requests.
        assert!(stats.solves < specs.len() as u64, "solves {}", stats.solves);
        assert_eq!(stats.completed, specs.len() as u64);
    }

    #[test]
    fn open_breaker_still_serves_cached_results() {
        let cfg = ServeConfig {
            workers: 1,
            // Let exactly one primary solve through, then panic forever.
            chaos: Some(FaultPlan {
                seed: 5,
                worker_panic: 1.0,
                panic_after: 1,
                ..FaultPlan::default()
            }),
            breaker: BreakerConfig {
                window: 4,
                min_samples: 1,
                failure_threshold: 0.5,
                cooldown: Duration::from_secs(60),
            },
            ..small_cfg()
        };
        let svc = Service::start(cfg);
        let good = SolveSpec::new(Machine::cm5(4));
        let first = svc.submit(fig1(), good.clone()).unwrap();
        assert_eq!(first.output.degraded, paradigm_core::FallbackTier::Primary);
        // Trip the breaker with a different key.
        let tripped = svc.submit(fig1(), SolveSpec::new(Machine::cm5(8))).unwrap();
        assert!(tripped.output.degraded.is_degraded());
        assert_eq!(svc.breaker_state(), BreakerState::Open);
        // The first key is cached: served full-fidelity despite the
        // open breaker.
        let again = svc.submit(fig1(), good).unwrap();
        assert!(again.cached);
        assert_eq!(again.output.degraded, paradigm_core::FallbackTier::Primary);
    }

    #[test]
    fn cache_hits_do_not_consume_the_half_open_probe() {
        let cfg = ServeConfig {
            workers: 1,
            // Let exactly one primary solve through, then panic forever.
            chaos: Some(FaultPlan {
                seed: 5,
                worker_panic: 1.0,
                panic_after: 1,
                ..FaultPlan::default()
            }),
            breaker: BreakerConfig {
                window: 4,
                min_samples: 1,
                failure_threshold: 0.5,
                cooldown: Duration::from_millis(20),
            },
            ..small_cfg()
        };
        let svc = Service::start(cfg);
        let good = SolveSpec::new(Machine::cm5(4));
        let first = svc.submit(fig1(), good.clone()).unwrap();
        assert_eq!(first.output.degraded, paradigm_core::FallbackTier::Primary);
        // Trip the breaker with a different key.
        let tripped = svc.submit(fig1(), SolveSpec::new(Machine::cm5(8))).unwrap();
        assert!(tripped.output.degraded.is_degraded());
        assert_eq!(svc.breaker_state(), BreakerState::Open);
        // Cool down into half-open, then serve the cached key. The hit
        // must not spend the single probe.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(svc.breaker_state(), BreakerState::HalfOpen);
        let cached = svc.submit(fig1(), good).unwrap();
        assert!(cached.cached);
        // The probe is still available: the next uncached request runs
        // the primary solver (which panics), re-opening the breaker. A
        // leaked probe would skip straight to degraded and pin the
        // breaker half-open forever.
        let probe = svc.submit(fig1(), SolveSpec::new(Machine::cm5(16))).unwrap();
        assert!(probe.output.degraded.is_degraded());
        assert_eq!(svc.breaker_state(), BreakerState::Open, "probe ran and failed");
        let stats = svc.shutdown();
        assert_eq!(stats.solves, 3, "seed solve + breaker trip + probe attempt");
    }

    #[test]
    fn deep_queue_sheds_doomed_deadlines() {
        let svc = Service::start(ServeConfig { workers: 1, ..small_cfg() });
        // Seed the admission estimate with one real solve.
        svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap();
        // Pretend the queue is deep by making the estimate dominate: a
        // 1 ns deadline cannot beat any positive estimate once jobs are
        // queued. Submit from a second thread to hold a queue slot.
        let svc = Arc::new(svc);
        let bg = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                // Cold key: actually solves, holding the worker busy.
                svc.submit(fig1(), SolveSpec::new(Machine::cm5(32))).unwrap()
            })
        };
        // Wait for the background job to occupy the queue/worker.
        let deadline = Duration::from_nanos(1);
        let mut shed = false;
        for _ in 0..200 {
            match svc.submit_with_deadline(fig1(), SolveSpec::new(Machine::cm5(16)), Some(deadline))
            {
                Err(ServeError::Shed { .. }) => {
                    shed = true;
                    break;
                }
                // Raced ahead of the background job (empty queue → zero
                // estimate) and then expired in queue, or solved before
                // the worker picked up the blocker. Try again.
                Err(ServeError::DeadlineExceeded { .. }) | Ok(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        bg.join().unwrap();
        if shed {
            assert!(svc.stats().shed >= 1);
        }
        // Whether or not the race landed, the service must stay sound.
        let r = svc.submit(fig1(), SolveSpec::new(Machine::cm5(4))).unwrap();
        assert!(r.cached);
    }

    #[test]
    fn audit_log_loads_the_first_record_across_restarts() {
        let path =
            std::env::temp_dir().join(format!("paradigm-audit-log-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(load_first_audit_failure(&path).is_none(), "missing file loads nothing");
        // Simulate a previous run's persisted failure.
        append_audit_record(&path, "AUDIT FAILURE for graph 'g':\nmakespan mismatch").unwrap();
        let svc = Service::start(ServeConfig { audit_log: Some(path.clone()), ..small_cfg() });
        let loaded = svc.first_audit_failure().expect("record loaded on boot");
        assert!(loaded.contains("graph 'g'"), "{loaded}");
        drop(svc);
        // The log is append-only: later records never shadow the first.
        append_audit_record(&path, "AUDIT FAILURE for graph 'h':\nlater run").unwrap();
        assert!(load_first_audit_failure(&path).unwrap().contains("graph 'g'"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_queue_with_wait_bound_sheds_instead_of_blocking() {
        // One worker, one-slot queue, and a chaos stall so jobs pile
        // up; with max_queue_wait set, the over-capacity submitter gets
        // a typed Shed instead of blocking forever.
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_queue_wait: Some(Duration::from_millis(5)),
            chaos: Some(FaultPlan {
                seed: 2,
                queue_stall: 1.0,
                stall_ms: 200,
                ..FaultPlan::default()
            }),
            ..small_cfg()
        };
        let svc = Arc::new(Service::start(cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    svc.submit(fig1(), SolveSpec::new(Machine::cm5(1 << (i + 1))))
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let shed = results.iter().filter(|r| matches!(r, Err(ServeError::Shed { .. }))).count();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(shed + ok, 4, "every submission got a terminal answer: {results:?}");
        assert!(shed >= 1, "with a 1-slot queue and stalled worker, someone must shed");
        assert_eq!(svc.stats().shed, shed as u64);
    }
}
