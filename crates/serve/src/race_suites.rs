//! Model-check suites for the serving layer's concurrent state machines.
//!
//! Each suite hands an invariant-asserting closure to
//! [`paradigm_race::explore`]: under `--cfg paradigm_race` every
//! interleaving up to the suite's preemption bound is executed; in a
//! normal build the closure runs once as a native smoke test. The suites
//! pin exactly the properties the chaos drills could only sample:
//!
//! - **queue** — a worker crash mid-job never loses the job: the retry is
//!   re-enqueued and (possibly another) lane completes it, on *every*
//!   schedule.
//! - **breaker** — the single half-open probe is never double-spent by
//!   racing lanes, and a released probe is never lost (the breaker cannot
//!   wedge half-open with no prober).
//! - **cache** — single-flight dedup never computes one key twice, and a
//!   panicking leader surfaces an error to all waiters while leaving the
//!   key retryable.
//! - **service** — a full submit/solve/shutdown round trip under a
//!   100%-panic fault plan always degrades (never errors) and always
//!   drains to termination.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::cache::ShardedCache;
use crate::chaos::FaultPlan;
use crate::service::{ServeConfig, Service};
use crate::worker::{run_lane, AttemptError, FleetConfig, WorkQueue};
use paradigm_core::{gallery_graph, SolveSpec};
use paradigm_cost::Machine;
use paradigm_race::sync::atomic::{AtomicUsize, Ordering};
use paradigm_race::{explore, plock, Config, Report, Suite};
use std::sync::Arc;
use std::time::Duration;

/// A breaker that cannot trip within a suite's handful of samples, so
/// lane quarantine stays out of the explored state space when a suite is
/// about queue behavior rather than breaker behavior.
fn quiet_breaker() -> BreakerConfig {
    BreakerConfig { window: 8, min_samples: 8, failure_threshold: 1.0, cooldown: Duration::ZERO }
}

/// Zero backoff keeps retried items immediately eligible, so the model's
/// logical clock never has to advance and schedules stay short.
fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        block_deadline: Duration::from_secs(1),
        max_attempts: 3,
        retry_base: Duration::ZERO,
        retry_cap: Duration::ZERO,
        breaker: quiet_breaker(),
    }
}

/// No lost job on crash + steal: lane 0 fails job 0's first attempt on
/// purpose; whatever the interleaving, the round must end with every
/// slot filled, the failure retried at most once, and steals a subset of
/// retries.
fn run_queue(cfg: &Config) -> Report {
    explore("queue", cfg, || {
        let fleet = fleet_cfg();
        let queue: WorkQueue<u32> = WorkQueue::new(2);
        let crashy = CircuitBreaker::new(quiet_breaker());
        let healthy = CircuitBreaker::new(quiet_breaker());
        paradigm_race::thread::scope(|s| {
            let (queue, fleet) = (&queue, &fleet);
            let crashy = &crashy;
            s.spawn(move || {
                run_lane(0, crashy, queue, fleet, |job, attempt| {
                    if job == 0 && attempt == 0 {
                        Err(AttemptError::Worker("injected crash".into()))
                    } else {
                        Ok(job as u32 * 10)
                    }
                })
            });
            let healthy = &healthy;
            s.spawn(move || run_lane(1, healthy, queue, fleet, |job, _| Ok(job as u32 * 10)));
        });
        let st = plock(&queue.state);
        assert_eq!(st.unresolved, 0, "round ended with unresolved jobs");
        for (i, slot) in st.slots.iter().enumerate() {
            assert_eq!(*slot, Some(i as u32 * 10), "job {i} lost or corrupted");
        }
        assert!(st.retried <= 1, "only the one injected failure may retry");
        assert!(st.stolen <= st.retried, "steals must be a subset of retries");
    })
}

/// Half-open probe budget: after a trip with zero cooldown the breaker
/// is immediately half-open; two racing claimants must never both hold
/// the probe, and after the holder releases it the probe must still be
/// claimable (a leaked release wedges the breaker half-open forever —
/// this is the invariant the seeded regression build deliberately
/// breaks).
fn run_breaker(cfg: &Config) -> Report {
    explore("breaker", cfg, || {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 2,
            min_samples: 1,
            failure_threshold: 0.5,
            cooldown: Duration::ZERO,
        });
        b.on_result(false); // trips; zero cooldown half-opens on next look
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let holders = AtomicUsize::new(0);
        paradigm_race::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    if b.try_probe() {
                        let concurrent = holders.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(concurrent, 0, "half-open probe double-spent");
                        holders.fetch_sub(1, Ordering::SeqCst);
                        // The probe proved nothing (think: cache hit), so
                        // the claim must go back for a real attempt.
                        b.release_probe();
                    }
                });
            }
        });
        assert!(b.try_probe(), "released probe lost: breaker wedged half-open with no prober");
    })
}

/// Single-flight dedup: two racing callers of the same key compute once;
/// a panicking leader turns into an `Err` for its caller and leaves the
/// key uncached so a later call can recompute.
fn run_cache(cfg: &Config) -> Report {
    explore("cache", cfg, || {
        let cache: ShardedCache<u32> = ShardedCache::new(16);
        let computes = AtomicUsize::new(0);
        paradigm_race::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let (v, _) = cache.get_or_compute(7, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        42
                    });
                    assert_eq!(*v.expect("compute cannot fail"), 42);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight key solved twice");
        assert_eq!(cache.len(), 1);
        let (r, _) = cache.get_or_compute(9, || panic!("degenerate input"));
        assert!(r.is_err(), "leader panic must surface as an error");
        let (v, _) = cache.get_or_compute(9, || 5);
        assert_eq!(*v.expect("panicked key stays retryable"), 5);
    })
}

/// End-to-end: one worker, every primary solve panics (worker_panic =
/// 1.0). On every schedule the submit must come back as a degraded
/// answer — never an error — and shutdown must drain and join cleanly.
fn run_service(cfg: &Config) -> Report {
    explore("service", cfg, || {
        paradigm_solver::workspace::reset_pool();
        let svc = Service::start(ServeConfig {
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 2,
            chaos: Some(FaultPlan { seed: 1, worker_panic: 1.0, ..FaultPlan::default() }),
            breaker: BreakerConfig {
                window: 4,
                min_samples: 1,
                failure_threshold: 0.5,
                cooldown: Duration::from_secs(60),
            },
            ..ServeConfig::default()
        });
        let graph = Arc::new(gallery_graph("fig1").expect("gallery graph"));
        let r = svc
            .submit(graph, SolveSpec::new(Machine::cm5(4)))
            .expect("a panicking primary degrades, it never errors");
        assert!(
            r.output.degraded.is_degraded(),
            "chaos panic must fall back to the degraded pipeline"
        );
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1, "the one admitted job must complete");
        assert_eq!(stats.errors, 0, "degraded answers are not errors");
    })
}

/// The serving layer's model-check suites.
pub fn suites() -> Vec<Suite> {
    vec![
        Suite {
            name: "queue",
            about: "work queue: worker crash + steal never loses a job",
            config: Config::with_bound(2),
            run: run_queue,
        },
        Suite {
            name: "breaker",
            about: "half-open probe budget is never double-spent or leaked",
            config: Config::with_bound(2),
            run: run_breaker,
        },
        Suite {
            name: "cache",
            about: "single-flight never solves a key twice; panics stay retryable",
            config: Config::with_bound(2),
            run: run_cache,
        },
        Suite {
            name: "service",
            about: "submit under 100% panic chaos degrades, drains, terminates",
            config: Config::with_bound(1),
            run: run_service,
        },
    ]
}
