//! Sliding-window failure-rate circuit breaker for the solve path.
//!
//! The breaker watches the outcomes of *fresh* pipeline solves (cache
//! hits don't count — they can't fail) over a bounded ring of recent
//! samples. When the failure rate over the window crosses the threshold
//! (with a minimum sample count so one early failure can't trip it),
//! the breaker **opens**: workers stop attempting the primary solver
//! and answer from cache or the cheap degraded path instead, giving a
//! crashing or pathologically slow solver room to recover. After a
//! cooldown the breaker goes **half-open** and admits exactly one probe
//! solve; success closes it, failure re-opens it for another cooldown.

use paradigm_race::plock;
use paradigm_race::sync::Mutex;
use paradigm_race::time::Instant;
use std::time::Duration;

/// Breaker tuning. The defaults are deliberately forgiving: half the
/// recent window must fail before the primary path is abandoned.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Number of recent solve outcomes retained.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure fraction (over the window) that opens the breaker.
    pub failure_threshold: f64,
    /// How long the breaker stays open before probing again.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown: Duration::from_secs(2),
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; primary solves run.
    Closed,
    /// Tripped; primary solves are skipped until the cooldown passes.
    Open,
    /// Cooldown passed; one probe solve decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (metrics, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Numeric gauge encoding: closed 0, open 1, half-open 2.
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

enum Mode {
    Closed,
    Open {
        since: Instant,
    },
    /// `probing` is true while one worker owns the probe solve.
    HalfOpen {
        probing: bool,
    },
}

struct Window {
    /// Ring of recent outcomes: `true` = failure.
    ring: Vec<bool>,
    next: usize,
    filled: usize,
    mode: Mode,
    opens: u64,
}

/// The breaker itself. One per service; workers consult it before each
/// fresh solve and report outcomes after.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    w: Mutex<Window>,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        let window = cfg.window.max(1);
        CircuitBreaker {
            cfg,
            w: Mutex::new(Window {
                ring: vec![false; window],
                next: 0,
                filled: 0,
                mode: Mode::Closed,
                opens: 0,
            }),
        }
    }

    /// Current state; transparently moves Open → HalfOpen once the
    /// cooldown has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut w = plock(&self.w);
        self.refresh(&mut w);
        match w.mode {
            Mode::Closed => BreakerState::Closed,
            Mode::Open { .. } => BreakerState::Open,
            Mode::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Claim the half-open probe. Returns true for exactly one caller
    /// per half-open period; that caller must report via
    /// [`CircuitBreaker::on_result`].
    pub fn try_probe(&self) -> bool {
        let mut w = plock(&self.w);
        self.refresh(&mut w);
        match w.mode {
            Mode::HalfOpen { probing: false } => {
                w.mode = Mode::HalfOpen { probing: true };
                true
            }
            _ => false,
        }
    }

    /// Return an unused half-open probe claim. The claimed probe job
    /// resolved without running a fresh solve (cache hit or dedup
    /// wait), so it proved nothing about the solver; the probe slot
    /// reopens for the next worker. No-op in any other state.
    pub fn release_probe(&self) {
        // Seeded regression for the model checker's negative CI test:
        // dropping the release reintroduces the historical probe-slot
        // leak (a cache-hit probe permanently wedges the breaker
        // half-open). Only compiled in when the extra cfg is set.
        if cfg!(paradigm_race_seeded_probe_leak) {
            return;
        }
        let mut w = plock(&self.w);
        if matches!(w.mode, Mode::HalfOpen { probing: true }) {
            w.mode = Mode::HalfOpen { probing: false };
        }
    }

    /// Record one fresh-solve outcome.
    pub fn on_result(&self, ok: bool) {
        let mut w = plock(&self.w);
        self.refresh(&mut w);
        match w.mode {
            Mode::HalfOpen { .. } => {
                if ok {
                    // Recovered: close and forget the bad window.
                    w.ring.iter_mut().for_each(|f| *f = false);
                    w.filled = 0;
                    w.next = 0;
                    w.mode = Mode::Closed;
                } else {
                    w.mode = Mode::Open { since: Instant::now() };
                    w.opens += 1;
                }
            }
            Mode::Closed => {
                let slot = w.next;
                w.ring[slot] = !ok;
                w.next = (w.next + 1) % w.ring.len();
                w.filled = (w.filled + 1).min(w.ring.len());
                if w.filled >= self.cfg.min_samples.max(1) {
                    let failures = w.ring.iter().take(w.filled).filter(|&&f| f).count();
                    if failures as f64 >= self.cfg.failure_threshold * w.filled as f64 {
                        w.mode = Mode::Open { since: Instant::now() };
                        w.opens += 1;
                    }
                }
            }
            // Results reported while open (e.g. a solve that was already
            // in flight when the breaker tripped) don't move the state.
            Mode::Open { .. } => {}
        }
    }

    /// Times the breaker has opened.
    pub fn opens(&self) -> u64 {
        plock(&self.w).opens
    }

    fn refresh(&self, w: &mut Window) {
        if let Mode::Open { since } = w.mode {
            if since.elapsed() >= self.cfg.cooldown {
                w.mode = Mode::HalfOpen { probing: false };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn stays_closed_under_occasional_failures() {
        let b = CircuitBreaker::new(cfg(10_000));
        for i in 0..32 {
            b.on_result(i % 4 != 0); // 25% failures < 50% threshold
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn opens_at_failure_threshold_after_min_samples() {
        let b = CircuitBreaker::new(cfg(10_000));
        b.on_result(false);
        b.on_result(false);
        // Only 2 samples: below min_samples, still closed.
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_result(true);
        b.on_result(false); // 3/4 failures >= 50%
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn cooldown_leads_to_single_probe() {
        let b = CircuitBreaker::new(cfg(20));
        for _ in 0..4 {
            b.on_result(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_probe(), "no probe while open");
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_probe(), "first claim wins");
        assert!(!b.try_probe(), "second claim loses");
    }

    #[test]
    fn probe_success_closes_and_clears() {
        let b = CircuitBreaker::new(cfg(1));
        for _ in 0..4 {
            b.on_result(false);
        }
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_probe());
        b.on_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
        // The bad window was cleared: one more failure must not re-trip.
        b.on_result(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn released_probe_can_be_reclaimed() {
        let b = CircuitBreaker::new(cfg(1));
        for _ in 0..4 {
            b.on_result(false);
        }
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_probe());
        assert!(!b.try_probe(), "probe is held");
        // The probe job hit the cache: it proved nothing, give it back.
        b.release_probe();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_probe(), "released probe must be claimable again");
    }

    #[test]
    fn release_probe_is_noop_outside_half_open() {
        let b = CircuitBreaker::new(cfg(10_000));
        b.release_probe();
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..4 {
            b.on_result(false);
        }
        b.release_probe();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn probe_failure_reopens() {
        let b = CircuitBreaker::new(cfg(1));
        for _ in 0..4 {
            b.on_result(false);
        }
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_probe());
        b.on_result(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
    }
}
