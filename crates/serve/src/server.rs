//! The TCP front end: NDJSON over `std::net::TcpListener`.
//!
//! Each accepted connection gets its own handler thread reading request
//! lines and writing one response line per request. The accept loop is
//! non-blocking and polls a shutdown flag, which is raised by:
//!
//! * a client sending `{"op":"shutdown"}`,
//! * SIGINT (on unix; installed with a plain `extern "C"` declaration
//!   of `signal(2)` so no foreign crate is needed).
//!
//! Shutdown is a graceful drain: the listener stops accepting,
//! connection threads notice via their read timeout and finish the
//! request they hold, the service drains its queue, and the final
//! metrics snapshot is returned to the caller (the CLI prints it).

use crate::protocol::handle_line;
use crate::service::{ServeConfig, Service};
use crate::MetricsSnapshot;
use paradigm_race::sync::atomic::{AtomicBool, Ordering};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Server construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Service (pool/cache/queue) configuration.
    pub service: ServeConfig,
    /// Port to bind on 127.0.0.1; 0 asks the OS for an ephemeral port.
    pub port: u16,
}

/// A bound, running server. The accept loop runs on the caller's
/// thread via [`Server::run`]; tests use [`Server::local_addr`] +
/// [`Server::shutdown_flag`] to drive it from outside.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and start the service worker pool.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            service: Arc::new(Service::start(cfg.service)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops the accept loop; shared so signal handlers
    /// and tests can raise it.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accept and serve connections until shutdown is requested, then
    /// drain and return the final metrics. Installs a SIGINT handler on
    /// unix so ^C triggers the same graceful path.
    pub fn run(self) -> MetricsSnapshot {
        install_sigint_flag(&self.shutdown);
        let mut handlers = Vec::new();
        while !self.shutdown.load(Ordering::Relaxed) && !sigint_raised() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let service = Arc::clone(&self.service);
                    let shutdown = Arc::clone(&self.shutdown);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &service, &shutdown);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        self.shutdown.store(true, Ordering::Relaxed);
        for h in handlers {
            let _ = h.join();
        }
        let service =
            Arc::try_unwrap(self.service).unwrap_or_else(|_| unreachable!("handlers joined"));
        service.shutdown()
    }
}

/// Serve one connection: read request lines, write response lines. A
/// read timeout lets the thread poll the shutdown flag between lines so
/// idle keep-alive connections cannot stall a drain.
///
/// Frames are read as raw bytes (`read_until`), not `read_line`: a
/// frame that isn't valid UTF-8 is answered with a structured
/// `bad-request` error and the connection stays alive — one garbage
/// frame must not kill a keep-alive session.
fn handle_connection(stream: TcpStream, service: &Service, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut frame = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut frame) {
            Ok(0) => return, // client closed
            Ok(_) => {
                // Remember whether this frame is a distributed-ADMM
                // block job before the buffer is recycled: the chaos
                // plan draws worker-level block faults from a separate
                // stream than generic connection faults. The coordinator
                // renders `op` first, so a prefix substring check is
                // enough (no reparse).
                let is_block_frame = std::str::from_utf8(&frame)
                    .is_ok_and(|l| l.trim_start().starts_with(r#"{"op":"admm_block""#));
                let (response, stop) = match std::str::from_utf8(&frame) {
                    Ok(line) if line.trim().is_empty() => {
                        frame.clear();
                        continue;
                    }
                    Ok(line) => handle_line(service, line.trim()),
                    Err(_) => (
                        crate::protocol::error_response("request frame is not valid UTF-8")
                            .render(),
                        false,
                    ),
                };
                frame.clear();
                // Injected connection faults (chaos drills only): sever
                // the connection or send a torn frame, so clients must
                // exercise their reconnect/retry paths. Block frames
                // draw from the worker-fault sites instead, so a fleet
                // drill can torture `admm_block` traffic specifically.
                if let Some(chaos) = service.chaos() {
                    let (drop_now, truncate_now) = if is_block_frame {
                        (chaos.drop_block_frame(), chaos.truncate_block_frame())
                    } else {
                        (chaos.drop_connection(), chaos.truncate_frame())
                    };
                    if drop_now {
                        return;
                    }
                    if truncate_now {
                        let cut = response.len() / 2;
                        let _ = writer.write_all(&response.as_bytes()[..cut]);
                        let _ = writer.flush();
                        return;
                    }
                }
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
                if stop {
                    shutdown.store(true, Ordering::Relaxed);
                    return;
                }
            }
            // Read timeout (the shutdown poll): any bytes of a partial
            // frame already pulled into `frame` stay there, so a client
            // writing a frame in pieces slower than the timeout is
            // reassembled, not desynced.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::Relaxed) || sigint_raised() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(unix)]
mod sigint {
    // Touched from a signal handler: only async-signal-safe operations
    // are allowed there, so this flag must stay a raw std atomic — a
    // model scheduling point inside a signal context would deadlock.
    use std::sync::atomic::{AtomicBool, Ordering}; // raw-sync: allow

    pub static RAISED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        /// `signal(2)` from the platform libc the binary already links.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only an atomic store: async-signal-safe.
        RAISED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Route SIGINT to a flag the accept loop polls (unix only; elsewhere
/// ^C keeps its default behavior and `{"op":"shutdown"}` is the
/// graceful path).
fn install_sigint_flag(_shutdown: &Arc<AtomicBool>) {
    #[cfg(unix)]
    sigint::install();
}

/// True once SIGINT has been observed.
fn sigint_raised() -> bool {
    #[cfg(unix)]
    {
        sigint::RAISED.load(Ordering::Relaxed)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn request(stream: &mut TcpStream, line: &str) -> Json {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse(response.trim()).unwrap()
    }

    #[test]
    fn round_trip_over_tcp_and_client_shutdown() {
        let server = Server::bind(ServerConfig {
            service: ServeConfig {
                workers: 2,
                cache_capacity: 64,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
            port: 0, // ephemeral
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run());

        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

        let pong = request(&mut c, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

        let solved = request(&mut c, r#"{"op":"solve","gallery":"fig1","procs":4}"#);
        assert_eq!(solved.get("ok").and_then(Json::as_bool), Some(true));
        assert!((solved.get("t_psa").and_then(Json::as_f64).unwrap() - 14.3).abs() < 1e-9);

        let again = request(&mut c, r#"{"op":"solve","gallery":"fig1","procs":4}"#);
        assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));

        let bad = request(&mut c, "this is not json");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

        let stats = request(&mut c, r#"{"op":"stats"}"#);
        let payload = stats.get("stats").expect("stats payload");
        assert_eq!(payload.get("solves").and_then(Json::as_u64), Some(1));

        let bye = request(&mut c, r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));

        let finala = run.join().unwrap();
        assert_eq!(finala.solves, 1);
        assert_eq!(finala.cache_hits, 1);
        assert_eq!(finala.completed, 2);
    }

    #[test]
    fn invalid_utf8_frame_answered_and_connection_survives() {
        let server = Server::bind(ServerConfig {
            service: ServeConfig {
                workers: 1,
                cache_capacity: 8,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
            port: 0,
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        let run = std::thread::spawn(move || server.run());

        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        // A frame of invalid UTF-8 bytes: must get a structured error...
        c.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let doc = parse(response.trim()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("bad-request"));
        // ...and the connection must still serve the next request.
        let pong = request(&mut c, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

        flag.store(true, Ordering::Relaxed);
        drop(c);
        run.join().unwrap();
    }

    #[test]
    fn frame_written_in_pieces_across_read_timeouts_stays_intact() {
        let server = Server::bind(ServerConfig {
            service: ServeConfig {
                workers: 1,
                cache_capacity: 8,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
            port: 0,
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        let run = std::thread::spawn(move || server.run());

        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        // Write one frame in two pieces with a pause well past the
        // server's 100 ms read timeout: the halves must be reassembled
        // into one request, not parsed as two garbage frames.
        c.write_all(br#"{"op":"#).unwrap();
        c.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));
        c.write_all(b"\"ping\"}\n").unwrap();
        c.flush().unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let doc = parse(response.trim()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        // The connection is still in sync for a whole-frame request.
        let pong = request(&mut c, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

        flag.store(true, Ordering::Relaxed);
        drop(c);
        run.join().unwrap();
    }

    #[test]
    fn shutdown_flag_stops_an_idle_server() {
        let server = Server::bind(ServerConfig {
            service: ServeConfig {
                workers: 1,
                cache_capacity: 8,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
            port: 0,
        })
        .unwrap();
        let flag = server.shutdown_flag();
        let run = std::thread::spawn(move || server.run());
        std::thread::sleep(Duration::from_millis(50));
        flag.store(true, Ordering::Relaxed);
        let stats = run.join().unwrap();
        assert_eq!(stats.requests, 0);
    }
}
