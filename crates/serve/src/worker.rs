//! The distributed-ADMM worker role: wire codecs for block subproblems
//! and the coordinator-side TCP backend.
//!
//! A `paradigm serve --worker` node accepts `admm_block` frames — one
//! self-contained [`BlockJob`] each — solves them with
//! [`paradigm_admm::solve_block_job`], and returns the block iterate.
//! Because a block solve is a pure function of the job value, and the
//! frame codec round-trips every number exactly (`f64` is rendered in
//! shortest round-trip form on both sides), a TCP worker produces
//! *bitwise* the same [`BlockSolution`] as the in-process backend. The
//! consensus coordinator therefore converges identically whether its
//! x-updates run on local threads or on a rack of workers.
//!
//! Frame grammar (one JSON object per line, like the rest of the
//! protocol; unknown fields rejected):
//!
//! ```text
//! admm_block = { "op":"admm_block", "graph":mdg-text,
//!                "machine":{ "procs":int, "t_ss":num, "t_ps":num,
//!                            "t_sr":num, "t_pr":num, "t_n":num,
//!                            "mem_bytes":int },
//!                "area_off":num, "rho":num,
//!                "x0":[num...], "free":[int...],
//!                "cons":[{"sub":int,"target":num}...],
//!                "inner":{ "stages":[num...], "iters_per_stage":int,
//!                          "exact_iters":int, "rel_tol":num } }
//! response   = { "ok":true, "x":[num...], "iters":int, "phi_model":num }
//! ```

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::client::{Client, ClientError, RetryPolicy};
use crate::json::Json;
use paradigm_admm::{
    BackendFaultStats, BlockBackend, BlockJob, BlockSolution, ConsensusTerm, InnerConfig,
};
use paradigm_cost::{Machine, TransferParams};
use paradigm_mdg::{from_text, to_text};
use paradigm_race::sync::{Condvar, Mutex};
use paradigm_race::time::Instant;
use paradigm_race::{plock, pwait_timeout};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::Duration;

/// Encode one block subproblem as an `admm_block` request frame.
pub fn block_job_request(job: &BlockJob) -> Json {
    let machine = Json::Obj(vec![
        ("procs".into(), Json::num(f64::from(job.machine.procs))),
        ("t_ss".into(), Json::num(job.machine.xfer.t_ss)),
        ("t_ps".into(), Json::num(job.machine.xfer.t_ps)),
        ("t_sr".into(), Json::num(job.machine.xfer.t_sr)),
        ("t_pr".into(), Json::num(job.machine.xfer.t_pr)),
        ("t_n".into(), Json::num(job.machine.xfer.t_n)),
        ("mem_bytes".into(), Json::num(job.machine.mem_bytes as f64)),
    ]);
    let cons: Vec<Json> = job
        .cons
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("sub".into(), Json::num(c.sub as f64)),
                ("target".into(), Json::num(c.target)),
            ])
        })
        .collect();
    let inner = Json::Obj(vec![
        ("stages".into(), Json::Arr(job.inner.stages.iter().map(|&s| Json::num(s)).collect())),
        ("iters_per_stage".into(), Json::num(job.inner.iters_per_stage as f64)),
        ("exact_iters".into(), Json::num(job.inner.exact_iters as f64)),
        ("rel_tol".into(), Json::num(job.inner.rel_tol)),
    ]);
    Json::Obj(vec![
        ("op".into(), Json::str("admm_block")),
        ("graph".into(), Json::str(to_text(&job.graph))),
        ("machine".into(), machine),
        ("area_off".into(), Json::num(job.area_off)),
        ("rho".into(), Json::num(job.rho)),
        ("x0".into(), Json::Arr(job.x0.iter().map(|&v| Json::num(v)).collect())),
        ("free".into(), Json::Arr(job.free.iter().map(|&i| Json::num(i as f64)).collect())),
        ("cons".into(), Json::Arr(cons)),
        ("inner".into(), inner),
    ])
}

const ADMM_BLOCK_FIELDS: [&str; 9] =
    ["op", "graph", "machine", "area_off", "rho", "x0", "free", "cons", "inner"];

fn finite(doc: &Json, key: &str) -> Result<f64, String> {
    let v = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("`{key}` must be finite"))
    }
}

fn index(doc: &Json, key: &str) -> Result<usize, String> {
    let v = doc
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
    usize::try_from(v).map_err(|_| format!("`{key}` out of range"))
}

fn num_array(doc: &Json, key: &str) -> Result<Vec<f64>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    arr.iter()
        .map(|v| v.as_f64().filter(|n| n.is_finite()))
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| format!("`{key}` must be an array of finite numbers"))
}

fn index_array(doc: &Json, key: &str, bound: usize) -> Result<Vec<usize>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    let out = arr
        .iter()
        .map(|v| v.as_u64().and_then(|n| usize::try_from(n).ok()))
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| format!("`{key}` must be an array of non-negative integers"))?;
    if let Some(&bad) = out.iter().find(|&&i| i >= bound) {
        return Err(format!("`{key}` index {bad} out of range (graph has {bound} nodes)"));
    }
    Ok(out)
}

/// Decode an `admm_block` request frame into a runnable [`BlockJob`].
pub fn parse_block_job(doc: &Json, members: &[(String, Json)]) -> Result<BlockJob, String> {
    for (key, _) in members {
        if !ADMM_BLOCK_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in admm_block request"));
        }
    }
    let text = doc
        .get("graph")
        .and_then(Json::as_str)
        .ok_or("`graph` must be a string (MDG text format)")?;
    let graph = from_text(text).map_err(|e| format!("bad block graph: {e}"))?;
    let n = graph.node_count();

    let m = doc.get("machine").ok_or("missing object field `machine`")?;
    let Json::Obj(m_members) = m else { return Err("`machine` must be an object".into()) };
    for (key, _) in m_members {
        if !["procs", "t_ss", "t_ps", "t_sr", "t_pr", "t_n", "mem_bytes"].contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in machine"));
        }
    }
    let procs = m.get("procs").and_then(Json::as_u64).ok_or("`procs` must be an integer")?;
    let procs =
        u32::try_from(procs).ok().filter(|&p| p >= 1).ok_or("`procs` must be in 1..=2^32-1")?;
    let xfer = TransferParams {
        t_ss: finite(m, "t_ss")?,
        t_ps: finite(m, "t_ps")?,
        t_sr: finite(m, "t_sr")?,
        t_pr: finite(m, "t_pr")?,
        t_n: finite(m, "t_n")?,
    };
    if [xfer.t_ss, xfer.t_ps, xfer.t_sr, xfer.t_pr, xfer.t_n].iter().any(|&v| v < 0.0) {
        return Err("machine transfer parameters must be non-negative".into());
    }
    let mem_bytes = m
        .get("mem_bytes")
        .and_then(Json::as_u64)
        .filter(|&b| b > 0)
        .ok_or("`mem_bytes` must be a positive integer")?;
    let machine = Machine { procs, xfer, mem_bytes };

    let x0 = num_array(doc, "x0")?;
    if x0.len() != n {
        return Err(format!("`x0` has {} entries, graph has {n} nodes", x0.len()));
    }
    let free = index_array(doc, "free", n)?;

    let cons_arr = doc.get("cons").and_then(Json::as_arr).ok_or("missing array field `cons`")?;
    let mut cons = Vec::with_capacity(cons_arr.len());
    for c in cons_arr {
        let Json::Obj(c_members) = c else { return Err("`cons` entries must be objects".into()) };
        for (key, _) in c_members {
            if !["sub", "target"].contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` in cons entry"));
            }
        }
        let sub = index(c, "sub")?;
        if sub >= n {
            return Err(format!("cons index {sub} out of range (graph has {n} nodes)"));
        }
        cons.push(ConsensusTerm { sub, target: finite(c, "target")? });
    }

    let i = doc.get("inner").ok_or("missing object field `inner`")?;
    let Json::Obj(i_members) = i else { return Err("`inner` must be an object".into()) };
    for (key, _) in i_members {
        if !["stages", "iters_per_stage", "exact_iters", "rel_tol"].contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in inner"));
        }
    }
    let inner = InnerConfig {
        stages: num_array(i, "stages")?,
        iters_per_stage: index(i, "iters_per_stage")?,
        exact_iters: index(i, "exact_iters")?,
        rel_tol: finite(i, "rel_tol")?,
    };

    let rho = finite(doc, "rho")?;
    if rho <= 0.0 {
        return Err("`rho` must be positive".into());
    }
    Ok(BlockJob { graph, machine, area_off: finite(doc, "area_off")?, rho, x0, free, cons, inner })
}

/// Encode a finished block solve as the `admm_block` success response.
pub fn block_solution_response(sol: &BlockSolution) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("x".into(), Json::Arr(sol.x.iter().map(|&v| Json::num(v)).collect())),
        ("iters".into(), Json::num(sol.iters as f64)),
        ("phi_model".into(), Json::num(sol.phi_model)),
    ])
}

/// Decode a worker's `admm_block` response (the coordinator side).
pub fn parse_block_solution(doc: &Json) -> Result<BlockSolution, String> {
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unlabelled failure");
        return Err(format!("worker refused block: {msg}"));
    }
    Ok(BlockSolution {
        x: num_array(doc, "x")?,
        iters: index(doc, "iters")?,
        phi_model: finite(doc, "phi_model")?,
    })
}

/// Error constructing a [`TcpBlockBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The worker address list was empty.
    EmptyFleet,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyFleet => {
                write!(f, "distributed ADMM needs at least one worker address")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Fault-tolerance tuning for the coordinator's worker fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-job deadline: a block solve that has not answered within this
    /// window counts as a failed attempt (the connection is dropped and
    /// the job re-enqueued for another worker).
    pub block_deadline: Duration,
    /// Total attempts per job across the whole fleet before the job is
    /// declared lost for this round.
    pub max_attempts: u32,
    /// First re-enqueue delay; doubles per attempt.
    pub retry_base: Duration,
    /// Re-enqueue delay ceiling.
    pub retry_cap: Duration,
    /// Per-worker quarantine breaker. The default window is much
    /// tighter than the serve-path default: a worker fleet has cheap
    /// retries elsewhere, so quarantining fast and re-probing after a
    /// short cooldown beats patiently re-feeding a crashing worker.
    pub breaker: BreakerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            block_deadline: Duration::from_secs(30),
            max_attempts: 4,
            retry_base: Duration::from_millis(10),
            retry_cap: Duration::from_millis(500),
            breaker: BreakerConfig {
                window: 8,
                min_samples: 3,
                failure_threshold: 0.5,
                cooldown: Duration::from_millis(500),
            },
        }
    }
}

/// How one block-solve attempt failed.
pub(crate) enum AttemptError {
    /// The worker misbehaved — transport fault, timeout, crash, or it
    /// refused the worker role. Counts against that worker's breaker;
    /// the job is re-enqueued for (preferably) another worker.
    Worker(String),
    /// The job itself was rejected as invalid; no worker can help, so
    /// the job fails immediately without burning attempts.
    Job(String),
}

pub(crate) struct WorkItem {
    pub(crate) job_idx: usize,
    /// Zero-based attempt counter.
    pub(crate) attempt: u32,
    /// Lane that last failed this job (steal detection).
    pub(crate) last_failed_on: Option<usize>,
    /// Exponential-backoff gate: not eligible before this instant.
    pub(crate) not_before: Instant,
}

pub(crate) struct RoundState<S> {
    pub(crate) ready: VecDeque<WorkItem>,
    /// Jobs not yet resolved (queued, backing off, or in flight).
    pub(crate) unresolved: usize,
    pub(crate) slots: Vec<Option<S>>,
    /// Last failure message per job (diagnostics for lost blocks).
    pub(crate) errors: Vec<Option<String>>,
    pub(crate) retried: u64,
    pub(crate) stolen: u64,
}

/// Shared work queue for one consensus round: every lane pulls the next
/// eligible job, so a straggler delays only its own job while healthy
/// workers drain the rest. Generic over the solution type `S` so the
/// model-check suites can drive it with tiny scripted payloads instead
/// of full [`BlockSolution`]s.
pub(crate) struct WorkQueue<S> {
    pub(crate) state: Mutex<RoundState<S>>,
    pub(crate) changed: Condvar,
}

/// How often a quarantined lane re-checks its breaker, and the idle
/// re-poll bound inside [`WorkQueue::take`].
const LANE_POLL: Duration = Duration::from_millis(20);

impl<S> WorkQueue<S> {
    pub(crate) fn new(jobs: usize) -> WorkQueue<S> {
        let now = Instant::now();
        WorkQueue {
            state: Mutex::new(RoundState {
                ready: (0..jobs)
                    .map(|job_idx| WorkItem {
                        job_idx,
                        attempt: 0,
                        last_failed_on: None,
                        not_before: now,
                    })
                    .collect(),
                unresolved: jobs,
                slots: (0..jobs).map(|_| None).collect(),
                errors: vec![None; jobs],
                retried: 0,
                stolen: 0,
            }),
            changed: Condvar::new(),
        }
    }

    pub(crate) fn finished(&self) -> bool {
        plock(&self.state).unresolved == 0
    }

    /// Pop the next eligible item; blocks while every queued item is
    /// still backing off or in flight elsewhere; `None` once all jobs
    /// are resolved.
    pub(crate) fn take(&self) -> Option<WorkItem> {
        let mut st = plock(&self.state);
        loop {
            if st.unresolved == 0 {
                return None;
            }
            let now = Instant::now();
            if let Some(pos) = st.ready.iter().position(|it| it.not_before <= now) {
                return st.ready.remove(pos);
            }
            let wake = st
                .ready
                .iter()
                .map(|it| it.not_before.saturating_duration_since(now))
                .min()
                .unwrap_or(LANE_POLL)
                .min(LANE_POLL)
                .max(Duration::from_millis(1));
            let (guard, _) = pwait_timeout(&self.changed, st, wake);
            st = guard;
        }
    }

    pub(crate) fn succeed(&self, item: &WorkItem, lane: usize, sol: S) {
        let mut st = plock(&self.state);
        if item.last_failed_on.is_some_and(|failed| failed != lane) {
            st.stolen += 1;
        }
        st.slots[item.job_idx] = Some(sol);
        st.unresolved -= 1;
        self.changed.notify_all();
    }

    /// Record a failed attempt. `next_attempt` re-enqueues the job with
    /// that attempt counter — a half-open probe failure passes the
    /// counter through unchanged, so a dead worker's periodic re-probes
    /// can never exhaust a job's attempt budget. `None` resolves the
    /// job as lost.
    pub(crate) fn fail(
        &self,
        item: WorkItem,
        lane: usize,
        err: String,
        next_attempt: Option<u32>,
        backoff: Duration,
    ) {
        let mut st = plock(&self.state);
        st.errors[item.job_idx] = Some(err);
        match next_attempt {
            Some(attempt) => {
                st.retried += 1;
                st.ready.push_back(WorkItem {
                    attempt,
                    last_failed_on: Some(lane),
                    not_before: Instant::now() + backoff,
                    ..item
                });
            }
            None => st.unresolved -= 1,
        }
        self.changed.notify_all();
    }
}

struct Lane {
    client: Client,
    breaker: CircuitBreaker,
}

fn attempt_block(client: &mut Client, job: &BlockJob) -> Result<BlockSolution, AttemptError> {
    let line = block_job_request(job).render();
    match client.request(&line) {
        Ok(doc) => parse_block_solution(&doc).map_err(AttemptError::Worker),
        Err(ClientError::Rejected { kind, message }) if kind != "not-a-worker" => {
            Err(AttemptError::Job(format!("rejected ({kind}): {message}")))
        }
        Err(e) => Err(AttemptError::Worker(e.to_string())),
    }
}

/// One worker's pull loop: gate on the quarantine breaker, then pull
/// and solve queue items until every job is resolved.
///
/// `attempt(job_idx, attempt_no)` performs one solve attempt; the TCP
/// backend wires it to a real worker connection, the model-check suites
/// to a scripted outcome table. Everything fault-tolerance related —
/// breaker gating, probe budgets, retry/backoff accounting, steal
/// detection — lives here, under the model checker's eye.
pub(crate) fn run_lane<S>(
    lane_idx: usize,
    breaker: &CircuitBreaker,
    queue: &WorkQueue<S>,
    cfg: &FleetConfig,
    mut attempt: impl FnMut(usize, u32) -> Result<S, AttemptError>,
) {
    // Consecutive failed half-open probes this round. A quarantined
    // worker whose probes keep failing eventually stops haunting the
    // round entirely: once every lane has given up, the round resolves
    // (and reports collapse) instead of spinning probes that can never
    // succeed against jobs that still hold attempt budget.
    let mut failed_probes = 0;
    let probe_limit = cfg.max_attempts.max(1);
    loop {
        let mut probing = false;
        match breaker.state() {
            BreakerState::Closed => {}
            BreakerState::HalfOpen if breaker.try_probe() => probing = true,
            _ => {
                // Quarantined: sit out briefly; `state()` half-opens
                // after the cooldown.
                if queue.finished() || failed_probes >= probe_limit {
                    return;
                }
                paradigm_race::thread::sleep(LANE_POLL);
                continue;
            }
        }
        let Some(item) = queue.take() else {
            if probing {
                breaker.release_probe();
            }
            return;
        };
        match attempt(item.job_idx, item.attempt) {
            Ok(sol) => {
                breaker.on_result(true);
                failed_probes = 0;
                queue.succeed(&item, lane_idx, sol);
            }
            Err(AttemptError::Job(e)) => {
                // The worker answered fine; the job is hopeless.
                breaker.on_result(true);
                failed_probes = 0;
                queue.fail(item, lane_idx, e, None, Duration::ZERO);
            }
            Err(AttemptError::Worker(e)) => {
                breaker.on_result(false);
                let backoff =
                    cfg.retry_base.saturating_mul(1u32 << item.attempt.min(16)).min(cfg.retry_cap);
                let next_attempt = if probing {
                    failed_probes += 1;
                    // A failed probe must not burn the job's budget:
                    // the job was collateral in testing the worker.
                    Some(item.attempt)
                } else {
                    (item.attempt + 1 < cfg.max_attempts.max(1)).then(|| item.attempt + 1)
                };
                queue.fail(item, lane_idx, e, next_attempt, backoff);
            }
        }
    }
}

/// A [`BlockBackend`] that ships block subproblems to `serve --worker`
/// nodes over the NDJSON protocol, surviving worker crashes, hangs, and
/// stragglers.
///
/// Jobs flow through a shared work queue: each worker pulls the next
/// eligible job, so healthy workers steal the share a crashed or slow
/// worker would have gated under static chunking. A failed or
/// timed-out attempt is re-enqueued with exponential backoff
/// (preferably picked up by a different worker), and a worker that
/// fails repeatedly is quarantined by a per-worker sliding-window
/// circuit breaker with periodic half-open re-probes.
///
/// Placement is racy by design, but every block solve is a pure
/// function of its job and the frame codec round-trips all floats
/// exactly, so results are placement-independent: the distributed solve
/// stays bitwise identical to the in-process backend no matter which
/// worker solves which block, or how often a job was retried.
pub struct TcpBlockBackend {
    lanes: Vec<Lane>,
    cfg: FleetConfig,
    retried: u64,
    stolen: u64,
}

impl TcpBlockBackend {
    /// Connect lazily to one worker per address (each TCP connection is
    /// opened on first use) with default [`FleetConfig`] tuning.
    pub fn new(addrs: &[SocketAddr]) -> Result<TcpBlockBackend, FleetError> {
        TcpBlockBackend::with_config(addrs, FleetConfig::default())
    }

    /// [`TcpBlockBackend::new`] with explicit fault-tolerance tuning.
    pub fn with_config(
        addrs: &[SocketAddr],
        cfg: FleetConfig,
    ) -> Result<TcpBlockBackend, FleetError> {
        if addrs.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let lanes = addrs
            .iter()
            .map(|&addr| Lane {
                // One attempt per request: cross-worker retry is the
                // queue's job, not the client's.
                client: Client::new(addr, RetryPolicy { max_retries: 0, ..RetryPolicy::default() })
                    .with_read_timeout(cfg.block_deadline),
                breaker: CircuitBreaker::new(cfg.breaker.clone()),
            })
            .collect();
        Ok(TcpBlockBackend { lanes, cfg, retried: 0, stolen: 0 })
    }

    /// Run one round through the fleet; per-job outcomes plus the last
    /// failure message for each unresolved job.
    fn run_round(
        &mut self,
        jobs: &[BlockJob],
    ) -> (Vec<Option<BlockSolution>>, Vec<Option<String>>) {
        let queue = WorkQueue::new(jobs.len());
        let cfg = &self.cfg;
        paradigm_race::thread::scope(|scope| {
            for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
                let queue = &queue;
                let Lane { client, breaker } = lane;
                scope.spawn(move || {
                    run_lane(lane_idx, breaker, queue, cfg, |job_idx, _| {
                        attempt_block(client, &jobs[job_idx])
                    })
                });
            }
        });
        let st = queue.state.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.retried += st.retried;
        self.stolen += st.stolen;
        (st.slots, st.errors)
    }
}

impl BlockBackend for TcpBlockBackend {
    fn solve_blocks(&mut self, jobs: &[BlockJob]) -> Result<Vec<BlockSolution>, String> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let (slots, errors) = self.run_round(jobs);
        let mut solutions = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(sol) => solutions.push(sol),
                None => {
                    let why =
                        errors[i].clone().unwrap_or_else(|| "no worker picked it up".to_string());
                    return Err(format!("block {i}: {why}"));
                }
            }
        }
        Ok(solutions)
    }

    fn solve_blocks_partial(
        &mut self,
        jobs: &[BlockJob],
    ) -> Result<Vec<Option<BlockSolution>>, String> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let (slots, errors) = self.run_round(jobs);
        if slots.iter().all(Option::is_none) {
            // Total collapse: nothing for stale reuse to build on. Let a
            // wrapper (FailoverBackend) downgrade the whole backend.
            let why = errors
                .iter()
                .flatten()
                .next()
                .cloned()
                .unwrap_or_else(|| "no worker answered".to_string());
            return Err(format!("worker fleet collapsed: {why}"));
        }
        Ok(slots)
    }

    fn fault_stats(&self) -> BackendFaultStats {
        BackendFaultStats {
            blocks_retried: self.retried,
            blocks_stolen: self.stolen,
            workers_quarantined: self.lanes.iter().map(|l| l.breaker.opens()).sum(),
            backend_downgrades: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::protocol::handle_line;
    use crate::service::{ServeConfig, Service};
    use paradigm_admm::{build_block_problem, global_sweeps, partition_mdg, PartitionOptions};
    use paradigm_cost::Machine;
    use paradigm_mdg::{fork_join_mdg, Mdg};
    use paradigm_solver::objective::MdgObjective;

    fn sample_jobs(g: &Mdg, machine: &Machine, blocks: usize) -> Vec<BlockJob> {
        let obj = MdgObjective::try_new(g, *machine).expect("objective");
        let part = partition_mdg(g, &PartitionOptions::with_blocks(g, blocks));
        let x = vec![0.5_f64; g.node_count()];
        let sw = global_sweeps(&obj, &x);
        let inner = InnerConfig::default();
        (0..part.members.len())
            .map(|b| {
                let dual = std::collections::BTreeMap::new();
                build_block_problem(g, machine, &part, b, &sw, &x, &dual, 0.7, &inner).0
            })
            .collect()
    }

    #[test]
    fn block_job_frames_roundtrip_exactly() {
        let g = fork_join_mdg(4, 6, 3);
        let machine = Machine::cm5(32);
        for job in sample_jobs(&g, &machine, 3) {
            let frame = block_job_request(&job).render();
            let doc = parse(&frame).expect("frame parses");
            let Json::Obj(members) = &doc else { panic!("not an object") };
            let back = parse_block_job(&doc, members).expect("job decodes");
            // Bitwise equality on every number: this is what lets TCP
            // and in-process backends agree exactly.
            assert_eq!(back.machine, job.machine);
            assert_eq!(back.area_off.to_bits(), job.area_off.to_bits());
            assert_eq!(back.rho.to_bits(), job.rho.to_bits());
            assert_eq!(back.x0.len(), job.x0.len());
            for (a, b) in back.x0.iter().zip(&job.x0) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(back.free, job.free);
            assert_eq!(back.cons, job.cons);
            assert_eq!(back.inner, job.inner);
            assert_eq!(back.graph.node_count(), job.graph.node_count());
            assert_eq!(back.graph.edge_count(), job.graph.edge_count());
        }
    }

    #[test]
    fn worker_solves_what_in_process_solves() {
        let g = fork_join_mdg(4, 6, 3);
        let machine = Machine::cm5(32);
        let svc = Service::start(ServeConfig {
            workers: 1,
            cache_capacity: 4,
            queue_capacity: 4,
            worker: true,
            ..ServeConfig::default()
        });
        for job in sample_jobs(&g, &machine, 3) {
            let mut ws = paradigm_solver::workspace::acquire_batch();
            let local = paradigm_admm::solve_block_job(&job, &mut ws).expect("local solve");
            let (resp, _) = handle_line(&svc, &block_job_request(&job).render());
            let sol = parse_block_solution(&parse(&resp).expect("json")).expect("remote solve");
            assert_eq!(sol.iters, local.iters);
            assert_eq!(sol.phi_model.to_bits(), local.phi_model.to_bits());
            for (a, b) in sol.x.iter().zip(&local.x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        svc.shutdown();
    }

    #[test]
    fn non_worker_service_refuses_block_frames() {
        let g = fork_join_mdg(2, 3, 2);
        let machine = Machine::cm5(8);
        let job = sample_jobs(&g, &machine, 2).remove(0);
        let svc = Service::start(ServeConfig {
            workers: 1,
            cache_capacity: 4,
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        let (resp, _) = handle_line(&svc, &block_job_request(&job).render());
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("not-a-worker"));
        svc.shutdown();
    }

    #[test]
    fn malformed_block_frames_rejected() {
        for bad in [
            r#"{"op":"admm_block"}"#,
            r#"{"op":"admm_block","graph":"mdg x","wat":1}"#,
            r#"{"op":"admm_block","graph":"not an mdg","machine":{"procs":4,"t_ss":1,"t_ps":1,"t_sr":1,"t_pr":1,"t_n":0,"mem_bytes":1024},"area_off":0,"rho":1,"x0":[],"free":[],"cons":[],"inner":{"stages":[8],"iters_per_stage":1,"exact_iters":1,"rel_tol":0.1}}"#,
        ] {
            assert!(crate::protocol::parse_request(bad).is_err(), "{bad}");
        }
    }
}
