//! The distributed-ADMM worker role: wire codecs for block subproblems
//! and the coordinator-side TCP backend.
//!
//! A `paradigm serve --worker` node accepts `admm_block` frames — one
//! self-contained [`BlockJob`] each — solves them with
//! [`paradigm_admm::solve_block_job`], and returns the block iterate.
//! Because a block solve is a pure function of the job value, and the
//! frame codec round-trips every number exactly (`f64` is rendered in
//! shortest round-trip form on both sides), a TCP worker produces
//! *bitwise* the same [`BlockSolution`] as the in-process backend. The
//! consensus coordinator therefore converges identically whether its
//! x-updates run on local threads or on a rack of workers.
//!
//! Frame grammar (one JSON object per line, like the rest of the
//! protocol; unknown fields rejected):
//!
//! ```text
//! admm_block = { "op":"admm_block", "graph":mdg-text,
//!                "machine":{ "procs":int, "t_ss":num, "t_ps":num,
//!                            "t_sr":num, "t_pr":num, "t_n":num,
//!                            "mem_bytes":int },
//!                "area_off":num, "rho":num,
//!                "x0":[num...], "free":[int...],
//!                "cons":[{"sub":int,"target":num}...],
//!                "inner":{ "stages":[num...], "iters_per_stage":int,
//!                          "exact_iters":int, "rel_tol":num } }
//! response   = { "ok":true, "x":[num...], "iters":int, "phi_model":num }
//! ```

use crate::client::{Client, ClientError, RetryPolicy};
use crate::json::Json;
use paradigm_admm::{BlockBackend, BlockJob, BlockSolution, ConsensusTerm, InnerConfig};
use paradigm_cost::{Machine, TransferParams};
use paradigm_mdg::{from_text, to_text};
use std::net::SocketAddr;

/// Encode one block subproblem as an `admm_block` request frame.
pub fn block_job_request(job: &BlockJob) -> Json {
    let machine = Json::Obj(vec![
        ("procs".into(), Json::num(f64::from(job.machine.procs))),
        ("t_ss".into(), Json::num(job.machine.xfer.t_ss)),
        ("t_ps".into(), Json::num(job.machine.xfer.t_ps)),
        ("t_sr".into(), Json::num(job.machine.xfer.t_sr)),
        ("t_pr".into(), Json::num(job.machine.xfer.t_pr)),
        ("t_n".into(), Json::num(job.machine.xfer.t_n)),
        ("mem_bytes".into(), Json::num(job.machine.mem_bytes as f64)),
    ]);
    let cons: Vec<Json> = job
        .cons
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("sub".into(), Json::num(c.sub as f64)),
                ("target".into(), Json::num(c.target)),
            ])
        })
        .collect();
    let inner = Json::Obj(vec![
        ("stages".into(), Json::Arr(job.inner.stages.iter().map(|&s| Json::num(s)).collect())),
        ("iters_per_stage".into(), Json::num(job.inner.iters_per_stage as f64)),
        ("exact_iters".into(), Json::num(job.inner.exact_iters as f64)),
        ("rel_tol".into(), Json::num(job.inner.rel_tol)),
    ]);
    Json::Obj(vec![
        ("op".into(), Json::str("admm_block")),
        ("graph".into(), Json::str(to_text(&job.graph))),
        ("machine".into(), machine),
        ("area_off".into(), Json::num(job.area_off)),
        ("rho".into(), Json::num(job.rho)),
        ("x0".into(), Json::Arr(job.x0.iter().map(|&v| Json::num(v)).collect())),
        ("free".into(), Json::Arr(job.free.iter().map(|&i| Json::num(i as f64)).collect())),
        ("cons".into(), Json::Arr(cons)),
        ("inner".into(), inner),
    ])
}

const ADMM_BLOCK_FIELDS: [&str; 9] =
    ["op", "graph", "machine", "area_off", "rho", "x0", "free", "cons", "inner"];

fn finite(doc: &Json, key: &str) -> Result<f64, String> {
    let v = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("`{key}` must be finite"))
    }
}

fn index(doc: &Json, key: &str) -> Result<usize, String> {
    let v = doc
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
    usize::try_from(v).map_err(|_| format!("`{key}` out of range"))
}

fn num_array(doc: &Json, key: &str) -> Result<Vec<f64>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    arr.iter()
        .map(|v| v.as_f64().filter(|n| n.is_finite()))
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| format!("`{key}` must be an array of finite numbers"))
}

fn index_array(doc: &Json, key: &str, bound: usize) -> Result<Vec<usize>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field `{key}`"))?;
    let out = arr
        .iter()
        .map(|v| v.as_u64().and_then(|n| usize::try_from(n).ok()))
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| format!("`{key}` must be an array of non-negative integers"))?;
    if let Some(&bad) = out.iter().find(|&&i| i >= bound) {
        return Err(format!("`{key}` index {bad} out of range (graph has {bound} nodes)"));
    }
    Ok(out)
}

/// Decode an `admm_block` request frame into a runnable [`BlockJob`].
pub fn parse_block_job(doc: &Json, members: &[(String, Json)]) -> Result<BlockJob, String> {
    for (key, _) in members {
        if !ADMM_BLOCK_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in admm_block request"));
        }
    }
    let text = doc
        .get("graph")
        .and_then(Json::as_str)
        .ok_or("`graph` must be a string (MDG text format)")?;
    let graph = from_text(text).map_err(|e| format!("bad block graph: {e}"))?;
    let n = graph.node_count();

    let m = doc.get("machine").ok_or("missing object field `machine`")?;
    let Json::Obj(m_members) = m else { return Err("`machine` must be an object".into()) };
    for (key, _) in m_members {
        if !["procs", "t_ss", "t_ps", "t_sr", "t_pr", "t_n", "mem_bytes"].contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in machine"));
        }
    }
    let procs = m.get("procs").and_then(Json::as_u64).ok_or("`procs` must be an integer")?;
    let procs =
        u32::try_from(procs).ok().filter(|&p| p >= 1).ok_or("`procs` must be in 1..=2^32-1")?;
    let xfer = TransferParams {
        t_ss: finite(m, "t_ss")?,
        t_ps: finite(m, "t_ps")?,
        t_sr: finite(m, "t_sr")?,
        t_pr: finite(m, "t_pr")?,
        t_n: finite(m, "t_n")?,
    };
    if [xfer.t_ss, xfer.t_ps, xfer.t_sr, xfer.t_pr, xfer.t_n].iter().any(|&v| v < 0.0) {
        return Err("machine transfer parameters must be non-negative".into());
    }
    let mem_bytes = m
        .get("mem_bytes")
        .and_then(Json::as_u64)
        .filter(|&b| b > 0)
        .ok_or("`mem_bytes` must be a positive integer")?;
    let machine = Machine { procs, xfer, mem_bytes };

    let x0 = num_array(doc, "x0")?;
    if x0.len() != n {
        return Err(format!("`x0` has {} entries, graph has {n} nodes", x0.len()));
    }
    let free = index_array(doc, "free", n)?;

    let cons_arr = doc.get("cons").and_then(Json::as_arr).ok_or("missing array field `cons`")?;
    let mut cons = Vec::with_capacity(cons_arr.len());
    for c in cons_arr {
        let Json::Obj(c_members) = c else { return Err("`cons` entries must be objects".into()) };
        for (key, _) in c_members {
            if !["sub", "target"].contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` in cons entry"));
            }
        }
        let sub = index(c, "sub")?;
        if sub >= n {
            return Err(format!("cons index {sub} out of range (graph has {n} nodes)"));
        }
        cons.push(ConsensusTerm { sub, target: finite(c, "target")? });
    }

    let i = doc.get("inner").ok_or("missing object field `inner`")?;
    let Json::Obj(i_members) = i else { return Err("`inner` must be an object".into()) };
    for (key, _) in i_members {
        if !["stages", "iters_per_stage", "exact_iters", "rel_tol"].contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in inner"));
        }
    }
    let inner = InnerConfig {
        stages: num_array(i, "stages")?,
        iters_per_stage: index(i, "iters_per_stage")?,
        exact_iters: index(i, "exact_iters")?,
        rel_tol: finite(i, "rel_tol")?,
    };

    let rho = finite(doc, "rho")?;
    if rho <= 0.0 {
        return Err("`rho` must be positive".into());
    }
    Ok(BlockJob { graph, machine, area_off: finite(doc, "area_off")?, rho, x0, free, cons, inner })
}

/// Encode a finished block solve as the `admm_block` success response.
pub fn block_solution_response(sol: &BlockSolution) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("x".into(), Json::Arr(sol.x.iter().map(|&v| Json::num(v)).collect())),
        ("iters".into(), Json::num(sol.iters as f64)),
        ("phi_model".into(), Json::num(sol.phi_model)),
    ])
}

/// Decode a worker's `admm_block` response (the coordinator side).
pub fn parse_block_solution(doc: &Json) -> Result<BlockSolution, String> {
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = doc.get("error").and_then(Json::as_str).unwrap_or("unlabelled failure");
        return Err(format!("worker refused block: {msg}"));
    }
    Ok(BlockSolution {
        x: num_array(doc, "x")?,
        iters: index(doc, "iters")?,
        phi_model: finite(doc, "phi_model")?,
    })
}

/// A [`BlockBackend`] that ships block subproblems to `serve --worker`
/// nodes over the NDJSON protocol.
///
/// Jobs are split into contiguous chunks, one per worker (the same
/// strategy as the in-process backend), and each worker's share is
/// driven from its own coordinator thread, so a round's wall-clock is
/// the slowest worker's share rather than the sum. The assignment is a
/// pure function of the job order and worker count, which keeps the
/// distributed solve deterministic: re-running with the same worker
/// list replays the identical placement.
pub struct TcpBlockBackend {
    clients: Vec<Client>,
}

impl TcpBlockBackend {
    /// Connect lazily to one worker per address (the TCP connection is
    /// opened on first use). Panics if `addrs` is empty.
    pub fn new(addrs: &[SocketAddr]) -> TcpBlockBackend {
        assert!(!addrs.is_empty(), "need at least one worker address");
        TcpBlockBackend {
            clients: addrs.iter().map(|&a| Client::new(a, RetryPolicy::default())).collect(),
        }
    }

    fn round_trip(client: &mut Client, job: &BlockJob) -> Result<BlockSolution, String> {
        let line = block_job_request(job).render();
        let doc = client.request(&line).map_err(|e: ClientError| e.to_string())?;
        parse_block_solution(&doc)
    }
}

impl BlockBackend for TcpBlockBackend {
    fn solve_blocks(&mut self, jobs: Vec<BlockJob>) -> Result<Vec<BlockSolution>, String> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let k = self.clients.len().min(jobs.len());
        let per = jobs.len().div_ceil(k);
        let mut slots: Vec<Option<Result<BlockSolution, String>>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        std::thread::scope(|scope| {
            let mut shares = jobs.chunks(per);
            let mut outs = slots.chunks_mut(per);
            for client in self.clients.iter_mut().take(k) {
                let (Some(share), Some(out)) = (shares.next(), outs.next()) else { break };
                scope.spawn(move || {
                    for (job, slot) in share.iter().zip(out.iter_mut()) {
                        *slot = Some(Self::round_trip(client, job));
                    }
                });
            }
        });
        let mut solutions = Vec::with_capacity(jobs.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(sol)) => solutions.push(sol),
                Some(Err(e)) => return Err(format!("block {i}: {e}")),
                None => return Err(format!("block {i}: no worker picked it up")),
            }
        }
        Ok(solutions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::protocol::handle_line;
    use crate::service::{ServeConfig, Service};
    use paradigm_admm::{build_block_problem, global_sweeps, partition_mdg, PartitionOptions};
    use paradigm_cost::Machine;
    use paradigm_mdg::{fork_join_mdg, Mdg};
    use paradigm_solver::objective::MdgObjective;

    fn sample_jobs(g: &Mdg, machine: &Machine, blocks: usize) -> Vec<BlockJob> {
        let obj = MdgObjective::try_new(g, *machine).expect("objective");
        let part = partition_mdg(g, &PartitionOptions::with_blocks(g, blocks));
        let x = vec![0.5_f64; g.node_count()];
        let sw = global_sweeps(&obj, &x);
        let inner = InnerConfig::default();
        (0..part.members.len())
            .map(|b| {
                let dual = std::collections::BTreeMap::new();
                build_block_problem(g, machine, &part, b, &sw, &x, &dual, 0.7, &inner).0
            })
            .collect()
    }

    #[test]
    fn block_job_frames_roundtrip_exactly() {
        let g = fork_join_mdg(4, 6, 3);
        let machine = Machine::cm5(32);
        for job in sample_jobs(&g, &machine, 3) {
            let frame = block_job_request(&job).render();
            let doc = parse(&frame).expect("frame parses");
            let Json::Obj(members) = &doc else { panic!("not an object") };
            let back = parse_block_job(&doc, members).expect("job decodes");
            // Bitwise equality on every number: this is what lets TCP
            // and in-process backends agree exactly.
            assert_eq!(back.machine, job.machine);
            assert_eq!(back.area_off.to_bits(), job.area_off.to_bits());
            assert_eq!(back.rho.to_bits(), job.rho.to_bits());
            assert_eq!(back.x0.len(), job.x0.len());
            for (a, b) in back.x0.iter().zip(&job.x0) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(back.free, job.free);
            assert_eq!(back.cons, job.cons);
            assert_eq!(back.inner, job.inner);
            assert_eq!(back.graph.node_count(), job.graph.node_count());
            assert_eq!(back.graph.edge_count(), job.graph.edge_count());
        }
    }

    #[test]
    fn worker_solves_what_in_process_solves() {
        let g = fork_join_mdg(4, 6, 3);
        let machine = Machine::cm5(32);
        let svc = Service::start(ServeConfig {
            workers: 1,
            cache_capacity: 4,
            queue_capacity: 4,
            worker: true,
            ..ServeConfig::default()
        });
        for job in sample_jobs(&g, &machine, 3) {
            let mut ws = paradigm_solver::workspace::acquire();
            let local = paradigm_admm::solve_block_job(&job, &mut ws).expect("local solve");
            let (resp, _) = handle_line(&svc, &block_job_request(&job).render());
            let sol = parse_block_solution(&parse(&resp).expect("json")).expect("remote solve");
            assert_eq!(sol.iters, local.iters);
            assert_eq!(sol.phi_model.to_bits(), local.phi_model.to_bits());
            for (a, b) in sol.x.iter().zip(&local.x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        svc.shutdown();
    }

    #[test]
    fn non_worker_service_refuses_block_frames() {
        let g = fork_join_mdg(2, 3, 2);
        let machine = Machine::cm5(8);
        let job = sample_jobs(&g, &machine, 2).remove(0);
        let svc = Service::start(ServeConfig {
            workers: 1,
            cache_capacity: 4,
            queue_capacity: 4,
            ..ServeConfig::default()
        });
        let (resp, _) = handle_line(&svc, &block_job_request(&job).render());
        let doc = parse(&resp).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("not-a-worker"));
        svc.shutdown();
    }

    #[test]
    fn malformed_block_frames_rejected() {
        for bad in [
            r#"{"op":"admm_block"}"#,
            r#"{"op":"admm_block","graph":"mdg x","wat":1}"#,
            r#"{"op":"admm_block","graph":"not an mdg","machine":{"procs":4,"t_ss":1,"t_ps":1,"t_sr":1,"t_pr":1,"t_n":0,"mem_bytes":1024},"area_off":0,"rho":1,"x0":[],"free":[],"cons":[],"inner":{"stages":[8],"iters_per_stage":1,"exact_iters":1,"rel_tol":0.1}}"#,
        ] {
            assert!(crate::protocol::parse_request(bad).is_err(), "{bad}");
        }
    }
}
