//! Live service metrics: lock-free counters, a queue-depth gauge, and a
//! log₂-bucketed latency histogram.
//!
//! Everything is `AtomicU64` with relaxed ordering — the metrics are
//! monotone tallies, not synchronization points, so torn cross-counter
//! reads (e.g. a hit counted before its request) are acceptable and the
//! hot path pays one uncontended atomic add per event.

use crate::json::Json;
use paradigm_race::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets: bucket `i` counts requests with
/// latency in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs
/// sub-microsecond requests), covering up to ~35 minutes.
pub const HIST_BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn record_us(&self, us: u64) {
        let idx = (63 - u64::leading_zeros(us.max(1)) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Current bucket counts.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Upper-bound estimate of the `q`-quantile (0 < q < 1) from bucket
/// counts: the upper edge of the bucket holding the quantile rank.
pub fn quantile_us(buckets: &[u64; HIST_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Some(1u64 << (i + 1));
        }
    }
    Some(u64::MAX)
}

/// The service's counter set. One instance per [`crate::Service`],
/// shared by workers, submitters, and the stats endpoint.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Solve requests accepted into the queue.
    pub requests: AtomicU64,
    /// Requests answered from a ready cache entry.
    pub cache_hits: AtomicU64,
    /// Requests that started a fresh solve.
    pub cache_misses: AtomicU64,
    /// Requests that piggybacked on another request's in-flight solve.
    pub dedup_waits: AtomicU64,
    /// Pipeline solves actually executed (== distinct cold keys).
    pub solves: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests failed (bad input, solve panic, shutdown).
    pub errors: AtomicU64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_misses: AtomicU64,
    /// Requests rejected by admission control before queueing (the
    /// estimated queue wait already exceeded their deadline, or the
    /// queue stayed full past the configured wait bound).
    pub shed: AtomicU64,
    /// Requests answered from a degradation-ladder fallback rather than
    /// the primary convex solver.
    pub degraded: AtomicU64,
    /// Times the circuit breaker has opened.
    pub breaker_opens: AtomicU64,
    /// Breaker state gauge: 0 closed, 1 open, 2 half-open.
    pub breaker_state: AtomicU64,
    /// EMA of fresh-solve duration in µs (admission control's estimate
    /// of per-job service time).
    pub avg_solve_us: AtomicU64,
    /// Sampled schedule audits that verified clean.
    pub audit_pass: AtomicU64,
    /// Sampled schedule audits that found an inconsistency.
    pub audit_fail: AtomicU64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: AtomicU64,
    /// ADMM block sub-problems solved on this process (worker mode).
    pub blocks_solved: AtomicU64,
    /// ADMM block jobs re-enqueued after a worker fault (coordinator).
    pub blocks_retried: AtomicU64,
    /// ADMM block jobs completed by a different worker than the one
    /// that first failed them (coordinator).
    pub blocks_stolen: AtomicU64,
    /// ADMM consensus rounds that reused a block's previous solution
    /// under bounded staleness (coordinator).
    pub blocks_stale: AtomicU64,
    /// ADMM worker circuit-breaker open transitions (coordinator).
    pub workers_quarantined: AtomicU64,
    /// ADMM block-backend downgrades, e.g. TCP fleet → in-process
    /// (coordinator).
    pub backend_downgrades: AtomicU64,
    /// Jobs currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// End-to-end latency of completed requests (enqueue → response).
    pub latency: LatencyHistogram,
}

/// A point-in-time copy of [`Metrics`], safe to serialize or compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`Metrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`Metrics::dedup_waits`].
    pub dedup_waits: u64,
    /// See [`Metrics::solves`].
    pub solves: u64,
    /// See [`Metrics::completed`].
    pub completed: u64,
    /// See [`Metrics::errors`].
    pub errors: u64,
    /// See [`Metrics::deadline_misses`].
    pub deadline_misses: u64,
    /// See [`Metrics::shed`].
    pub shed: u64,
    /// See [`Metrics::degraded`].
    pub degraded: u64,
    /// See [`Metrics::breaker_opens`].
    pub breaker_opens: u64,
    /// See [`Metrics::breaker_state`].
    pub breaker_state: u64,
    /// See [`Metrics::avg_solve_us`].
    pub avg_solve_us: u64,
    /// See [`Metrics::audit_pass`].
    pub audit_pass: u64,
    /// See [`Metrics::audit_fail`].
    pub audit_fail: u64,
    /// See [`Metrics::evictions`].
    pub evictions: u64,
    /// See [`Metrics::blocks_solved`].
    pub blocks_solved: u64,
    /// See [`Metrics::blocks_retried`].
    pub blocks_retried: u64,
    /// See [`Metrics::blocks_stolen`].
    pub blocks_stolen: u64,
    /// See [`Metrics::blocks_stale`].
    pub blocks_stale: u64,
    /// See [`Metrics::workers_quarantined`].
    pub workers_quarantined: u64,
    /// See [`Metrics::backend_downgrades`].
    pub backend_downgrades: u64,
    /// See [`Metrics::queue_depth`].
    pub queue_depth: u64,
    /// Solver workspace pool checkouts (process-global; see
    /// [`paradigm_solver::workspace::pool_counters`]).
    pub ws_acquires: u64,
    /// Checkouts satisfied by a previously released (warm) workspace.
    pub ws_reuses: u64,
    /// See [`Metrics::latency`].
    pub latency_buckets: [u64; HIST_BUCKETS],
}

impl Metrics {
    /// Take a consistent-enough copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (ws_acquires, ws_reuses) = paradigm_solver::workspace::pool_counters();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            solves: self.solves.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_state: self.breaker_state.load(Ordering::Relaxed),
            avg_solve_us: self.avg_solve_us.load(Ordering::Relaxed),
            audit_pass: self.audit_pass.load(Ordering::Relaxed),
            audit_fail: self.audit_fail.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            blocks_solved: self.blocks_solved.load(Ordering::Relaxed),
            blocks_retried: self.blocks_retried.load(Ordering::Relaxed),
            blocks_stolen: self.blocks_stolen.load(Ordering::Relaxed),
            blocks_stale: self.blocks_stale.load(Ordering::Relaxed),
            workers_quarantined: self.workers_quarantined.load(Ordering::Relaxed),
            backend_downgrades: self.backend_downgrades.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            ws_acquires,
            ws_reuses,
            latency_buckets: self.latency.snapshot(),
        }
    }
}

impl MetricsSnapshot {
    /// Breaker state gauge as its stable label.
    pub fn breaker_state_str(&self) -> &'static str {
        match self.breaker_state {
            1 => "open",
            2 => "half-open",
            _ => "closed",
        }
    }

    /// Upper-bound p50 latency in µs, if any request completed.
    pub fn p50_us(&self) -> Option<u64> {
        quantile_us(&self.latency_buckets, 0.50)
    }

    /// Upper-bound p99 latency in µs, if any request completed.
    pub fn p99_us(&self) -> Option<u64> {
        quantile_us(&self.latency_buckets, 0.99)
    }

    /// Render as a JSON object (the `stats` response payload).
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self.latency_buckets.iter().map(|&c| Json::num(c as f64)).collect();
        Json::Obj(vec![
            ("requests".into(), Json::num(self.requests as f64)),
            ("cache_hits".into(), Json::num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::num(self.cache_misses as f64)),
            ("dedup_waits".into(), Json::num(self.dedup_waits as f64)),
            ("solves".into(), Json::num(self.solves as f64)),
            ("completed".into(), Json::num(self.completed as f64)),
            ("errors".into(), Json::num(self.errors as f64)),
            ("deadline_misses".into(), Json::num(self.deadline_misses as f64)),
            ("shed".into(), Json::num(self.shed as f64)),
            ("degraded".into(), Json::num(self.degraded as f64)),
            ("breaker_opens".into(), Json::num(self.breaker_opens as f64)),
            ("breaker_state".into(), Json::Str(self.breaker_state_str().into())),
            ("avg_solve_us".into(), Json::num(self.avg_solve_us as f64)),
            ("audit_pass".into(), Json::num(self.audit_pass as f64)),
            ("audit_fail".into(), Json::num(self.audit_fail as f64)),
            ("evictions".into(), Json::num(self.evictions as f64)),
            ("blocks_solved".into(), Json::num(self.blocks_solved as f64)),
            ("blocks_retried".into(), Json::num(self.blocks_retried as f64)),
            ("blocks_stolen".into(), Json::num(self.blocks_stolen as f64)),
            ("blocks_stale".into(), Json::num(self.blocks_stale as f64)),
            ("workers_quarantined".into(), Json::num(self.workers_quarantined as f64)),
            ("backend_downgrades".into(), Json::num(self.backend_downgrades as f64)),
            ("queue_depth".into(), Json::num(self.queue_depth as f64)),
            ("ws_acquires".into(), Json::num(self.ws_acquires as f64)),
            ("ws_reuses".into(), Json::num(self.ws_reuses as f64)),
            ("p50_us".into(), self.p50_us().map_or(Json::Null, |v| Json::num(v as f64))),
            ("p99_us".into(), self.p99_us().map_or(Json::Null, |v| Json::num(v as f64))),
            ("latency_log2_us".into(), Json::Arr(hist)),
        ])
    }

    /// Human-readable multi-line rendering (shutdown dump).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serve stats:\n");
        out.push_str(&format!(
            "  requests {}  completed {}  errors {}  deadline-misses {}  shed {}\n",
            self.requests, self.completed, self.errors, self.deadline_misses, self.shed
        ));
        out.push_str(&format!(
            "  cache: hits {}  misses {}  dedup-waits {}  solves {}  evictions {}\n",
            self.cache_hits, self.cache_misses, self.dedup_waits, self.solves, self.evictions
        ));
        out.push_str(&format!(
            "  resilience: degraded {}  breaker {} (opens {})  avg-solve {} us\n",
            self.degraded,
            self.breaker_state_str(),
            self.breaker_opens,
            self.avg_solve_us
        ));
        out.push_str(&format!("  audits: pass {}  fail {}\n", self.audit_pass, self.audit_fail));
        out.push_str(&format!(
            "  admm fleet: blocks-solved {}  retried {}  stolen {}  stale {}  quarantined {}  downgrades {}\n",
            self.blocks_solved,
            self.blocks_retried,
            self.blocks_stolen,
            self.blocks_stale,
            self.workers_quarantined,
            self.backend_downgrades
        ));
        out.push_str(&format!(
            "  workspace pool: acquires {}  reuses {}\n",
            self.ws_acquires, self.ws_reuses
        ));
        out.push_str(&format!(
            "  latency: p50 <= {} us, p99 <= {} us  queue depth {}\n",
            self.p50_us().map_or_else(|| "n/a".into(), |v| v.to_string()),
            self.p99_us().map_or_else(|| "n/a".into(), |v| v.to_string()),
            self.queue_depth
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::default();
        h.record_us(0); // clamped into bucket 0
        h.record_us(1);
        h.record_us(3);
        h.record_us(4);
        h.record_us(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap[0], 2);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[2], 1);
        assert_eq!(snap[19], 1); // 2^19 = 524288 <= 1e6 < 2^20
        assert_eq!(snap.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_estimate_upper_bounds() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_us(10); // bucket 3 -> upper edge 16
        }
        h.record_us(100_000); // bucket 16 -> upper edge 131072
        let snap = h.snapshot();
        assert_eq!(quantile_us(&snap, 0.5), Some(16));
        assert_eq!(quantile_us(&snap, 0.99), Some(16));
        assert_eq!(quantile_us(&snap, 0.999), Some(1 << 17));
        let empty = [0u64; HIST_BUCKETS];
        assert_eq!(quantile_us(&empty, 0.5), None);
    }

    #[test]
    fn snapshot_and_json_agree() {
        let m = Metrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.latency.record_us(7);
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.cache_hits, 2);
        let j = s.to_json();
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(
            j.get("latency_log2_us").and_then(Json::as_arr).map(<[Json]>::len),
            Some(HIST_BUCKETS)
        );
        assert!(s.render().contains("hits 2"));
    }
}
