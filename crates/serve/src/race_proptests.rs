//! Randomized work-queue fault-sequence tests.
//!
//! The model-check suites (`race_suites`) prove the round-ledger
//! invariants exhaustively on tiny scripted rounds; this proptest sweeps
//! a much wider space — any mix of worker faults, job rejections, and
//! successes across up to 4 jobs × 4 attempts × 3 lanes, with and
//! without backoff — on native threads, checking the same ledger
//! invariants at round end: no job silently lost, the retry counter
//! exactly accounts for every re-enqueue, and steals never exceed
//! retries.

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::worker::{run_lane, AttemptError, FleetConfig, WorkQueue};
use paradigm_race::plock;
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Worker fault: re-enqueued while attempt budget remains.
    Fail,
    /// Solved: fills the job's slot.
    Ok,
    /// Rejected by the job itself: terminal failure, no retry.
    Reject,
}

/// Decode one outcome cell from a base-3 table seed: the digit at
/// position `job * 4 + att` picks Fail/Ok/Reject. A single `u64` covers
/// all 16 cells (3^16 < 2^26), keeping the strategy surface to plain
/// integers the vendored proptest supports.
fn cell(seed: u64, job: usize, att: u32) -> Outcome {
    match (seed / 3u64.pow(job as u32 * 4 + att)) % 3 {
        0 => Outcome::Fail,
        1 => Outcome::Ok,
        _ => Outcome::Reject,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]
    #[test]
    fn round_ledger_consistent_under_random_faults(
        jobs in 1usize..=4,
        attempts in 1u32..=4,
        lanes in 1usize..=3,
        backoff_ms in 0u64..=1,
        table in 0u64..43_046_721, // 3^16: one base-3 digit per (job, attempt)
    ) {
        // Outcome is a pure function of (job, attempt) so it is
        // lane-agnostic: whichever lane picks an item up, the round's
        // final ledger is determined by the table alone.
        let cell = |job: usize, att: u32| cell(table, job, att);
        let fleet = FleetConfig {
            block_deadline: Duration::from_secs(5),
            max_attempts: attempts,
            retry_base: Duration::from_millis(backoff_ms),
            retry_cap: Duration::from_millis(backoff_ms),
            // Quiet breaker: at most 16 samples per lane, never trips,
            // so quarantine stays out of this test's state space.
            breaker: BreakerConfig {
                window: 64,
                min_samples: 64,
                failure_threshold: 1.0,
                cooldown: Duration::ZERO,
            },
        };
        let queue: WorkQueue<u32> = WorkQueue::new(jobs);
        std::thread::scope(|s| {
            for lane in 0..lanes {
                let (queue, fleet) = (&queue, &fleet);
                let breaker = CircuitBreaker::new(fleet.breaker.clone());
                s.spawn(move || {
                    run_lane(lane, &breaker, queue, fleet, |job, att| match cell(job, att) {
                        Outcome::Ok => Ok(job as u32),
                        Outcome::Fail => Err(AttemptError::Worker("injected fault".into())),
                        Outcome::Reject => Err(AttemptError::Job("invalid job".into())),
                    })
                });
            }
        });
        let st = plock(&queue.state);
        prop_assert_eq!(st.unresolved, 0, "round must fully resolve");
        prop_assert!(st.ready.is_empty(), "no work may remain queued");
        let mut want_retried = 0u64;
        for job in 0..jobs {
            // The first non-Fail outcome within the attempt budget is
            // terminal; every worker fault before it is one re-enqueue.
            let terminal = (0..attempts).find(|&a| cell(job, a) != Outcome::Fail);
            match terminal {
                Some(a) if cell(job, a) == Outcome::Ok => {
                    prop_assert_eq!(st.slots[job], Some(job as u32), "job {} lost", job);
                    // `errors` keeps the *last* failure message as a
                    // diagnostic, so it is set exactly when the success
                    // was preceded by at least one worker fault.
                    prop_assert_eq!(st.errors[job].is_some(), a > 0);
                    want_retried += u64::from(a);
                }
                Some(a) => {
                    prop_assert_eq!(st.slots[job], None);
                    prop_assert!(st.errors[job].is_some(), "rejected job {} needs an error", job);
                    want_retried += u64::from(a);
                }
                None => {
                    prop_assert_eq!(st.slots[job], None);
                    prop_assert!(st.errors[job].is_some(), "exhausted job {} needs an error", job);
                    want_retried += u64::from(attempts - 1);
                }
            }
        }
        prop_assert_eq!(st.retried, want_retried, "retry ledger must match the fault script");
        prop_assert!(st.stolen <= st.retried, "steals are a subset of retries");
    }
}
