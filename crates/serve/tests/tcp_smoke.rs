//! Integration smoke test of the TCP front end on an ephemeral port:
//! several clients, inline + gallery graphs, stats, and a clean
//! client-initiated shutdown (the same round-trip CI's serve-smoke job
//! performs against the release binary).

use paradigm_serve::{parse_json, Json, ServeConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn request(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    parse_json(response.trim()).expect("well-formed response")
}

#[test]
fn ephemeral_port_round_trip_stats_and_clean_exit() {
    let server = Server::bind(ServerConfig {
        service: ServeConfig {
            workers: 2,
            cache_capacity: 64,
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        port: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run());

    // Client 1: gallery solves across machines and policies.
    let mut c1 = TcpStream::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let r = request(
        &mut c1,
        r#"{"op":"solve","gallery":"block-lu","procs":16,"machine":"mesh","policy":"hlf"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    assert!(r.get("phi").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(r.get("t_psa").and_then(Json::as_f64).unwrap() > 0.0);

    // Client 2 (concurrent connection): inline graph text round-trip.
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let text = paradigm_mdg::to_text(&paradigm_core::gallery_graph("fig1").unwrap());
    let line = Json::Obj(vec![
        ("op".into(), Json::str("solve")),
        ("graph".into(), Json::str(text)),
        ("procs".into(), Json::num(4.0)),
        ("simulate".into(), Json::Bool(true)),
    ])
    .render();
    let r = request(&mut c2, &line);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    assert!((r.get("t_psa").and_then(Json::as_f64).unwrap() - 14.3).abs() < 1e-9);
    assert!(r.get("sim_makespan").and_then(Json::as_f64).unwrap() > 0.0);

    // Same request again from client 1: structural hash must hit even
    // though the graph came over the wire the second time too.
    let r = request(&mut c1, &line);
    assert_eq!(r.get("cached").and_then(Json::as_bool), Some(true), "{r:?}");

    // Stats reflect all three requests.
    let stats = request(&mut c1, r#"{"op":"stats"}"#);
    let payload = stats.get("stats").expect("stats payload");
    assert_eq!(payload.get("requests").and_then(Json::as_u64), Some(3));
    assert_eq!(payload.get("completed").and_then(Json::as_u64), Some(3));
    assert_eq!(payload.get("solves").and_then(Json::as_u64), Some(2));
    assert_eq!(payload.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(payload.get("errors").and_then(Json::as_u64), Some(0));

    // Client-initiated shutdown; the run thread exits cleanly and the
    // final snapshot matches what stats reported.
    let bye = request(&mut c1, r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("shutting_down").and_then(Json::as_bool), Some(true));
    let finals = run.join().expect("server thread");
    assert_eq!(finals.requests, 3);
    assert_eq!(finals.completed, 3);
    assert_eq!(finals.solves, 2);
}
