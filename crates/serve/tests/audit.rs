//! Sampled-audit integration tests: the auditor must catch a corrupted
//! schedule no matter which fallback tier produced the answer, and a
//! service running with `audit_rate = 1` under the chaos harness must
//! report zero `audit_fail` — every response it serves, including
//! degraded-tier ones, must survive independent re-verification.

use paradigm_core::{
    gallery_graph, solve_pipeline, solve_pipeline_degraded, FallbackTier, SolveSpec,
};
use paradigm_cost::Machine;
use paradigm_serve::audit::audit_solve_output;
use paradigm_serve::{FaultPlan, ServeConfig, Service};
use std::sync::Arc;

/// Swap the start times of the first two compute tasks so exactly one
/// precedence edge is violated, leaving durations intact.
fn corrupt_schedule(out: &mut paradigm_core::SolveOutput) {
    let tasks = &mut out.schedule.tasks;
    let picks: Vec<usize> = (0..tasks.len())
        .filter(|&i| tasks[i].finish > tasks[i].start) // skip zero-width START/STOP
        .take(2)
        .collect();
    let [a, b] = picks[..] else { panic!("need two real tasks") };
    let (sa, sb) = (tasks[a].start, tasks[b].start);
    let (da, db) = (tasks[a].finish - tasks[a].start, tasks[b].finish - tasks[b].start);
    tasks[a].start = sb;
    tasks[a].finish = sb + da;
    tasks[b].start = sa;
    tasks[b].finish = sa + db;
}

#[test]
fn corrupted_schedule_is_caught_under_every_tier() {
    let g = gallery_graph("fig1").unwrap();
    let spec = SolveSpec::new(Machine::cm5(4));

    // Primary and EqualSplit come from the real pipeline paths; the
    // Coordinate tier shares the degraded schedule shape, so the tier
    // label is overridden to prove the audit holds on that rung too.
    let primary = solve_pipeline(&g, &spec);
    assert_eq!(primary.degraded, FallbackTier::Primary);
    let equal_split = solve_pipeline_degraded(&g, &spec);
    assert_eq!(equal_split.degraded, FallbackTier::EqualSplit);
    let mut coordinate = equal_split.clone();
    coordinate.degraded = FallbackTier::Coordinate;

    for out in [primary, coordinate, equal_split] {
        let tier = out.degraded;
        let clean = audit_solve_output(&g, &spec, &out);
        assert!(clean.is_clean(), "uncorrupted {tier:?} must pass:\n{}", clean.render());

        let mut bad = out.clone();
        corrupt_schedule(&mut bad);
        let rep = audit_solve_output(&g, &spec, &bad);
        assert!(!rep.is_clean(), "corrupted {tier:?} schedule must be caught");
    }
}

#[test]
fn audit_rate_one_under_chaos_never_fails() {
    let svc = Service::start(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        queue_capacity: 16,
        audit_rate: 1,
        chaos: Some(FaultPlan {
            seed: 0xA0D17,
            worker_panic: 0.5,
            slow_solve: 0.2,
            slow_ms: 2,
            ..FaultPlan::default()
        }),
        ..ServeConfig::default()
    });
    let spec = SolveSpec::new(Machine::cm5(8));
    // Every gallery graph, three rounds each: primary answers, cache
    // hits, and (whenever the chaos plan panics a worker) degraded
    // fallbacks all flow through the same sampled audit.
    for _ in 0..3 {
        for name in paradigm_core::GALLERY_NAMES {
            let g = Arc::new(gallery_graph(name).unwrap());
            let r = svc.submit(g, spec.clone()).expect("terminal answer under chaos");
            assert!(r.output.t_psa > 0.0);
        }
    }
    assert!(svc.first_audit_failure().is_none(), "{:?}", svc.first_audit_failure());
    let stats = svc.shutdown();
    assert_eq!(stats.audit_fail, 0, "no served answer may fail its audit");
    assert!(stats.audit_pass > 0, "audit_rate=1 must actually sample");
    assert_eq!(stats.audit_pass, stats.completed, "every response audited at rate 1");
}

#[test]
fn audit_rate_zero_disables_sampling() {
    let svc = Service::start(ServeConfig {
        workers: 1,
        cache_capacity: 8,
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let g = Arc::new(gallery_graph("fig1").unwrap());
    svc.submit(g, SolveSpec::new(Machine::cm5(4))).unwrap();
    let stats = svc.shutdown();
    assert_eq!(stats.audit_pass + stats.audit_fail, 0);
}
