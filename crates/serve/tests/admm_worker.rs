//! Distributed ADMM over real worker processes: two `serve --worker`
//! style servers on ephemeral localhost ports solve block sub-problems
//! for a consensus coordinator driving them through
//! [`TcpBlockBackend`].
//!
//! The always-run test pins the contract on a mid-size graph: the TCP
//! run must converge below the residual tolerance and agree *bitwise*
//! with the in-process backend (block solves are pure functions of the
//! job, and the NDJSON frames round-trip every float exactly). The
//! `#[ignore]`d tests are the CI `admm-smoke` job (10^4 compute nodes)
//! and the 10^5-node acceptance run; both also push the solution
//! through the full pipeline and the independent schedule auditor.

use std::net::SocketAddr;

use paradigm_admm::{solve_admm, solve_admm_in_process, AdmmConfig};
use paradigm_core::{try_solve_pipeline, SolveSpec};
use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, Mdg, RandomMdgConfig};
use paradigm_serve::audit::audit_solve_output;
use paradigm_serve::{ServeConfig, Server, ServerConfig, TcpBlockBackend};

const SEED: u64 = 1994;

/// Bind one ADMM worker on an ephemeral port; returns its address and
/// the running server thread (shut down via the returned flag).
fn spawn_worker() -> (
    SocketAddr,
    std::thread::JoinHandle<paradigm_serve::MetricsSnapshot>,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
) {
    let server = Server::bind(ServerConfig {
        service: ServeConfig {
            workers: 2,
            cache_capacity: 8,
            queue_capacity: 8,
            worker: true,
            ..ServeConfig::default()
        },
        port: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run());
    (addr, run, flag)
}

/// Solve `g` once over TCP workers and once in-process; assert both
/// converge under `cfg.eps` and agree bitwise, then return the TCP
/// result for further checks.
fn solve_both_ways(g: &Mdg, machine: Machine, cfg: &AdmmConfig) -> paradigm_admm::AdmmResult {
    let (addr_a, run_a, flag_a) = spawn_worker();
    let (addr_b, run_b, flag_b) = spawn_worker();

    let mut backend = TcpBlockBackend::new(&[addr_a, addr_b]).expect("non-empty fleet");
    let tcp = solve_admm(g, machine, cfg, &mut backend).expect("tcp admm solve");
    let local = solve_admm_in_process(g, machine, cfg, 0).expect("in-process admm solve");

    assert!(
        tcp.converged,
        "tcp run must converge (r={:.3e}, s={:.3e})",
        tcp.primal_residual, tcp.dual_residual
    );
    assert!(tcp.primal_residual < cfg.eps && tcp.dual_residual < cfg.eps);
    assert_eq!(tcp.outer_iters, local.outer_iters, "backends must walk the same trajectory");
    assert_eq!(tcp.phi.phi.to_bits(), local.phi.phi.to_bits(), "objective must agree bitwise");
    for (a, b) in tcp.alloc.as_slice().iter().zip(local.alloc.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "allocations must agree bitwise");
    }

    for flag in [flag_a, flag_b] {
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    // Wake the accept loops so the shutdown flag is observed.
    for addr in [addr_a, addr_b] {
        let _ = std::net::TcpStream::connect(addr);
    }
    run_a.join().expect("worker a thread");
    run_b.join().expect("worker b thread");
    tcp
}

/// Full-pipeline ADMM solve plus the independent schedule audit — the
/// "zero audit failures" half of the smoke contract.
fn pipeline_audits_clean(g: &Mdg, machine: Machine) {
    let spec = SolveSpec { admm: true, ..SolveSpec::new(machine) };
    let out = try_solve_pipeline(g, &spec).expect("admm pipeline");
    let stats = out.admm.as_ref().expect("pipeline must route through admm");
    assert!(stats.converged, "pipeline admm solve must converge");
    let rep = audit_solve_output(g, &spec, &out);
    assert!(rep.is_clean(), "audit failures:\n{}", rep.render());
}

#[test]
fn tcp_workers_agree_bitwise_with_in_process_backend() {
    let g = random_layered_mdg(&RandomMdgConfig::sized(200), SEED);
    // Force a multi-block partition at this size so consensus rounds
    // (not just a single-block solve) cross the wire, and accept a
    // looser tolerance: this test's contract is bitwise TCP =
    // in-process agreement on the whole trajectory, not deep
    // convergence (the ignored smoke/acceptance tests cover that), and
    // it must stay debug-profile friendly for the plain test suite.
    let mut cfg = AdmmConfig::default();
    cfg.partition.target_block_nodes = 64;
    cfg.eps = 1e-3;
    solve_both_ways(&g, Machine::cm5(64), &cfg);
}

/// The CI `admm-smoke` job: a 10^4-compute-node seeded graph solved in
/// worker mode over localhost TCP, converging with zero audit failures.
/// Heavy — run explicitly with `--ignored` (release profile advised).
#[test]
#[ignore = "heavy: CI admm-smoke job runs this with --ignored in release"]
fn admm_smoke_ten_thousand_nodes_over_tcp() {
    let g = random_layered_mdg(&RandomMdgConfig::sized(10_000), SEED);
    let machine = Machine::cm5(256);
    solve_both_ways(&g, machine, &AdmmConfig::default());
    pipeline_audits_clean(&g, machine);
}

/// The issue's acceptance run: a 10^5-node seeded random-layered MDG
/// partitioned and solved to primal/dual residual < 1e-4, in-process
/// and via worker TCP. Very heavy — run manually with `--ignored` in
/// release.
#[test]
#[ignore = "very heavy: acceptance run, execute manually with --ignored in release"]
fn acceptance_hundred_thousand_nodes_over_tcp() {
    let g = random_layered_mdg(&RandomMdgConfig::sized(100_000), SEED);
    let res = solve_both_ways(&g, Machine::cm5(1024), &AdmmConfig::default());
    assert!(res.primal_residual < 1e-4 && res.dual_residual < 1e-4);
}
