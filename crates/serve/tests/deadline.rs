//! Deadline semantics, pinned down as executable documentation:
//!
//! * a deadline bounds **queue wait**, not solve time — a request
//!   admitted in time is answered even if its solve then runs long;
//! * a request that expires while queued gets `DeadlineExceeded`, is
//!   counted in `deadline_misses`, and never reaches the solver;
//! * an open circuit breaker short-circuits the *solver*, not the
//!   cache — previously computed primary results keep being served
//!   undegraded while the breaker is open.

use paradigm_core::{gallery_graph, SolveSpec};
use paradigm_cost::Machine;
use paradigm_mdg::Mdg;
use paradigm_serve::{BreakerConfig, FaultPlan, ServeConfig, ServeError, Service};
use std::sync::Arc;
use std::time::Duration;

fn fig1() -> Arc<Mdg> {
    Arc::new(gallery_graph("fig1").expect("gallery"))
}

fn spec(procs: u32) -> SolveSpec {
    SolveSpec::new(Machine::cm5(procs))
}

#[test]
fn zero_deadline_expires_in_queue_and_never_solves() {
    let svc = Service::start(ServeConfig {
        workers: 1,
        cache_capacity: 8,
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let err = svc
        .submit_with_deadline(fig1(), spec(4), Some(Duration::ZERO))
        .expect_err("a zero deadline cannot be met");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
    assert_eq!(err.kind(), "deadline");
    assert!(!err.retryable(), "deadline expiry is terminal, not retryable");
    let stats = svc.shutdown();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.solves, 0, "expired requests must never reach the solver");
}

#[test]
fn deadline_bounds_queue_wait_not_solve_time() {
    // Every solve is slowed well past the deadline; the request is
    // still answered because the deadline only governs time-in-queue.
    let svc = Service::start(ServeConfig {
        workers: 1,
        cache_capacity: 8,
        queue_capacity: 4,
        chaos: Some(FaultPlan { seed: 7, slow_solve: 1.0, slow_ms: 50, ..FaultPlan::default() }),
        ..ServeConfig::default()
    });
    let r = svc
        .submit_with_deadline(fig1(), spec(4), Some(Duration::from_millis(20)))
        .expect("admitted in time; mid-solve overrun must not cancel");
    assert!(r.output.t_psa > 0.0);
    assert!(!r.output.degraded.is_degraded(), "slow is not failed");
    let stats = svc.shutdown();
    assert_eq!(stats.deadline_misses, 0);
    assert_eq!(stats.completed, 1);
}

#[test]
fn open_breaker_serves_cached_primary_results_undegraded() {
    // First solve succeeds (panic_after skips one draw); everything
    // after panics, tripping the breaker on the spot. The cached
    // primary answer must then be served as-is — no degraded label —
    // while fresh keys fall back to the equal-split ladder.
    let svc = Service::start(ServeConfig {
        workers: 1,
        cache_capacity: 16,
        queue_capacity: 4,
        chaos: Some(FaultPlan {
            seed: 11,
            worker_panic: 1.0,
            panic_after: 1,
            ..FaultPlan::default()
        }),
        breaker: BreakerConfig {
            window: 4,
            min_samples: 1,
            failure_threshold: 0.5,
            cooldown: Duration::from_secs(60),
        },
        ..ServeConfig::default()
    });

    let first = svc.submit(fig1(), spec(4)).expect("first solve is clean");
    assert!(!first.output.degraded.is_degraded());

    // A distinct key: its primary solve panics and trips the breaker,
    // but the ladder still produces a terminal degraded answer.
    let second = svc.submit(fig1(), spec(8)).expect("ladder answers despite panic");
    assert!(second.output.degraded.is_degraded());

    // Breaker now open (cooldown 60 s): the first key must still come
    // back from cache at full fidelity.
    let again = svc.submit(fig1(), spec(4)).expect("cache unaffected by open breaker");
    assert!(!again.output.degraded.is_degraded(), "cached primary, not degraded");

    let stats = svc.shutdown();
    assert!(stats.breaker_opens >= 1, "{stats:?}");
    assert!(stats.cache_hits >= 1, "open-breaker path must have hit the cache");
    assert_eq!(stats.errors, 0, "every request got a terminal answer");
}
