//! Concurrency stress test: N client threads firing M mixed requests at
//! one service. Verifies the headline accounting invariants:
//!
//! * no lost responses — every submission gets exactly one answer;
//! * single-flight — pipeline solves == distinct cache keys;
//! * metrics add up — hits + misses + dedup-waits == completed, and
//!   requests == completed + deadline expiries;
//! * clean shutdown under load.

use paradigm_core::{gallery_graph, solve_fingerprint, SolveSpec};
use paradigm_cost::Machine;
use paradigm_mdg::Mdg;
use paradigm_sched::SchedPolicy;
use paradigm_serve::{ServeConfig, Service};
use std::collections::HashSet;
use std::sync::Arc;

/// The mixed workload: 4 graphs × 2 proc counts × 2 policies = 16
/// distinct keys, interleaved differently per client.
fn workload() -> Vec<(Arc<Mdg>, SolveSpec)> {
    let mut set = Vec::new();
    for name in ["fig1", "cmm", "fft2d", "stencil"] {
        let g = Arc::new(gallery_graph(name).expect("gallery"));
        for procs in [8u32, 32] {
            for policy in [SchedPolicy::LowestEst, SchedPolicy::HighestLevelFirst] {
                let spec = SolveSpec { policy, ..SolveSpec::new(Machine::cm5(procs)) };
                set.push((Arc::clone(&g), spec));
            }
        }
    }
    set
}

#[test]
fn n_threads_m_mixed_requests_account_exactly() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;

    let set = workload();
    let distinct: HashSet<u128> = set.iter().map(|(g, s)| solve_fingerprint(g, s)).collect();
    assert_eq!(distinct.len(), set.len(), "workload keys are all distinct");

    let svc = Arc::new(Service::start(ServeConfig {
        workers: 4,
        cache_capacity: 256,
        queue_capacity: 8, // small on purpose: exercises backpressure
        ..ServeConfig::default()
    }));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let set = workload();
            std::thread::spawn(move || {
                let mut answers = 0usize;
                for r in 0..ROUNDS {
                    for i in 0..set.len() {
                        // Different interleaving per client so the same
                        // key is in flight from several threads at once.
                        let (g, spec) = &set[(i * (c + 1) + r) % set.len()];
                        let resp = svc.submit(Arc::clone(g), spec.clone()).expect("solve");
                        assert!(resp.output.t_psa > 0.0);
                        assert!(resp.output.phi > 0.0);
                        answers += 1;
                    }
                }
                answers
            })
        })
        .collect();

    let mut total_answers = 0usize;
    for h in handles {
        total_answers += h.join().expect("client panicked");
    }
    let expected = CLIENTS * ROUNDS * set.len();
    assert_eq!(total_answers, expected, "no lost responses");

    let stats = Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("clients still hold the service"))
        .shutdown();

    assert_eq!(stats.requests as usize, expected);
    assert_eq!(stats.completed as usize, expected);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.deadline_misses, 0);
    // Single-flight: each distinct key was solved exactly once (the
    // cache is large enough that nothing was evicted and re-solved).
    assert_eq!(stats.solves as usize, distinct.len(), "solve count == distinct keys");
    assert_eq!(stats.evictions, 0);
    // Every completed request was answered one of the three ways.
    assert_eq!(
        stats.cache_hits + stats.cache_misses + stats.dedup_waits,
        stats.completed,
        "hit/miss/dedup partition completed requests"
    );
    assert_eq!(stats.cache_misses as usize, distinct.len());
    // All the rest were served without re-solving.
    assert_eq!((stats.cache_hits + stats.dedup_waits) as usize, expected - distinct.len());
    assert_eq!(stats.queue_depth, 0, "queue fully drained");
}

#[test]
fn shutdown_under_load_answers_every_accepted_request() {
    let set = workload();
    let svc = Arc::new(Service::start(ServeConfig {
        workers: 2,
        cache_capacity: 256,
        queue_capacity: 4,
        ..ServeConfig::default()
    }));

    // Submitters race with shutdown: each request either completes or is
    // refused with ShuttingDown — never lost, never panicking.
    let handles: Vec<_> = (0..6)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let set = set.clone();
            std::thread::spawn(move || {
                let (mut ok, mut refused) = (0usize, 0usize);
                for i in 0..set.len() {
                    let (g, spec) = &set[(i + c) % set.len()];
                    match svc.submit(Arc::clone(g), spec.clone()) {
                        Ok(_) => ok += 1,
                        Err(paradigm_serve::ServeError::ShuttingDown) => refused += 1,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                (ok, refused)
            })
        })
        .collect();

    // Let some work land, then start the drain while clients are still
    // submitting: the remaining submissions must be refused cleanly.
    std::thread::sleep(std::time::Duration::from_millis(50));
    svc.drain();

    let (mut total_ok, mut total_refused) = (0usize, 0usize);
    for h in handles {
        let (ok, refused) = h.join().expect("client panicked");
        total_ok += ok;
        total_refused += refused;
    }
    assert!(total_ok > 0, "some requests completed before drain");

    let stats = Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("clients still hold the service"))
        .shutdown();
    // Accepted and refused partition the submissions; every accepted
    // request was answered.
    assert_eq!(stats.completed as usize + stats.errors as usize, total_ok);
    assert_eq!(stats.errors, 0);
    assert_eq!(total_ok + total_refused, 6 * workload().len());
}
