//! Chaos integration test: a TCP server under a seeded fault plan
//! (worker panics, slow solves, queue stalls, dropped connections,
//! truncated frames) driven by retrying clients. The invariant under
//! test is the resilience contract from DESIGN.md §9: **every accepted
//! request gets a terminal answer** — a primary result, a cached one,
//! or a degraded equal-split schedule — and the process never aborts.
//!
//! The fault plan is seeded, so CI runs the same fault sequence every
//! time (this is the `chaos-smoke` CI job).

use paradigm_serve::{
    BreakerConfig, Client, FaultPlan, Json, RetryPolicy, ServeConfig, Server, ServerConfig,
};
use std::sync::atomic::Ordering;
use std::time::Duration;

#[test]
fn every_accepted_request_gets_a_terminal_answer_under_faults() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 25;

    let server = Server::bind(ServerConfig {
        service: ServeConfig {
            workers: 2,
            cache_capacity: 256,
            queue_capacity: 16,
            chaos: Some(FaultPlan {
                seed: 0xC4A05,
                worker_panic: 0.6,
                slow_solve: 0.3,
                slow_ms: 3,
                queue_stall: 0.2,
                stall_ms: 2,
                conn_drop: 0.15,
                truncate: 0.15,
                ..FaultPlan::default()
            }),
            // A tight breaker so the test also exercises the open →
            // half-open → probe cycle, not just the fallback ladder.
            breaker: BreakerConfig {
                window: 8,
                min_samples: 4,
                failure_threshold: 0.5,
                cooldown: Duration::from_millis(25),
            },
            ..ServeConfig::default()
        },
        port: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run());

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::new(
                    addr,
                    RetryPolicy {
                        max_retries: 50,
                        base: Duration::from_micros(500),
                        cap: Duration::from_millis(10),
                        seed: c as u64 + 1,
                    },
                );
                let mut answered = 0usize;
                let mut degraded = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    // Distinct keys (procs varies) so requests actually
                    // reach the solver instead of all hitting the cache.
                    let procs = 2 + ((c * REQUESTS_PER_CLIENT + i) % 62);
                    let line = format!(r#"{{"op":"solve","gallery":"fig1","procs":{procs}}}"#);
                    let doc = client
                        .request(&line)
                        .unwrap_or_else(|e| panic!("request {i} of client {c} died: {e}"));
                    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc:?}");
                    assert!(
                        doc.get("t_psa").and_then(Json::as_f64).unwrap() > 0.0,
                        "terminal answers must carry a schedule"
                    );
                    answered += 1;
                    if doc.get("degraded").is_some() {
                        degraded += 1;
                    }
                }
                (answered, degraded, client.retries(), client.reconnects())
            })
        })
        .collect();

    let mut answered = 0usize;
    let mut degraded = 0usize;
    let mut retries = 0u64;
    for h in handles {
        let (a, d, r, _) = h.join().expect("client thread must not die");
        answered += a;
        degraded += d;
        retries += r;
    }
    assert_eq!(answered, CLIENTS * REQUESTS_PER_CLIENT, "every request must get a terminal answer");
    assert!(degraded >= 1, "a 60% panic rate must force degraded answers");
    assert!(retries >= 1, "drop/truncate faults must have forced retries");

    flag.store(true, Ordering::Relaxed);
    let stats = run.join().expect("server must shut down cleanly, not abort");

    assert_eq!(stats.errors, 0, "faults must degrade, never error: {stats:?}");
    assert!(stats.degraded as usize >= degraded, "{stats:?}");
    assert!(stats.breaker_opens >= 1, "sustained panics must trip the breaker: {stats:?}");
    assert!(stats.completed >= (CLIENTS * REQUESTS_PER_CLIENT) as u64, "{stats:?}");
}
