//! Cluster chaos drills for the fault-tolerant distributed ADMM tier.
//!
//! Every test spins up real `serve --worker` servers on ephemeral
//! localhost ports and tortures them with the seeded worker-level fault
//! sites ([`FaultPlan`]'s `block-crash` / `block-slow` / `block-drop` /
//! `block-truncate`), pinning the coordinator's recovery machinery:
//!
//! * a worker that crashes on every block solve is retried around,
//!   stolen from, and quarantined — and the strict-mode result stays
//!   **bitwise identical** to the in-process backend (block solves are
//!   pure functions of the job, so placement and retries are invisible);
//! * torn and dropped `admm_block` response frames are just another
//!   worker fault: retried elsewhere, same bitwise contract;
//! * total fleet collapse downgrades the pipeline's backend to the
//!   in-process solver and records the downgrade in [`AdmmStats`];
//! * a worker asked to shut down mid-solve finishes the block on its
//!   bench and answers before exiting, so graceful restarts never lose
//!   in-flight work.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use paradigm_admm::{
    solve_admm, solve_admm_in_process, AdmmConfig, FailoverBackend, InProcessBackend,
};
use paradigm_core::{try_solve_pipeline, try_solve_pipeline_with_backend, SolveSpec};
use paradigm_cost::Machine;
use paradigm_mdg::{random_layered_mdg, Mdg, RandomMdgConfig};
use paradigm_serve::{
    FaultPlan, FleetConfig, MetricsSnapshot, ServeConfig, Server, ServerConfig, TcpBlockBackend,
};

const SEED: u64 = 1994;

struct WorkerHandle {
    addr: SocketAddr,
    run: std::thread::JoinHandle<MetricsSnapshot>,
    flag: Arc<AtomicBool>,
}

impl WorkerHandle {
    /// Raise the shutdown flag and join the accept loop, returning the
    /// worker's final metrics.
    fn stop(self) -> MetricsSnapshot {
        self.flag.store(true, Ordering::SeqCst);
        self.run.join().expect("worker accept loop")
    }
}

/// Bind one ADMM worker on an ephemeral port, optionally armed with a
/// seeded fault plan.
fn spawn_worker(chaos: Option<FaultPlan>) -> WorkerHandle {
    let server = Server::bind(ServerConfig {
        service: ServeConfig {
            workers: 2,
            cache_capacity: 8,
            queue_capacity: 8,
            worker: true,
            chaos,
            ..ServeConfig::default()
        },
        port: 0,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let run = std::thread::spawn(move || server.run());
    WorkerHandle { addr, run, flag }
}

/// The fixture every drill solves: big enough to force a multi-block
/// partition (so consensus rounds actually cross the wire) while
/// staying debug-profile friendly.
fn fixture() -> (Mdg, Machine, AdmmConfig) {
    let g = random_layered_mdg(&RandomMdgConfig::sized(200), SEED);
    let mut cfg = AdmmConfig::default();
    cfg.partition.target_block_nodes = 64;
    cfg.eps = 1e-3;
    (g, Machine::cm5(64), cfg)
}

/// An address that refuses connections: bind an ephemeral listener and
/// drop it, leaving the port closed.
fn dead_addr() -> SocketAddr {
    let l = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind probe port");
    l.local_addr().unwrap()
}

/// A three-worker fleet loses worker 0 to an unconditional
/// crash-on-block-solve fault. The round queue retries its jobs on the
/// healthy workers (steal), the sliding-window breaker quarantines it,
/// and — because block solves are pure — the result still agrees
/// bitwise with the in-process backend.
#[test]
fn crashing_worker_is_retried_stolen_from_and_quarantined() {
    let (g, machine, cfg) = fixture();
    let plan = FaultPlan::parse("seed=7,block-crash=1.0").expect("valid plan");
    let chaotic = spawn_worker(Some(plan));
    let healthy_a = spawn_worker(None);
    let healthy_b = spawn_worker(None);

    let mut backend = TcpBlockBackend::new(&[chaotic.addr, healthy_a.addr, healthy_b.addr])
        .expect("non-empty fleet");
    let tcp = solve_admm(&g, machine, &cfg, &mut backend).expect("fleet survives one bad worker");
    let local = solve_admm_in_process(&g, machine, &cfg, 0).expect("in-process solve");

    assert!(tcp.converged, "chaos run must still converge");
    assert_eq!(tcp.phi.phi.to_bits(), local.phi.phi.to_bits(), "objective must agree bitwise");
    for (a, b) in tcp.alloc.as_slice().iter().zip(local.alloc.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "allocations must agree bitwise");
    }
    assert!(tcp.blocks_retried >= 1, "crashed attempts must be retried");
    assert!(tcp.blocks_stolen >= 1, "healthy workers must steal the failed jobs");
    assert!(tcp.workers_quarantined >= 1, "the crashing worker must trip its breaker");
    assert_eq!(tcp.backend_downgrades, 0, "two healthy workers keep the fleet up");
    assert_eq!(tcp.blocks_stale, 0, "strict mode never serves stale solutions");

    let solved: u64 = [healthy_a.stop(), healthy_b.stop()].iter().map(|s| s.blocks_solved).sum();
    assert!(solved > 0, "healthy workers carried the round");
    chaotic.stop();
}

/// Dropped and truncated `admm_block` response frames are worker
/// faults like any other: the affected jobs are re-enqueued and the
/// strict-mode bitwise contract holds.
#[test]
fn torn_block_frames_are_retried_elsewhere() {
    let (g, machine, cfg) = fixture();
    let plan = FaultPlan::parse("seed=11,block-drop=0.7,block-truncate=0.3").expect("valid plan");
    let torn = spawn_worker(Some(plan));
    let healthy = spawn_worker(None);

    let mut backend = TcpBlockBackend::new(&[torn.addr, healthy.addr]).expect("non-empty fleet");
    let tcp = solve_admm(&g, machine, &cfg, &mut backend).expect("fleet survives torn frames");
    let local = solve_admm_in_process(&g, machine, &cfg, 0).expect("in-process solve");

    assert!(tcp.converged);
    assert_eq!(tcp.phi.phi.to_bits(), local.phi.phi.to_bits(), "objective must agree bitwise");
    assert!(tcp.blocks_retried >= 1, "torn frames must burn retries");

    torn.stop();
    healthy.stop();
}

/// When every worker is unreachable the TCP backend collapses, the
/// pipeline's failover demotes to the in-process backend, and the
/// downgrade is recorded in the solve's [`AdmmStats`] — output
/// identical to a purely local pipeline run.
#[test]
fn fleet_collapse_downgrades_the_pipeline_to_in_process() {
    let g = random_layered_mdg(&RandomMdgConfig::sized(200), SEED);
    let machine = Machine::cm5(64);
    let spec = SolveSpec { admm: true, ..SolveSpec::new(machine) };

    let tcp = TcpBlockBackend::with_config(
        &[dead_addr(), dead_addr()],
        FleetConfig {
            max_attempts: 2,
            retry_base: Duration::from_millis(1),
            retry_cap: Duration::from_millis(5),
            ..FleetConfig::default()
        },
    )
    .expect("non-empty fleet");
    let mut backend = FailoverBackend::new(tcp, InProcessBackend::default());

    let out = try_solve_pipeline_with_backend(&g, &spec, &AdmmConfig::default(), &mut backend)
        .expect("failover keeps the pipeline alive");
    let local = try_solve_pipeline(&g, &spec).expect("local pipeline");

    assert_eq!(out.phi.to_bits(), local.phi.to_bits(), "downgraded run must match local");
    let stats = out.admm.expect("admm stats recorded");
    assert_eq!(stats.backend_downgrades, 1, "exactly one TCP → in-process downgrade");
    assert!(stats.blocks_retried >= 1, "the dead fleet burned retries before collapsing");
    assert_eq!(local.admm.expect("local admm stats").backend_downgrades, 0);
}

/// Bounded-staleness mode under fleet-wide flakiness: every worker
/// crashes a fraction of its block solves, so some jobs exhaust their
/// attempts and their round slots are served from the previous
/// solution. The stale budget invariant must hold and the final
/// objective must stay within the gallery tolerance of the strict
/// in-process solve.
#[test]
fn stale_rounds_stay_within_budget_under_fleet_chaos() {
    let (g, machine, mut cfg) = fixture();
    cfg.max_stale = 2;
    let workers: Vec<WorkerHandle> = (0..3)
        .map(|i| {
            let plan =
                FaultPlan::parse(&format!("seed={},block-crash=0.3", 13 + i)).expect("valid plan");
            spawn_worker(Some(plan))
        })
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();

    let mut backend = TcpBlockBackend::with_config(
        &addrs,
        FleetConfig {
            retry_base: Duration::from_millis(1),
            retry_cap: Duration::from_millis(10),
            ..FleetConfig::default()
        },
    )
    .expect("non-empty fleet");
    let relaxed = solve_admm(&g, machine, &cfg, &mut backend).expect("stale mode absorbs crashes");
    let strict = solve_admm_in_process(&g, machine, &AdmmConfig { max_stale: 0, ..cfg.clone() }, 0)
        .expect("in-process solve");

    assert!(
        relaxed.max_block_stale_rounds <= cfg.max_stale,
        "stale streaks must respect the budget: {} > {}",
        relaxed.max_block_stale_rounds,
        cfg.max_stale
    );
    assert!(relaxed.converged, "relaxed run must still converge");
    let ratio = relaxed.phi.phi / strict.phi.phi;
    assert!(
        ratio <= 1.01 + 1e-9,
        "stale-tolerant objective within 1% of strict, got ratio {ratio}"
    );

    for w in workers {
        w.stop();
    }
}

/// Graceful worker shutdown mid-solve, combined with the per-job
/// deadline: the doomed worker straggles every block 5 s, blowing the
/// coordinator's 2 s deadline, so its jobs are re-enqueued for the
/// survivor while the worker itself — flag raised mid-solve — still
/// finishes the block on its bench before exiting, and its final
/// metrics report what it solved. The deadline leaves a wide margin
/// over a healthy debug-profile block solve of this fixture, so only
/// the straggler ever trips it.
#[test]
fn worker_shutdown_mid_solve_finishes_the_inflight_block() {
    let (g, machine, cfg) = fixture();
    // Every block on the doomed worker straggles well past the
    // deadline, guaranteeing it is mid-solve when the flag lands.
    let plan = FaultPlan::parse("seed=3,block-slow=1.0:5000").expect("valid plan");
    let doomed = spawn_worker(Some(plan));
    let survivor = spawn_worker(None);
    let doomed_flag = Arc::clone(&doomed.flag);

    let addrs = [doomed.addr, survivor.addr];
    let (solve_g, solve_cfg) = (g.clone(), cfg.clone());
    let solve = std::thread::spawn(move || {
        let mut backend = TcpBlockBackend::with_config(
            &addrs,
            FleetConfig { block_deadline: Duration::from_secs(2), ..FleetConfig::default() },
        )
        .expect("non-empty fleet");
        solve_admm(&solve_g, machine, &solve_cfg, &mut backend)
            .expect("fleet survives the shutdown")
    });
    // Land the shutdown while the doomed worker is inside its first
    // 5 s block solve (the coordinator abandons that attempt at 2 s,
    // so the solve itself never waits on the straggler).
    std::thread::sleep(Duration::from_millis(150));
    doomed_flag.store(true, Ordering::SeqCst);

    let tcp = solve.join().expect("solve thread");
    let local = solve_admm_in_process(&g, machine, &cfg, 0).expect("in-process solve");
    assert!(tcp.converged, "solve completes despite losing a worker");
    assert_eq!(tcp.phi.phi.to_bits(), local.phi.phi.to_bits(), "objective must agree bitwise");
    assert!(tcp.blocks_retried >= 1, "deadline-blown attempts must be retried");

    let doomed_stats = doomed.stop();
    assert!(
        doomed_stats.blocks_solved >= 1,
        "the in-flight block was finished and answered before exit"
    );
    survivor.stop();
}
