//! Invariant checking for finished MDGs.
//!
//! [`MdgBuilder::finish`](crate::MdgBuilder::finish) establishes the
//! invariants; this module re-verifies them on demand. The checks are used
//! by the property-based tests and by downstream crates that receive MDGs
//! from untrusted builders (e.g. random workload generators).

use crate::graph::{Mdg, NodeId};
use crate::node::NodeKind;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MDG invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

/// Check every structural invariant of a finished MDG. Returns the first
/// violation found, or `Ok(())`.
pub fn check_invariants(g: &Mdg) -> Result<(), InvariantViolation> {
    let n = g.node_count();
    if n < 2 {
        return Err(InvariantViolation("graph must contain START and STOP".into()));
    }
    if g.node(g.start()).kind != NodeKind::Start {
        return Err(InvariantViolation("node 0 is not START".into()));
    }
    if g.node(g.stop()).kind != NodeKind::Stop {
        return Err(InvariantViolation(format!("node {} is not STOP", n - 1)));
    }
    for (id, node) in g.nodes() {
        if node.is_structural() && node.cost.tau != 0.0 {
            return Err(InvariantViolation(format!("structural node {id} has non-zero cost")));
        }
        if id != g.start() && id != g.stop() && node.kind != NodeKind::Compute {
            return Err(InvariantViolation(format!("interior node {id} is not Compute")));
        }
    }
    // Topological order sanity.
    let order = g.topo_order();
    if order.len() != n {
        return Err(InvariantViolation("topological order length mismatch".into()));
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if pos[v.0] != usize::MAX {
            return Err(InvariantViolation(format!("node {v} appears twice in topo order")));
        }
        pos[v.0] = i;
    }
    for (_, e) in g.edges() {
        if e.src == e.dst {
            return Err(InvariantViolation(format!("self loop on {}", e.src)));
        }
        if pos[e.src] >= pos[e.dst] {
            return Err(InvariantViolation(format!(
                "edge {} -> {} contradicts topological order",
                e.src, e.dst
            )));
        }
    }
    // Every compute node reachable from START and reaching STOP.
    for (id, node) in g.nodes() {
        if node.kind == NodeKind::Compute {
            if !g.reaches(g.start(), id) {
                return Err(InvariantViolation(format!("{id} unreachable from START")));
            }
            if !g.reaches(id, g.stop()) {
                return Err(InvariantViolation(format!("{id} does not reach STOP")));
            }
        }
    }
    // START precedes everything, STOP succeeds everything (transitively) —
    // the FORK/JOIN property from the paper.
    if !g.in_edges(g.start()).is_empty() {
        return Err(InvariantViolation("START has predecessors".into()));
    }
    if !g.out_edges(g.stop()).is_empty() {
        return Err(InvariantViolation("STOP has successors".into()));
    }
    Ok(())
}

/// Convenience: check and panic with the violation message (for tests).
pub fn assert_invariants(g: &Mdg) {
    if let Err(v) = check_invariants(g) {
        panic!("{v}");
    }
}

/// True if node `id` lies on *some* START→STOP path that realizes the
/// critical path under the given weights (within `tol`). Useful when
/// explaining schedules.
pub fn on_critical_path<NW, EW>(
    g: &Mdg,
    id: NodeId,
    mut node_w: NW,
    mut edge_w: EW,
    tol: f64,
) -> bool
where
    NW: FnMut(NodeId) -> f64,
    EW: FnMut(crate::graph::EdgeId) -> f64,
{
    // Forward pass: earliest finish.
    let finish = g.finish_times_with(&mut node_w, &mut edge_w);
    let total = finish[g.stop().0];
    // Backward pass: latest start that still meets `total`.
    let n = g.node_count();
    let mut latest_finish = vec![f64::INFINITY; n];
    latest_finish[g.stop().0] = total;
    for &v in g.topo_order().iter().rev() {
        let lf = latest_finish[v.0];
        let w = node_w(v);
        let latest_start = lf - w;
        for &e in g.in_edges(v) {
            let m = g.edge(e).src;
            let cand = latest_start - edge_w(e);
            if cand < latest_finish[m] {
                latest_finish[m] = cand;
            }
        }
    }
    // Node is critical iff earliest finish == latest finish.
    (finish[id.0] - latest_finish[id.0]).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MdgBuilder;
    use crate::node::AmdahlParams;

    fn chain3() -> Mdg {
        let mut b = MdgBuilder::new("chain3");
        let a = b.compute("a", AmdahlParams::new(0.0, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.0, 2.0));
        let d = b.compute("d", AmdahlParams::new(0.0, 3.0));
        b.edge(a, c, vec![]);
        b.edge(c, d, vec![]);
        b.finish().unwrap()
    }

    #[test]
    fn built_graphs_pass_invariants() {
        assert_invariants(&chain3());
    }

    #[test]
    fn all_chain_nodes_are_critical() {
        let g = chain3();
        for (id, n) in g.nodes() {
            if !n.is_structural() {
                assert!(on_critical_path(&g, id, |v| g.node(v).cost.tau, |_| 0.0, 1e-9));
            }
        }
    }

    #[test]
    fn non_critical_branch_detected() {
        // a -> b(10) -> d ; a -> c(1) -> d : c is slack.
        let mut bld = MdgBuilder::new("branch");
        let a = bld.compute("a", AmdahlParams::new(0.0, 1.0));
        let b = bld.compute("b", AmdahlParams::new(0.0, 10.0));
        let c = bld.compute("c", AmdahlParams::new(0.0, 1.0));
        let d = bld.compute("d", AmdahlParams::new(0.0, 1.0));
        bld.edge(a, b, vec![]);
        bld.edge(a, c, vec![]);
        bld.edge(b, d, vec![]);
        bld.edge(c, d, vec![]);
        let g = bld.finish().unwrap();
        let nw = |v: NodeId| g.node(v).cost.tau;
        // builder a=0 -> mdg 1, b -> 2, c -> 3, d -> 4
        assert!(on_critical_path(&g, NodeId(2), nw, |_| 0.0, 1e-9));
        assert!(!on_critical_path(&g, NodeId(3), nw, |_| 0.0, 1e-9));
    }
}
