//! Graph transformations on MDGs.
//!
//! The paper contrasts its *top-down* allocation (start from heavyweight
//! nodes, split the machine) with the *bottom-up* school (Sarkar;
//! Gerasoulis & Yang) that coalesces lightweight nodes into larger ones.
//! [`fuse_serial_chains`] implements the canonical bottom-up move —
//! merging a node with its only successor when that successor has no
//! other predecessor — which removes internal transfer overhead at the
//! price of lost intra-chain flexibility. The ablation benches use it to
//! quantify that trade on random workloads.
//!
//! [`transitive_reduction`] removes redundant precedence edges (keeping
//! every data-carrying edge: deleting those would delete real
//! communication).

use crate::graph::{Mdg, MdgBuilder, NodeId};
use crate::node::{AmdahlParams, NodeKind};

/// Fuse maximal serial chains: whenever `u -> v` is the *only* out-edge
/// of `u` and the *only* in-edge of `v` (both compute nodes), merge the
/// two into one node with
///
/// * `tau = tau_u + tau_v` (work adds),
/// * `alpha = (alpha_u tau_u + alpha_v tau_v) / (tau_u + tau_v)`
///   (work-weighted serial fraction, exact for Amdahl costs executed
///   back to back on the same group),
/// * the internal transfer dropped (the data never leaves the group).
///
/// Kernel metadata degenerates to synthetic (a fused node is no longer a
/// single loop), so fused graphs are for scheduling studies, not
/// simulator value-checks. Returns the fused graph and the number of
/// merges performed.
pub fn fuse_serial_chains(g: &Mdg) -> (Mdg, usize) {
    let n = g.node_count();
    // Union of chains: next[u] = v when (u, v) is fusible.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut has_fused_pred = vec![false; n];
    for (id, node) in g.nodes() {
        if node.kind != NodeKind::Compute {
            continue;
        }
        let outs = g.out_edges(id);
        if outs.len() != 1 {
            continue;
        }
        let e = g.edge(outs[0]);
        let v = NodeId(e.dst);
        if g.node(v).kind != NodeKind::Compute {
            continue;
        }
        if g.in_edges(v).len() != 1 {
            continue;
        }
        next[id.0] = Some(v.0);
        has_fused_pred[v.0] = true;
    }
    // Chain heads: fusible nodes without a fused predecessor.
    let mut chain_of = vec![usize::MAX; n]; // representative head per node
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for (id, node) in g.nodes() {
        if node.kind != NodeKind::Compute || has_fused_pred[id.0] {
            continue;
        }
        let mut chain = vec![id.0];
        let mut cur = id.0;
        while let Some(v) = next[cur] {
            chain.push(v);
            cur = v;
        }
        for &m in &chain {
            chain_of[m] = chains.len();
        }
        chains.push(chain);
    }

    let mut merges = 0usize;
    let mut b = MdgBuilder::new(format!("{}-fused", g.name()));
    let mut new_id: Vec<Option<NodeId>> = vec![None; chains.len()];
    for (ci, chain) in chains.iter().enumerate() {
        let mut tau = 0.0;
        let mut alpha_tau = 0.0;
        let mut names = Vec::new();
        for &m in chain {
            let node = g.node(NodeId(m));
            tau += node.cost.tau;
            alpha_tau += node.cost.alpha * node.cost.tau;
            names.push(node.name.clone());
        }
        merges += chain.len().saturating_sub(1);
        let alpha = if tau > 0.0 { (alpha_tau / tau).clamp(0.0, 1.0) } else { 0.0 };
        let name = if names.len() == 1 { names.remove(0) } else { names.join(" ; ") };
        new_id[ci] = Some(b.compute(name, AmdahlParams::new(alpha, tau)));
    }
    // Edges: between chains only; intra-chain edges disappear. Multiple
    // parallel edges between the same chain pair merge their transfers.
    let mut pair_transfers: std::collections::BTreeMap<
        (usize, usize),
        Vec<crate::node::ArrayTransfer>,
    > = std::collections::BTreeMap::new();
    for (_, e) in g.edges() {
        let (cu, cv) = (chain_of[e.src], chain_of[e.dst]);
        if cu == usize::MAX || cv == usize::MAX || cu == cv {
            continue; // structural endpoint or intra-chain edge
        }
        pair_transfers.entry((cu, cv)).or_default().extend(e.transfers.iter().copied());
    }
    for ((cu, cv), transfers) in pair_transfers {
        let u = new_id[cu].expect("chain exists");
        let v = new_id[cv].expect("chain exists");
        b.edge(u, v, transfers);
    }
    (b.finish().expect("fusion preserves acyclicity"), merges)
}

/// Remove every data-less precedence edge that is implied transitively
/// by the remaining edges. Data-carrying edges are always kept.
/// Returns the reduced graph and the number of edges removed.
pub fn transitive_reduction(g: &Mdg) -> (Mdg, usize) {
    let n = g.node_count();
    // Reachability via DFS per node over the full edge set minus the
    // candidate edge: an edge (u, v) is redundant if v stays reachable
    // from u without it.
    let mut removed = 0usize;
    let mut keep = vec![true; g.edge_count()];
    for (eid, e) in g.edges() {
        if !e.transfers.is_empty() {
            continue; // data edges are real communication
        }
        // BFS from e.src avoiding edge eid.
        let mut seen = vec![false; n];
        let mut stack = vec![e.src];
        seen[e.src] = true;
        let mut reachable = false;
        while let Some(u) = stack.pop() {
            for &oe in g.out_edges(NodeId(u)) {
                if oe == eid || !keep[oe.0] {
                    continue;
                }
                let w = g.edge(oe).dst;
                if w == e.dst {
                    reachable = true;
                    stack.clear();
                    break;
                }
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if reachable {
            keep[eid.0] = false;
            removed += 1;
        }
    }
    // Rebuild without the removed edges. Compute-node ids shift by -1 in
    // the builder, then back by +1 on finish, preserving names/costs.
    let mut b = MdgBuilder::new(format!("{}-reduced", g.name()));
    let mut remap = vec![None; n];
    for (id, node) in g.nodes() {
        if node.kind == NodeKind::Compute {
            remap[id.0] =
                Some(b.compute_with_meta(node.name.clone(), node.cost, node.meta.clone()));
        }
    }
    for (eid, e) in g.edges() {
        if !keep[eid.0] {
            continue;
        }
        if let (Some(u), Some(v)) = (remap[e.src], remap[e.dst]) {
            b.edge(u, v, e.transfers.clone());
        }
        // Edges touching START/STOP are re-created by the builder.
    }
    (b.finish().expect("reduction preserves acyclicity"), removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::example_fig1_mdg;
    use crate::node::{ArrayTransfer, TransferKind};
    use crate::random::{random_layered_mdg, RandomMdgConfig};
    use crate::stats::MdgStats;
    use crate::validate::assert_invariants;

    fn chain(taus: &[f64]) -> Mdg {
        let mut b = MdgBuilder::new("chain");
        let mut prev: Option<NodeId> = None;
        for (i, &t) in taus.iter().enumerate() {
            let v = b.compute(format!("n{i}"), AmdahlParams::new(0.1, t));
            if let Some(p) = prev {
                b.edge(p, v, vec![ArrayTransfer::new(1024, TransferKind::OneD)]);
            }
            prev = Some(v);
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_fuses_to_single_node() {
        let g = chain(&[1.0, 2.0, 3.0]);
        let (f, merges) = fuse_serial_chains(&g);
        assert_eq!(merges, 2);
        assert_eq!(f.compute_node_count(), 1);
        assert_invariants(&f);
        let node = f.nodes().find(|(_, n)| n.kind == NodeKind::Compute).unwrap().1;
        assert!((node.cost.tau - 6.0).abs() < 1e-12, "work adds");
        assert!((node.cost.alpha - 0.1).abs() < 1e-12, "uniform alpha preserved");
        assert!(node.name.contains(';'));
    }

    #[test]
    fn fusion_preserves_serial_time() {
        let cfg = RandomMdgConfig::default();
        for seed in 0..10 {
            let g = random_layered_mdg(&cfg, seed);
            let (f, _) = fuse_serial_chains(&g);
            assert_invariants(&f);
            let a = MdgStats::of(&g).serial_time;
            let b = MdgStats::of(&f).serial_time;
            assert!((a - b).abs() < 1e-9 * a.max(1.0), "seed {seed}: {a} vs {b}");
        }
    }

    #[test]
    fn fusion_weighted_alpha() {
        // alpha mix: (0.0*1 + 0.3*3) / 4 = 0.225
        let mut b = MdgBuilder::new("mix");
        let u = b.compute("u", AmdahlParams::new(0.0, 1.0));
        let v = b.compute("v", AmdahlParams::new(0.3, 3.0));
        b.edge(u, v, vec![]);
        let g = b.finish().unwrap();
        let (f, merges) = fuse_serial_chains(&g);
        assert_eq!(merges, 1);
        let node = f.nodes().find(|(_, n)| n.kind == NodeKind::Compute).unwrap().1;
        assert!((node.cost.alpha - 0.225).abs() < 1e-12);
    }

    #[test]
    fn fork_join_does_not_fuse_across_branches() {
        let g = example_fig1_mdg(); // N1 -> {N2, N3}: nothing fusible
        let (f, merges) = fuse_serial_chains(&g);
        assert_eq!(merges, 0);
        assert_eq!(f.compute_node_count(), 3);
    }

    #[test]
    fn diamond_fuses_nothing_but_reduction_removes_shortcut() {
        // a -> b -> d, a -> d (redundant, data-less)
        let mut bld = MdgBuilder::new("shortcut");
        let a = bld.compute("a", AmdahlParams::new(0.0, 1.0));
        let b = bld.compute("b", AmdahlParams::new(0.0, 1.0));
        let d = bld.compute("d", AmdahlParams::new(0.0, 1.0));
        bld.edge(a, b, vec![]);
        bld.edge(b, d, vec![]);
        bld.edge(a, d, vec![]);
        let g = bld.finish().unwrap();
        let (r, removed) = transitive_reduction(&g);
        assert_eq!(removed, 1);
        assert_invariants(&r);
        // Critical path unchanged.
        let cp_g = g.critical_path_with(|v| g.node(v).cost.tau, |_| 0.0);
        let cp_r = r.critical_path_with(|v| r.node(v).cost.tau, |_| 0.0);
        assert!((cp_g - cp_r).abs() < 1e-12);
    }

    #[test]
    fn reduction_keeps_data_edges() {
        let mut bld = MdgBuilder::new("data-shortcut");
        let a = bld.compute("a", AmdahlParams::new(0.0, 1.0));
        let b = bld.compute("b", AmdahlParams::new(0.0, 1.0));
        let d = bld.compute("d", AmdahlParams::new(0.0, 1.0));
        bld.edge(a, b, vec![]);
        bld.edge(b, d, vec![]);
        // The shortcut carries data: must survive.
        bld.edge(a, d, vec![ArrayTransfer::new(2048, TransferKind::TwoD)]);
        let g = bld.finish().unwrap();
        let (r, removed) = transitive_reduction(&g);
        assert_eq!(removed, 0);
        let data_edges = r.edges().filter(|(_, e)| !e.transfers.is_empty()).count();
        assert_eq!(data_edges, 1);
    }

    #[test]
    fn reduction_preserves_reachability_on_random_graphs() {
        let cfg = RandomMdgConfig { edge_prob: 0.8, ..RandomMdgConfig::default() };
        for seed in 0..6 {
            let g = random_layered_mdg(&cfg, seed);
            let (r, _) = transitive_reduction(&g);
            assert_invariants(&r);
            // Same compute node count, same or fewer edges.
            assert_eq!(r.compute_node_count(), g.compute_node_count());
            assert!(r.edge_count() <= g.edge_count());
        }
    }
}
