//! Node and edge payload types for the MDG.
//!
//! A node's processing cost follows Amdahl's law (paper Eq. 1):
//! `t^C(q) = (alpha + (1 - alpha)/q) * tau`, where `tau` is the
//! single-processor execution time of the loop and `alpha` the serial
//! fraction. The parameters are carried on the node; the evaluation (and
//! the proof obligations about posynomiality) live in `paradigm-cost`.
//!
//! An edge carries one or more [`ArrayTransfer`]s: arrays that must move
//! from the processor group of the predecessor to that of the successor.
//! Each transfer is classified as 1D (ROW2ROW / COL2COL — distribution
//! dimension preserved) or 2D (ROW2COL / COL2ROW — distribution dimension
//! flipped), matching the paper's Figure 4.

/// Role a node plays in the MDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The distinguished FORK node: precedes all others, zero cost.
    Start,
    /// The distinguished JOIN node: succeeds all others, zero cost.
    Stop,
    /// An ordinary loop nest with a data-parallel processing cost.
    Compute,
}

/// The loop classes that appear in the paper's test programs
/// (Section 6: "There are three basic types of loops for both MDGs, viz.,
/// Matrix Initialization, Matrix Multiplication and Matrix Addition").
///
/// The class is metadata: the scheduler only consumes [`AmdahlParams`],
/// but the simulator uses the class to pick the ground-truth kernel
/// timing function and, for value-level checks, the actual kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// `A[i][j] = expr` style initialization loop.
    MatrixInit,
    /// Elementwise matrix addition (or subtraction — identical cost).
    MatrixAdd,
    /// Dense matrix-matrix multiplication.
    MatrixMultiply,
    /// Anything else; carries a free-form label.
    Custom(String),
}

impl LoopClass {
    /// Short printable tag, used by the DOT export and Gantt rendering.
    pub fn tag(&self) -> &str {
        match self {
            LoopClass::MatrixInit => "init",
            LoopClass::MatrixAdd => "add",
            LoopClass::MatrixMultiply => "mul",
            LoopClass::Custom(s) => s.as_str(),
        }
    }
}

/// Amdahl's-law processing cost parameters for one loop nest.
///
/// `t^C(q) = (alpha + (1 - alpha) / q) * tau` — paper Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmdahlParams {
    /// Serial fraction `alpha` in `[0, 1]`.
    pub alpha: f64,
    /// Single-processor execution time `tau`, in seconds.
    pub tau: f64,
}

impl AmdahlParams {
    /// Create a parameter set, checking the admissible ranges.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]` or `tau` is negative/NaN.
    pub fn new(alpha: f64, tau: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "serial fraction alpha must lie in [0,1], got {alpha}"
        );
        assert!(
            tau.is_finite() && tau >= 0.0,
            "sequential time tau must be finite and non-negative, got {tau}"
        );
        AmdahlParams { alpha, tau }
    }

    /// The zero-cost parameter set used by START/STOP.
    pub const ZERO: AmdahlParams = AmdahlParams { alpha: 0.0, tau: 0.0 };

    /// Evaluate `t^C(q)` at a (possibly fractional) processor count.
    ///
    /// Fractional `q` arises inside the convex program, where processor
    /// counts are relaxed to positive reals.
    pub fn cost(&self, q: f64) -> f64 {
        debug_assert!(q >= 1.0, "processor count must be >= 1, got {q}");
        (self.alpha + (1.0 - self.alpha) / q) * self.tau
    }

    /// Processor-time area `t^C(q) * q` at `q` processors.
    pub fn area(&self, q: f64) -> f64 {
        self.cost(q) * q
    }
}

/// Kernel metadata attached to a compute node: what loop it is and on what
/// problem size it operates. Used by the simulator for ground-truth timing
/// and by the value-level correctness checks.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMeta {
    /// Loop class (init / add / multiply / custom).
    pub class: LoopClass,
    /// Number of matrix rows the loop touches.
    pub rows: usize,
    /// Number of matrix columns the loop touches.
    pub cols: usize,
}

impl LoopMeta {
    /// Metadata for a square-matrix loop of the given class.
    pub fn square(class: LoopClass, n: usize) -> Self {
        LoopMeta { class, rows: n, cols: n }
    }

    /// Placeholder metadata for synthetic nodes without a real kernel.
    pub fn synthetic() -> Self {
        LoopMeta { class: LoopClass::Custom("synthetic".to_string()), rows: 0, cols: 0 }
    }
}

/// A node of the MDG.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name, e.g. `"M1 = Ar*Br"`.
    pub name: String,
    /// Start / Stop / Compute.
    pub kind: NodeKind,
    /// Amdahl processing-cost parameters (zero for START/STOP).
    pub cost: AmdahlParams,
    /// Kernel metadata for the simulator.
    pub meta: LoopMeta,
}

impl Node {
    /// True for the two distinguished structural nodes.
    pub fn is_structural(&self) -> bool {
        matches!(self.kind, NodeKind::Start | NodeKind::Stop)
    }
}

/// Redistribution shape of one array transfer (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// ROW2ROW or COL2COL: distribution dimension preserved. Each of the
    /// `max(p_i, p_j)` logical messages moves `L / max(p_i, p_j)` bytes.
    OneD,
    /// ROW2COL or COL2ROW: distribution dimension flipped. All `p_i * p_j`
    /// processor pairs exchange `L / (p_i * p_j)` bytes.
    TwoD,
}

/// One array that must be moved along an edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayTransfer {
    /// Total array length in bytes (`L` in the paper's Eq. 2/3).
    pub bytes: u64,
    /// 1D or 2D redistribution.
    pub kind: TransferKind,
}

impl ArrayTransfer {
    /// Construct a transfer of `bytes` bytes with the given shape.
    pub fn new(bytes: u64, kind: TransferKind) -> Self {
        ArrayTransfer { bytes, kind }
    }

    /// Convenience: a 1D transfer of an `rows x cols` matrix of `f64`.
    pub fn matrix_1d(rows: usize, cols: usize) -> Self {
        ArrayTransfer::new((rows * cols * std::mem::size_of::<f64>()) as u64, TransferKind::OneD)
    }

    /// Convenience: a 2D transfer of an `rows x cols` matrix of `f64`.
    pub fn matrix_2d(rows: usize, cols: usize) -> Self {
        ArrayTransfer::new((rows * cols * std::mem::size_of::<f64>()) as u64, TransferKind::TwoD)
    }
}

/// An edge of the MDG: a precedence constraint plus the arrays that move
/// across it. An edge with an empty transfer list is a pure precedence
/// constraint (zero data-transfer cost), as used for START/STOP wiring.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Arrays redistributed along this edge.
    pub transfers: Vec<ArrayTransfer>,
}

impl Edge {
    /// Total bytes moved across this edge (all arrays).
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_cost_at_one_processor_is_tau() {
        let p = AmdahlParams::new(0.121, 0.29847);
        assert!((p.cost(1.0) - 0.29847).abs() < 1e-12);
    }

    #[test]
    fn amdahl_cost_decreases_with_processors() {
        let p = AmdahlParams::new(0.067, 3.73e-3);
        let mut prev = f64::INFINITY;
        for q in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let c = p.cost(q);
            assert!(c < prev, "cost must be strictly decreasing for alpha<1");
            prev = c;
        }
    }

    #[test]
    fn amdahl_cost_lower_bound_is_serial_fraction() {
        let p = AmdahlParams::new(0.121, 1.0);
        // As q -> inf the cost approaches alpha * tau.
        assert!(p.cost(1e9) - 0.121 < 1e-6);
        assert!(p.cost(1e9) >= 0.121);
    }

    #[test]
    fn amdahl_area_is_nondecreasing() {
        // t*q = (alpha*q + 1 - alpha) * tau grows with q when alpha > 0.
        let p = AmdahlParams::new(0.1, 2.0);
        assert!(p.area(4.0) > p.area(2.0));
        assert!(p.area(2.0) > p.area(1.0));
        // For alpha = 0 the area is constant (perfect speedup).
        let perfect = AmdahlParams::new(0.0, 2.0);
        assert!((perfect.area(64.0) - perfect.area(1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn amdahl_rejects_bad_alpha() {
        let _ = AmdahlParams::new(1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn amdahl_rejects_negative_tau() {
        let _ = AmdahlParams::new(0.5, -1.0);
    }

    #[test]
    fn matrix_transfer_sizes() {
        let t = ArrayTransfer::matrix_1d(64, 64);
        assert_eq!(t.bytes, 64 * 64 * 8);
        assert_eq!(t.kind, TransferKind::OneD);
        let t2 = ArrayTransfer::matrix_2d(128, 64);
        assert_eq!(t2.bytes, 128 * 64 * 8);
        assert_eq!(t2.kind, TransferKind::TwoD);
    }

    #[test]
    fn edge_total_bytes_sums_all_arrays() {
        let e = Edge {
            src: 0,
            dst: 1,
            transfers: vec![
                ArrayTransfer::new(100, TransferKind::OneD),
                ArrayTransfer::new(250, TransferKind::TwoD),
            ],
        };
        assert_eq!(e.total_bytes(), 350);
    }

    #[test]
    fn loop_class_tags() {
        assert_eq!(LoopClass::MatrixInit.tag(), "init");
        assert_eq!(LoopClass::MatrixAdd.tag(), "add");
        assert_eq!(LoopClass::MatrixMultiply.tag(), "mul");
        assert_eq!(LoopClass::Custom("fft".into()).tag(), "fft");
    }
}
