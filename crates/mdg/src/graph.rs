//! The MDG container: construction, adjacency, and core graph algorithms.
//!
//! The graph is stored as a node vector plus an edge list with per-node
//! predecessor/successor adjacency (indices into the edge list). Node 0 is
//! always START and node `n-1` is always STOP, mirroring the paper's
//! convention ("node 1 is called START and node n is called STOP").

use crate::node::{AmdahlParams, ArrayTransfer, Edge, LoopMeta, Node, NodeKind};
use std::collections::VecDeque;
use std::fmt;

/// Index of a node in an [`Mdg`]. START is always `NodeId(0)` and STOP is
/// always `NodeId(n - 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge in an [`Mdg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors raised while building or validating an MDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdgError {
    /// The edge set contains a cycle; the offending node is reported.
    Cycle(usize),
    /// An edge references a node index that does not exist.
    DanglingEdge { src: usize, dst: usize },
    /// A self-loop `v -> v` was requested.
    SelfLoop(usize),
    /// Duplicate edge between the same ordered pair.
    DuplicateEdge { src: usize, dst: usize },
    /// The graph has no compute nodes at all.
    Empty,
}

impl fmt::Display for MdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdgError::Cycle(v) => write!(f, "MDG contains a cycle through node {v}"),
            MdgError::DanglingEdge { src, dst } => {
                write!(f, "edge ({src} -> {dst}) references a missing node")
            }
            MdgError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            MdgError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge ({src} -> {dst})")
            }
            MdgError::Empty => write!(f, "MDG has no compute nodes"),
        }
    }
}

impl std::error::Error for MdgError {}

/// A finished, validated Macro Dataflow Graph.
///
/// Invariants (established by [`MdgBuilder::finish`] and checked by
/// [`crate::validate::check_invariants`]):
///
/// * node 0 is START, node `n-1` is STOP, both zero-cost;
/// * the edge relation is acyclic with no self-loops or duplicates;
/// * every compute node is reachable from START and reaches STOP.
#[derive(Debug, Clone)]
pub struct Mdg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    preds: Vec<Vec<EdgeId>>,
    succs: Vec<Vec<EdgeId>>,
    topo: Vec<NodeId>,
}

impl Mdg {
    /// Graph name (used in reports and DOT output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count including START and STOP.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of compute (non-structural) nodes.
    pub fn compute_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_structural()).count()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The START node id (always 0).
    pub fn start(&self) -> NodeId {
        NodeId(0)
    }

    /// The STOP node id (always `n - 1`).
    pub fn stop(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// Node payload.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge payload.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All edges in index order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Incoming edges of `id`.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.preds[id.0]
    }

    /// Outgoing edges of `id`.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.succs[id.0]
    }

    /// Predecessor node ids of `id`.
    pub fn preds(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[id.0].iter().map(|&e| NodeId(self.edges[e.0].src))
    }

    /// Successor node ids of `id`.
    pub fn succs(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[id.0].iter().map(|&e| NodeId(self.edges[e.0].dst))
    }

    /// A topological order of all nodes (START first, STOP last). The
    /// order is computed once at build time and reused.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Longest path length from START to STOP where each node contributes
    /// `node_w(id)` and each edge `edge_w(eid)`. This is the generic
    /// critical-path primitive used for `C_p` style computations.
    pub fn critical_path_with<NW, EW>(&self, mut node_w: NW, mut edge_w: EW) -> f64
    where
        NW: FnMut(NodeId) -> f64,
        EW: FnMut(EdgeId) -> f64,
    {
        let mut finish = vec![0.0_f64; self.nodes.len()];
        for &v in &self.topo {
            let mut start = 0.0_f64;
            for &e in &self.preds[v.0] {
                let m = self.edges[e.0].src;
                let cand = finish[m] + edge_w(e);
                if cand > start {
                    start = cand;
                }
            }
            finish[v.0] = start + node_w(v);
        }
        finish[self.stop().0]
    }

    /// Per-node earliest finish times under the same weight model as
    /// [`Mdg::critical_path_with`] (the `y_i` recurrence of the paper).
    pub fn finish_times_with<NW, EW>(&self, mut node_w: NW, mut edge_w: EW) -> Vec<f64>
    where
        NW: FnMut(NodeId) -> f64,
        EW: FnMut(EdgeId) -> f64,
    {
        let mut finish = vec![0.0_f64; self.nodes.len()];
        for &v in &self.topo {
            let mut start = 0.0_f64;
            for &e in &self.preds[v.0] {
                let m = self.edges[e.0].src;
                let cand = finish[m] + edge_w(e);
                if cand > start {
                    start = cand;
                }
            }
            finish[v.0] = start + node_w(v);
        }
        finish
    }

    /// Hop-count depth of each node from START (START = 0).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        for &v in &self.topo {
            for &e in &self.preds[v.0] {
                let m = self.edges[e.0].src;
                depth[v.0] = depth[v.0].max(depth[m] + 1);
            }
        }
        depth
    }

    /// Number of nodes at each depth level — the graph's "width profile".
    pub fn level_widths(&self) -> Vec<usize> {
        let depths = self.depths();
        let max = depths.iter().copied().max().unwrap_or(0);
        let mut widths = vec![0usize; max + 1];
        for d in depths {
            widths[d] += 1;
        }
        widths
    }

    /// True if `a` reaches `b` through directed edges.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        queue.push_back(a);
        seen[a.0] = true;
        while let Some(v) = queue.pop_front() {
            for &e in &self.succs[v.0] {
                let w = self.edges[e.0].dst;
                if w == b.0 {
                    return true;
                }
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(NodeId(w));
                }
            }
        }
        false
    }
}

/// Incremental MDG construction. Compute nodes and edges are added freely;
/// [`MdgBuilder::finish`] validates acyclicity, splices in START/STOP, and
/// produces the immutable [`Mdg`].
#[derive(Debug, Clone)]
pub struct MdgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl MdgBuilder {
    /// Start building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        MdgBuilder { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Add a compute node with synthetic kernel metadata.
    pub fn compute(&mut self, name: impl Into<String>, cost: AmdahlParams) -> NodeId {
        self.compute_with_meta(name, cost, LoopMeta::synthetic())
    }

    /// Add a compute node carrying kernel metadata for the simulator.
    pub fn compute_with_meta(
        &mut self,
        name: impl Into<String>,
        cost: AmdahlParams,
        meta: LoopMeta,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { name: name.into(), kind: NodeKind::Compute, cost, meta });
        id
    }

    /// Add a precedence edge with the given array transfers (empty for a
    /// pure precedence constraint).
    pub fn edge(&mut self, src: NodeId, dst: NodeId, transfers: Vec<ArrayTransfer>) {
        self.edges.push(Edge { src: src.0, dst: dst.0, transfers });
    }

    /// Current number of compute nodes added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validate and seal the graph. START/STOP are appended and wired to
    /// all sources/sinks; node ids handed out by [`MdgBuilder::compute`]
    /// are shifted by +1 to make room for START at index 0.
    pub fn finish(self) -> Result<Mdg, MdgError> {
        if self.nodes.is_empty() {
            return Err(MdgError::Empty);
        }
        let user_n = self.nodes.len();
        // Validate user edges before renumbering.
        let mut seen_pairs = std::collections::HashSet::new();
        for e in &self.edges {
            if e.src >= user_n || e.dst >= user_n {
                return Err(MdgError::DanglingEdge { src: e.src, dst: e.dst });
            }
            if e.src == e.dst {
                return Err(MdgError::SelfLoop(e.src));
            }
            if !seen_pairs.insert((e.src, e.dst)) {
                return Err(MdgError::DuplicateEdge { src: e.src, dst: e.dst });
            }
        }

        // Renumber: START = 0, user nodes = 1..=user_n, STOP = user_n + 1.
        let n = user_n + 2;
        let mut nodes = Vec::with_capacity(n);
        nodes.push(Node {
            name: "START".to_string(),
            kind: NodeKind::Start,
            cost: AmdahlParams::ZERO,
            meta: LoopMeta::synthetic(),
        });
        nodes.extend(self.nodes);
        nodes.push(Node {
            name: "STOP".to_string(),
            kind: NodeKind::Stop,
            cost: AmdahlParams::ZERO,
            meta: LoopMeta::synthetic(),
        });

        let mut edges: Vec<Edge> = self
            .edges
            .into_iter()
            .map(|e| Edge { src: e.src + 1, dst: e.dst + 1, transfers: e.transfers })
            .collect();

        // Wire START to all sources and all sinks to STOP.
        let mut has_pred = vec![false; n];
        let mut has_succ = vec![false; n];
        for e in &edges {
            has_pred[e.dst] = true;
            has_succ[e.src] = true;
        }
        for v in 1..=user_n {
            if !has_pred[v] {
                edges.push(Edge { src: 0, dst: v, transfers: Vec::new() });
            }
            if !has_succ[v] {
                edges.push(Edge { src: v, dst: n - 1, transfers: Vec::new() });
            }
        }

        // Build adjacency.
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.src].push(EdgeId(i));
            preds[e.dst].push(EdgeId(i));
        }

        // Kahn's algorithm for the topological order; detects cycles.
        let mut indeg: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (v, &d) in indeg.iter().enumerate() {
            if d == 0 {
                queue.push_back(v);
            }
        }
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            topo.push(NodeId(v));
            for &e in &succs[v] {
                let w = edges[e.0].dst;
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if topo.len() != n {
            let stuck = indeg.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(MdgError::Cycle(stuck.saturating_sub(1)));
        }

        Ok(Mdg { name: self.name, nodes, edges, preds, succs, topo })
    }
}

/// Translate a builder-time node id into the finished graph's id space
/// (builder ids shift by +1 because START is spliced in at index 0).
pub fn builder_id_to_mdg(builder_id: NodeId) -> NodeId {
    NodeId(builder_id.0 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TransferKind;

    fn diamond() -> Mdg {
        // a -> {b, c} -> d
        let mut b = MdgBuilder::new("diamond");
        let na = b.compute("a", AmdahlParams::new(0.1, 1.0));
        let nb = b.compute("b", AmdahlParams::new(0.1, 2.0));
        let nc = b.compute("c", AmdahlParams::new(0.1, 3.0));
        let nd = b.compute("d", AmdahlParams::new(0.1, 1.0));
        b.edge(na, nb, vec![ArrayTransfer::new(1024, TransferKind::OneD)]);
        b.edge(na, nc, vec![ArrayTransfer::new(1024, TransferKind::OneD)]);
        b.edge(nb, nd, vec![]);
        b.edge(nc, nd, vec![]);
        b.finish().unwrap()
    }

    #[test]
    fn builder_adds_start_and_stop() {
        let g = diamond();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.compute_node_count(), 4);
        assert_eq!(g.node(g.start()).kind, NodeKind::Start);
        assert_eq!(g.node(g.stop()).kind, NodeKind::Stop);
    }

    #[test]
    fn start_has_no_preds_stop_has_no_succs() {
        let g = diamond();
        assert!(g.in_edges(g.start()).is_empty());
        assert!(g.out_edges(g.stop()).is_empty());
        assert!(!g.out_edges(g.start()).is_empty());
        assert!(!g.in_edges(g.stop()).is_empty());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                p[v.0] = i;
            }
            p
        };
        for (_, e) in g.edges() {
            assert!(pos[e.src] < pos[e.dst], "edge {} -> {} violates topo", e.src, e.dst);
        }
        assert_eq!(order[0], g.start());
        assert_eq!(*order.last().unwrap(), g.stop());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = MdgBuilder::new("cyc");
        let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
        let y = b.compute("y", AmdahlParams::new(0.0, 1.0));
        b.edge(x, y, vec![]);
        b.edge(y, x, vec![]);
        assert!(matches!(b.finish(), Err(MdgError::Cycle(_))));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = MdgBuilder::new("self");
        let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
        b.edge(x, x, vec![]);
        assert!(matches!(b.finish(), Err(MdgError::SelfLoop(_))));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = MdgBuilder::new("dup");
        let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
        let y = b.compute("y", AmdahlParams::new(0.0, 1.0));
        b.edge(x, y, vec![]);
        b.edge(x, y, vec![]);
        assert!(matches!(b.finish(), Err(MdgError::DuplicateEdge { .. })));
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let mut b = MdgBuilder::new("dangle");
        let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
        b.edge(x, NodeId(99), vec![]);
        assert!(matches!(b.finish(), Err(MdgError::DanglingEdge { .. })));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let b = MdgBuilder::new("empty");
        assert!(matches!(b.finish(), Err(MdgError::Empty)));
    }

    #[test]
    fn critical_path_diamond() {
        let g = diamond();
        // Unit node weights, zero edge weights: longest chain is
        // START a (b|c) d STOP with zero-cost START/STOP -> 3 compute hops.
        let cp =
            g.critical_path_with(|v| if g.node(v).is_structural() { 0.0 } else { 1.0 }, |_| 0.0);
        assert!((cp - 3.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_uses_edge_weights() {
        let g = diamond();
        // Give the a->c edge weight 10: path a -(10)-> c -> d dominates.
        let cp = g.critical_path_with(
            |v| if g.node(v).is_structural() { 0.0 } else { 1.0 },
            |e| {
                let edge = g.edge(e);
                // a is node 1, c is node 3 after renumbering
                if edge.src == 1 && edge.dst == 3 {
                    10.0
                } else {
                    0.0
                }
            },
        );
        assert!((cp - 13.0).abs() < 1e-12);
    }

    #[test]
    fn finish_times_monotone_along_edges() {
        let g = diamond();
        let ft = g.finish_times_with(|v| g.node(v).cost.tau, |_| 0.5);
        for (_, e) in g.edges() {
            assert!(ft[e.dst] >= ft[e.src], "finish times must be monotone along edges");
        }
    }

    #[test]
    fn depths_and_level_widths() {
        let g = diamond();
        let d = g.depths();
        assert_eq!(d[g.start().0], 0);
        // a=1 at depth 1; b=2,c=3 at depth 2; d=4 at depth 3; STOP depth 4.
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], 2);
        assert_eq!(d[4], 3);
        assert_eq!(d[g.stop().0], 4);
        assert_eq!(g.level_widths(), vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(g.start(), g.stop()));
        assert!(g.reaches(NodeId(1), NodeId(4)));
        assert!(!g.reaches(NodeId(2), NodeId(3))); // b and c are parallel
        assert!(!g.reaches(g.stop(), g.start()));
        assert!(g.reaches(NodeId(2), NodeId(2)));
    }

    #[test]
    fn preds_succs_iterators() {
        let g = diamond();
        let d_preds: Vec<NodeId> = g.preds(NodeId(4)).collect();
        assert_eq!(d_preds.len(), 2);
        assert!(d_preds.contains(&NodeId(2)) && d_preds.contains(&NodeId(3)));
        let a_succs: Vec<NodeId> = g.succs(NodeId(1)).collect();
        assert_eq!(a_succs.len(), 2);
    }
}
