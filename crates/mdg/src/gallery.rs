//! A gallery of realistic workload MDGs beyond the paper's two test
//! programs — the kinds of regular applications the PARADIGM project
//! targeted. All builders parameterize over the [`KernelCostTable`] so
//! costs stay consistent with the calibrated machine.
//!
//! * [`fft_2d_mdg`] — 2D FFT via the transpose method: row-block FFT
//!   stages, a global transpose (**2D transfers** — the only gallery
//!   workload that exercises the ROW2COL cost path), column-block FFT
//!   stages.
//! * [`block_lu_mdg`] — right-looking blocked LU factorization: the
//!   classic factor → panel-solve → trailing-update task DAG whose width
//!   shrinks as the factorization proceeds (a hard case for pure data
//!   parallelism *and* for pure task parallelism).
//! * [`stencil_mdg`] — iterated block-row stencil sweeps with
//!   nearest-neighbour halo exchanges (Jacobi-style), a deep layered
//!   graph with small transfers.

use crate::builders::KernelCostTable;
use crate::graph::{Mdg, MdgBuilder, NodeId};
use crate::node::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta};

fn scaled(params: AmdahlParams, factor: f64) -> AmdahlParams {
    AmdahlParams::new(params.alpha, params.tau * factor)
}

/// 2D FFT of an `n x n` complex field by the transpose method, with the
/// rows split into `blocks` independent row-band loops per stage:
///
/// ```text
/// init → {row-FFT band}×blocks → transpose → {col-FFT band}×blocks → gather
/// ```
///
/// The transpose edge carries 2D (ROW2COL) transfers; everything else is
/// 1D. FFT band cost is modeled from the multiply class scaled by
/// `(n log2 n) / n^3`-ish work per element (documented approximation:
/// `tau_band = tau_mul(n) * log2(n) / n` relative weighting), which
/// keeps the gallery self-calibrating against Table 1.
pub fn fft_2d_mdg(n: usize, blocks: usize, costs: &KernelCostTable) -> Mdg {
    assert!(n.is_power_of_two() && n >= 4, "FFT size must be a power of two >= 4");
    assert!(blocks >= 1 && blocks <= n, "need 1..=n row bands");
    let mut b = MdgBuilder::new(format!("fft2d-{n}x{n}-b{blocks}"));
    let band_rows = n / blocks;
    let mul = costs.params_for(&LoopClass::MatrixMultiply, n);
    // Work per band: n/blocks rows, each an n-point FFT: ~ 5 n log2 n
    // flops per row vs 2 n^2 per row of a matmul.
    let fft_factor = (5.0 * (n as f64).log2()) / (2.0 * n as f64) / blocks as f64;
    let band_cost = scaled(mul, fft_factor);
    let init_p = costs.params_for(&LoopClass::MatrixInit, n);
    let band_meta = |tag: &str| LoopMeta {
        class: LoopClass::Custom(format!("fft-{tag}")),
        rows: band_rows,
        cols: n,
    };
    let band_bytes = (band_rows * n * 16) as u64; // complex = 2 f64

    let init =
        b.compute_with_meta("init field", init_p, LoopMeta::square(LoopClass::MatrixInit, n));
    let transpose = b.compute_with_meta(
        "transpose",
        costs.params_for(&LoopClass::MatrixAdd, n), // copy-like cost
        LoopMeta::square(LoopClass::Custom("transpose".into()), n),
    );
    let gather = b.compute_with_meta(
        "gather result",
        costs.params_for(&LoopClass::MatrixInit, n),
        LoopMeta::square(LoopClass::Custom("gather".into()), n),
    );
    for k in 0..blocks {
        let row = b.compute_with_meta(format!("row-FFT band {k}"), band_cost, band_meta("row"));
        b.edge(init, row, vec![ArrayTransfer::new(band_bytes, crate::node::TransferKind::OneD)]);
        // The transpose consumes every row band with a dimension flip.
        b.edge(
            row,
            transpose,
            vec![ArrayTransfer::new(band_bytes, crate::node::TransferKind::TwoD)],
        );
        let col = b.compute_with_meta(format!("col-FFT band {k}"), band_cost, band_meta("col"));
        b.edge(
            transpose,
            col,
            vec![ArrayTransfer::new(band_bytes, crate::node::TransferKind::OneD)],
        );
        b.edge(col, gather, vec![ArrayTransfer::new(band_bytes, crate::node::TransferKind::OneD)]);
    }
    b.finish().expect("fft MDG must be a valid DAG")
}

/// Right-looking blocked LU factorization of an `nb x nb` grid of
/// `bs x bs` blocks (no pivoting):
///
/// ```text
/// for k in 0..nb:
///   F_k   = factor A[k][k]                       (one node)
///   S_kj  = solve  A[k][j] for j > k             (nb-k-1 nodes, need F_k)
///   S_ik  = solve  A[i][k] for i > k             (nb-k-1 nodes, need F_k)
///   U_ij  = A[i][j] -= A[i][k]·A[k][j], i,j > k  ((nb-k-1)^2 nodes,
///                                                 need S_ik, S_kj, U_ij^(k-1))
/// ```
///
/// Factor/solve costs use the multiply class at the block size scaled by
/// 1/3 and 1/2 (the classic flop ratios); updates are full block
/// multiplies. All transfers are 1D block transfers.
pub fn block_lu_mdg(nb: usize, bs: usize, costs: &KernelCostTable) -> Mdg {
    assert!(nb >= 2, "need at least a 2x2 block grid");
    let mut b = MdgBuilder::new(format!("block-lu-{nb}x{nb}-bs{bs}"));
    let gemm = costs.params_for(&LoopClass::MatrixMultiply, bs);
    let factor_cost = scaled(gemm, 1.0 / 3.0);
    let solve_cost = scaled(gemm, 0.5);
    let block = || vec![ArrayTransfer::matrix_1d(bs, bs)];
    let meta =
        |tag: &str| LoopMeta { class: LoopClass::Custom(tag.to_string()), rows: bs, cols: bs };

    // last_writer[i][j]: the node that last produced block (i, j).
    let mut last_writer: Vec<Vec<Option<NodeId>>> = vec![vec![None; nb]; nb];
    #[allow(clippy::needless_range_loop)] // i/j index the 2D last_writer grid
    for k in 0..nb {
        let f = b.compute_with_meta(format!("F{k}"), factor_cost, meta("lu-factor"));
        if let Some(w) = last_writer[k][k] {
            b.edge(w, f, block());
        }
        last_writer[k][k] = Some(f);
        let mut row_solves = Vec::new();
        let mut col_solves = Vec::new();
        for j in (k + 1)..nb {
            let s = b.compute_with_meta(format!("S{k},{j}"), solve_cost, meta("lu-solve"));
            b.edge(f, s, block());
            if let Some(w) = last_writer[k][j] {
                b.edge(w, s, block());
            }
            last_writer[k][j] = Some(s);
            row_solves.push((j, s));
        }
        for i in (k + 1)..nb {
            let s = b.compute_with_meta(format!("S{i},{k}"), solve_cost, meta("lu-solve"));
            b.edge(f, s, block());
            if let Some(w) = last_writer[i][k] {
                b.edge(w, s, block());
            }
            last_writer[i][k] = Some(s);
            col_solves.push((i, s));
        }
        for &(i, si) in &col_solves {
            for &(j, sj) in &row_solves {
                let u = b.compute_with_meta(format!("U{i},{j}@{k}"), gemm, meta("lu-update"));
                b.edge(si, u, block());
                b.edge(sj, u, block());
                if let Some(w) = last_writer[i][j] {
                    b.edge(w, u, block());
                }
                last_writer[i][j] = Some(u);
            }
        }
    }
    b.finish().expect("LU MDG must be a valid DAG")
}

/// `iters` Jacobi-style sweeps over a field split into `bands` block
/// rows; every sweep updates each band (add-class loops on
/// `n/bands x n`) after exchanging halo rows with its neighbours.
pub fn stencil_mdg(n: usize, bands: usize, iters: usize, costs: &KernelCostTable) -> Mdg {
    assert!(bands >= 1 && iters >= 1);
    assert!(n >= bands, "need at least one row per band");
    let mut b = MdgBuilder::new(format!("stencil-{n}-b{bands}-i{iters}"));
    let band_rows = n / bands;
    // ~5-point stencil: a handful of flops per element, add-like class.
    let update = scaled(costs.params_for(&LoopClass::MatrixAdd, n), 2.5 / bands as f64);
    let halo_bytes = (n * 8) as u64; // one row of f64
    let meta = LoopMeta { class: LoopClass::Custom("stencil".into()), rows: band_rows, cols: n };

    let mut prev: Vec<NodeId> = (0..bands)
        .map(|k| {
            b.compute_with_meta(
                format!("init band {k}"),
                costs.params_for(&LoopClass::MatrixInit, n),
                meta.clone(),
            )
        })
        .collect();
    for it in 0..iters {
        let mut cur = Vec::with_capacity(bands);
        for k in 0..bands {
            let node = b.compute_with_meta(format!("sweep {it} band {k}"), update, meta.clone());
            // Own band plus halo rows from the neighbours.
            b.edge(
                prev[k],
                node,
                vec![ArrayTransfer::new(
                    (band_rows * n * 8) as u64,
                    crate::node::TransferKind::OneD,
                )],
            );
            if k > 0 {
                b.edge(
                    prev[k - 1],
                    node,
                    vec![ArrayTransfer::new(halo_bytes, crate::node::TransferKind::OneD)],
                );
            }
            if k + 1 < bands {
                b.edge(
                    prev[k + 1],
                    node,
                    vec![ArrayTransfer::new(halo_bytes, crate::node::TransferKind::OneD)],
                );
            }
            cur.push(node);
        }
        prev = cur;
    }
    b.finish().expect("stencil MDG must be a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TransferKind;
    use crate::stats::MdgStats;
    use crate::validate::assert_invariants;

    fn table() -> KernelCostTable {
        KernelCostTable::cm5()
    }

    #[test]
    fn fft_structure() {
        let g = fft_2d_mdg(64, 4, &table());
        assert_invariants(&g);
        // init + 4 row bands + transpose + 4 col bands + gather = 11.
        assert_eq!(g.compute_node_count(), 11);
        // The transpose input edges are the only 2D transfers.
        let two_d = g
            .edges()
            .flat_map(|(_, e)| e.transfers.iter())
            .filter(|t| t.kind == TransferKind::TwoD)
            .count();
        assert_eq!(two_d, 4);
        let s = MdgStats::of(&g);
        assert_eq!(s.max_width, 4);
        assert!(s.inherent_parallelism() > 1.5, "bands are independent");
    }

    #[test]
    fn fft_band_work_scales_with_log_n() {
        let t = table();
        let g64 = fft_2d_mdg(64, 1, &t);
        let g256 = fft_2d_mdg(256, 1, &t);
        let band_tau = |g: &Mdg| {
            g.nodes()
                .find(|(_, n)| n.name.starts_with("row-FFT"))
                .map(|(_, n)| n.cost.tau)
                .expect("has a band")
        };
        // Work ~ n^2 log2 n: ratio (256^2*8)/(64^2*6) = 16*8/6.
        let ratio = band_tau(&g256) / band_tau(&g64);
        let expect = (256.0_f64 * 256.0 * 8.0) / (64.0 * 64.0 * 6.0);
        assert!((ratio - expect).abs() / expect < 1e-9, "{ratio} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let _ = fft_2d_mdg(100, 2, &table());
    }

    #[test]
    fn lu_structure() {
        let nb = 3;
        let g = block_lu_mdg(nb, 64, &table());
        assert_invariants(&g);
        // Node count: sum_k 1 + 2(nb-k-1) + (nb-k-1)^2 for k=0..nb
        // nb=3: k=0: 1+4+4=9; k=1: 1+2+1=4; k=2: 1 -> 14.
        assert_eq!(g.compute_node_count(), 14);
        let s = MdgStats::of(&g);
        assert_eq!(*s.class_histogram.get("lu-factor").unwrap(), 3);
        assert_eq!(*s.class_histogram.get("lu-solve").unwrap(), 6);
        assert_eq!(*s.class_histogram.get("lu-update").unwrap(), 5);
    }

    #[test]
    fn lu_dependency_chain_depth() {
        // The factorization's critical path goes through every F_k:
        // F_0 -> U_11@0 -> F_1 -> ... so depth >= 3 nb - 2 hops-ish;
        // at minimum each F_k must be deeper than F_{k-1}.
        let g = block_lu_mdg(4, 64, &table());
        let depths = g.depths();
        let mut f_depths = Vec::new();
        for (id, n) in g.nodes() {
            if n.name.starts_with('F') && !n.name.contains(',') {
                f_depths.push((n.name.clone(), depths[id.0]));
            }
        }
        f_depths.sort();
        for w in f_depths.windows(2) {
            assert!(w[1].1 > w[0].1, "{:?} not deeper than {:?}", w[1], w[0]);
        }
    }

    #[test]
    fn lu_width_shrinks_over_time() {
        let g = block_lu_mdg(4, 64, &table());
        let widths = g.level_widths();
        let peak = *widths.iter().max().unwrap();
        // The first trailing update is the widest phase; the tail is
        // narrow.
        assert!(peak >= 9, "peak width {peak}");
        assert_eq!(*widths.last().unwrap(), 1, "STOP level");
    }

    #[test]
    fn stencil_structure() {
        let g = stencil_mdg(128, 4, 3, &table());
        assert_invariants(&g);
        // 4 init + 3*4 sweeps.
        assert_eq!(g.compute_node_count(), 16);
        let s = MdgStats::of(&g);
        assert_eq!(s.depth, 4, "init + 3 sweep layers");
        assert_eq!(s.max_width, 4);
        // Halo edges: every interior band has two neighbours.
        let halo_edges = g
            .edges()
            .filter(|(_, e)| e.transfers.len() == 1 && e.transfers[0].bytes == 128 * 8)
            .count();
        assert_eq!(halo_edges, 3 * (2 * 4 - 2));
    }

    #[test]
    fn stencil_single_band_is_a_chain() {
        let g = stencil_mdg(64, 1, 5, &table());
        let s = MdgStats::of(&g);
        assert!((s.inherent_parallelism() - 1.0).abs() < 1e-12);
        assert_eq!(s.depth, 6);
    }
}
