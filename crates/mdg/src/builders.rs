//! Builders for the MDGs used in the paper.
//!
//! * [`example_fig1_mdg`] — the three-node motivating example of Figure 1,
//!   with Amdahl parameters reverse-engineered so that the two schedule
//!   lengths quoted in the paper (15.6 s naive, 14.3 s mixed) are
//!   reproduced exactly (`alpha = 1/13`, `tau = 16.9 s`; see tests).
//! * [`complex_matmul_mdg`] — complex matrix multiplication
//!   `C = (Ar + i·Ai)(Br + i·Bi)` in the classic 4-multiply/2-add real
//!   form (paper Section 6, first test program, 64×64).
//! * [`strassen_mdg`] — one recursion level of Strassen's algorithm
//!   (paper Section 6, second test program, 128×128: seven 64×64
//!   multiplies plus 18 quadrant additions/subtractions).
//!
//! All data transfers in both test programs are of the **1D** type, as
//! stated in the paper ("All the data transfers are of the 1D type in both
//! algorithms").

use crate::graph::{Mdg, MdgBuilder, NodeId};
use crate::node::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta};

/// Per-loop-class Amdahl parameters at a reference matrix size, plus
/// scaling rules to other sizes.
///
/// The CM-5 defaults come straight from the paper's Table 1
/// (Matrix Addition 64×64: alpha = 6.7 %, tau = 3.73 ms; Matrix Multiply
/// 64×64: alpha = 12.1 %, tau = 298.47 ms). The initialization loop is not
/// parameterized in the paper; we use a small add-like cost and document
/// the choice here (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostTable {
    /// Reference square-matrix dimension the `tau` values refer to.
    pub ref_n: usize,
    /// Matrix initialization loop parameters at `ref_n`.
    pub init: AmdahlParams,
    /// Matrix addition loop parameters at `ref_n`.
    pub add: AmdahlParams,
    /// Matrix multiplication loop parameters at `ref_n`.
    pub mul: AmdahlParams,
}

impl KernelCostTable {
    /// The CM-5 parameters of the paper's Table 1 (reference size 64×64).
    pub fn cm5() -> Self {
        KernelCostTable {
            ref_n: 64,
            // Not in the paper; small, add-like. See DESIGN.md §6.
            init: AmdahlParams::new(0.05, 2.0e-3),
            add: AmdahlParams::new(0.067, 3.73e-3),
            mul: AmdahlParams::new(0.121, 298.47e-3),
        }
    }

    /// Parameters for an `n x n` loop of the given class, scaling `tau`
    /// from the reference size: O(n^2) work for init/add, O(n^3) for
    /// multiply. `alpha` is kept fixed (the paper notes alpha may depend
    /// on problem size; holding it constant keeps `t^C` posynomial and
    /// matches the measured fit at the reference size).
    pub fn params_for(&self, class: &LoopClass, n: usize) -> AmdahlParams {
        let r = n as f64 / self.ref_n as f64;
        match class {
            LoopClass::MatrixInit => AmdahlParams::new(self.init.alpha, self.init.tau * r * r),
            LoopClass::MatrixAdd => AmdahlParams::new(self.add.alpha, self.add.tau * r * r),
            LoopClass::MatrixMultiply => {
                AmdahlParams::new(self.mul.alpha, self.mul.tau * r * r * r)
            }
            LoopClass::Custom(_) => AmdahlParams::new(self.add.alpha, self.add.tau),
        }
    }
}

impl Default for KernelCostTable {
    fn default() -> Self {
        KernelCostTable::cm5()
    }
}

/// The motivating example of the paper's Figure 1: three nodes where
/// `N1` precedes `N2` and `N3`, no data-transfer costs.
///
/// With `alpha = 1/13` and `tau = 16.9 s` per node:
/// * naive all-4-processor serial execution: `3 * t(4) = 15.6 s`;
/// * mixed execution (`N1` on 4, then `N2 || N3` on 2 each):
///   `t(4) + t(2) = 5.2 + 9.1 = 14.3 s` — exactly the paper's numbers.
pub fn example_fig1_mdg() -> Mdg {
    let params = AmdahlParams::new(1.0 / 13.0, 16.9);
    let mut b = MdgBuilder::new("fig1-example");
    let n1 = b.compute("N1", params);
    let n2 = b.compute("N2", params);
    let n3 = b.compute("N3", params);
    b.edge(n1, n2, vec![]);
    b.edge(n1, n3, vec![]);
    b.finish().expect("fig1 example must be a valid DAG")
}

/// Complex matrix multiply `C = A * B` over `n x n` complex matrices,
/// expressed with four real multiplies and two real additions:
///
/// ```text
/// Cr = Ar*Br - Ai*Bi        Ci = Ar*Bi + Ai*Br
/// ```
///
/// Structure (paper Figure 6, left): four initialization loops feed four
/// multiply loops (each init feeds two multiplies), which feed the two
/// addition loops. All transfers are full `n x n` matrices, 1D type.
pub fn complex_matmul_mdg(n: usize, costs: &KernelCostTable) -> Mdg {
    let mut b = MdgBuilder::new(format!("complex-matmul-{n}x{n}"));
    let init_p = costs.params_for(&LoopClass::MatrixInit, n);
    let mul_p = costs.params_for(&LoopClass::MatrixMultiply, n);
    let add_p = costs.params_for(&LoopClass::MatrixAdd, n);
    let init_m = LoopMeta::square(LoopClass::MatrixInit, n);
    let mul_m = LoopMeta::square(LoopClass::MatrixMultiply, n);
    let add_m = LoopMeta::square(LoopClass::MatrixAdd, n);

    let ar = b.compute_with_meta("init Ar", init_p, init_m.clone());
    let ai = b.compute_with_meta("init Ai", init_p, init_m.clone());
    let br = b.compute_with_meta("init Br", init_p, init_m.clone());
    let bi = b.compute_with_meta("init Bi", init_p, init_m);

    let m1 = b.compute_with_meta("M1 = Ar*Br", mul_p, mul_m.clone());
    let m2 = b.compute_with_meta("M2 = Ai*Bi", mul_p, mul_m.clone());
    let m3 = b.compute_with_meta("M3 = Ar*Bi", mul_p, mul_m.clone());
    let m4 = b.compute_with_meta("M4 = Ai*Br", mul_p, mul_m);

    let cr = b.compute_with_meta("Cr = M1 - M2", add_p, add_m.clone());
    let ci = b.compute_with_meta("Ci = M3 + M4", add_p, add_m);

    let t = || vec![ArrayTransfer::matrix_1d(n, n)];
    b.edge(ar, m1, t());
    b.edge(br, m1, t());
    b.edge(ai, m2, t());
    b.edge(bi, m2, t());
    b.edge(ar, m3, t());
    b.edge(bi, m3, t());
    b.edge(ai, m4, t());
    b.edge(br, m4, t());
    b.edge(m1, cr, t());
    b.edge(m2, cr, t());
    b.edge(m3, ci, t());
    b.edge(m4, ci, t());

    b.finish().expect("complex matmul MDG must be a valid DAG")
}

/// One recursion level of Strassen's matrix multiplication over `n x n`
/// matrices (`n` even; quadrants are `n/2 x n/2`):
///
/// ```text
/// M1 = (A11+A22)(B11+B22)   M2 = (A21+A22) B11    M3 = A11 (B12-B22)
/// M4 = A22 (B21-B11)        M5 = (A11+A12) B22    M6 = (A21-A11)(B11+B12)
/// M7 = (A12-A22)(B21+B22)
/// C11 = M1+M4-M5+M7   C12 = M3+M5   C21 = M2+M4   C22 = M1-M2+M3+M6
/// ```
///
/// Node inventory: 8 quadrant initializations, 10 pre-addition loops
/// (S1..S10), 7 multiply loops (on `n/2` quadrants), 8 post-addition
/// loops (the 4-term C11/C22 sums are decomposed into binary adds).
/// All transfers are `n/2 x n/2` matrices, 1D type.
pub fn strassen_mdg(n: usize, costs: &KernelCostTable) -> Mdg {
    assert!(n.is_multiple_of(2) && n >= 2, "Strassen needs an even matrix dimension, got {n}");
    let h = n / 2;
    let mut b = MdgBuilder::new(format!("strassen-{n}x{n}"));
    let init_p = costs.params_for(&LoopClass::MatrixInit, h);
    let add_p = costs.params_for(&LoopClass::MatrixAdd, h);
    let mul_p = costs.params_for(&LoopClass::MatrixMultiply, h);
    let init_m = LoopMeta::square(LoopClass::MatrixInit, h);
    let add_m = LoopMeta::square(LoopClass::MatrixAdd, h);
    let mul_m = LoopMeta::square(LoopClass::MatrixMultiply, h);
    let t = || vec![ArrayTransfer::matrix_1d(h, h)];

    // Quadrant initializations.
    let a11 = b.compute_with_meta("init A11", init_p, init_m.clone());
    let a12 = b.compute_with_meta("init A12", init_p, init_m.clone());
    let a21 = b.compute_with_meta("init A21", init_p, init_m.clone());
    let a22 = b.compute_with_meta("init A22", init_p, init_m.clone());
    let b11 = b.compute_with_meta("init B11", init_p, init_m.clone());
    let b12 = b.compute_with_meta("init B12", init_p, init_m.clone());
    let b21 = b.compute_with_meta("init B21", init_p, init_m.clone());
    let b22 = b.compute_with_meta("init B22", init_p, init_m);

    // Pre-additions S1..S10.
    let pre = |name: &str, x: NodeId, y: NodeId, bld: &mut MdgBuilder| -> NodeId {
        let s = bld.compute_with_meta(name, add_p, add_m.clone());
        bld.edge(x, s, t());
        bld.edge(y, s, t());
        s
    };
    let s1 = pre("S1 = A11+A22", a11, a22, &mut b);
    let s2 = pre("S2 = B11+B22", b11, b22, &mut b);
    let s3 = pre("S3 = A21+A22", a21, a22, &mut b);
    let s4 = pre("S4 = B12-B22", b12, b22, &mut b);
    let s5 = pre("S5 = B21-B11", b21, b11, &mut b);
    let s6 = pre("S6 = A11+A12", a11, a12, &mut b);
    let s7 = pre("S7 = A21-A11", a21, a11, &mut b);
    let s8 = pre("S8 = B11+B12", b11, b12, &mut b);
    let s9 = pre("S9 = A12-A22", a12, a22, &mut b);
    let s10 = pre("S10 = B21+B22", b21, b22, &mut b);

    // Multiplies M1..M7.
    let mul = |name: &str, x: NodeId, y: NodeId, bld: &mut MdgBuilder| -> NodeId {
        let m = bld.compute_with_meta(name, mul_p, mul_m.clone());
        bld.edge(x, m, t());
        bld.edge(y, m, t());
        m
    };
    let m1 = mul("M1 = S1*S2", s1, s2, &mut b);
    let m2 = mul("M2 = S3*B11", s3, b11, &mut b);
    let m3 = mul("M3 = A11*S4", a11, s4, &mut b);
    let m4 = mul("M4 = A22*S5", a22, s5, &mut b);
    let m5 = mul("M5 = S6*B22", s6, b22, &mut b);
    let m6 = mul("M6 = S7*S8", s7, s8, &mut b);
    let m7 = mul("M7 = S9*S10", s9, s10, &mut b);

    // Post-additions for the C quadrants.
    let post = |name: &str, x: NodeId, y: NodeId, bld: &mut MdgBuilder| -> NodeId {
        let s = bld.compute_with_meta(name, add_p, add_m.clone());
        bld.edge(x, s, t());
        bld.edge(y, s, t());
        s
    };
    let t1 = post("T1 = M1+M4", m1, m4, &mut b);
    let t2 = post("T2 = T1-M5", t1, m5, &mut b);
    let _c11 = post("C11 = T2+M7", t2, m7, &mut b);
    let _c12 = post("C12 = M3+M5", m3, m5, &mut b);
    let _c21 = post("C21 = M2+M4", m2, m4, &mut b);
    let t3 = post("T3 = M1-M2", m1, m2, &mut b);
    let t4 = post("T4 = T3+M3", t3, m3, &mut b);
    let _c22 = post("C22 = T4+M6", t4, m6, &mut b);

    b.finish().expect("strassen MDG must be a valid DAG")
}

/// Fully recursive Strassen MDG: `levels` recursion levels over an
/// `n x n` product (so the leaf multiplies operate on
/// `n / 2^levels` sub-matrices and there are `7^levels` of them).
///
/// This generalizes the paper's single-level test program to a workload
/// whose node count grows geometrically — `N(L) = 19 + 7 N(L-1)` compute
/// nodes per recursion plus two top-level initializations — which is the
/// stress workload for the solver/scheduler scalability benches.
///
/// Structural differences from [`strassen_mdg`] (which mirrors the
/// paper's hand-drawn Figure 6 exactly): the inputs are two whole-matrix
/// initialization loops instead of eight per-quadrant ones, and each
/// recursion level ends in an explicit quadrant-assembly loop.
pub fn strassen_mdg_multilevel(n: usize, levels: u32, costs: &KernelCostTable) -> Mdg {
    assert!(levels >= 1, "need at least one recursion level");
    assert!(n.is_multiple_of(1 << levels), "matrix dimension {n} not divisible by 2^{levels}");
    let mut b = MdgBuilder::new(format!("strassen-{n}x{n}-L{levels}"));
    let init_p = costs.params_for(&LoopClass::MatrixInit, n);
    let init_m = LoopMeta::square(LoopClass::MatrixInit, n);
    let a = b.compute_with_meta("init A", init_p, init_m.clone());
    let bb = b.compute_with_meta("init B", init_p, init_m);
    let _c = strassen_rec(&mut b, costs, n, a, bb, levels, "");
    b.finish().expect("multilevel strassen MDG must be a valid DAG")
}

/// Recursive helper: emit the sub-MDG computing the `m x m` product of
/// the matrices produced by `a_prod` and `b_prod`; returns the producer
/// node of the result. `prefix` disambiguates node names across the
/// recursion tree.
fn strassen_rec(
    b: &mut MdgBuilder,
    costs: &KernelCostTable,
    m: usize,
    a_prod: NodeId,
    b_prod: NodeId,
    depth: u32,
    prefix: &str,
) -> NodeId {
    let mul_p = costs.params_for(&LoopClass::MatrixMultiply, m);
    let mul_m = LoopMeta::square(LoopClass::MatrixMultiply, m);
    if depth == 0 {
        let node = b.compute_with_meta(format!("{prefix}mul{m}"), mul_p, mul_m);
        b.edge(a_prod, node, vec![ArrayTransfer::matrix_1d(m, m)]);
        b.edge(b_prod, node, vec![ArrayTransfer::matrix_1d(m, m)]);
        return node;
    }
    let h = m / 2;
    let add_p = costs.params_for(&LoopClass::MatrixAdd, h);
    let add_m = LoopMeta::square(LoopClass::MatrixAdd, h);
    let quad = || vec![ArrayTransfer::matrix_1d(h, h)];

    // Pre-additions: each S reads two quadrants of one operand (a single
    // edge carrying two quadrant transfers).
    let pre = |name: String, src: NodeId, bld: &mut MdgBuilder| -> NodeId {
        let s = bld.compute_with_meta(name, add_p, add_m.clone());
        bld.edge(src, s, vec![ArrayTransfer::matrix_1d(h, h), ArrayTransfer::matrix_1d(h, h)]);
        s
    };
    let s1 = pre(format!("{prefix}S1"), a_prod, b);
    let s2 = pre(format!("{prefix}S2"), b_prod, b);
    let s3 = pre(format!("{prefix}S3"), a_prod, b);
    let s4 = pre(format!("{prefix}S4"), b_prod, b);
    let s5 = pre(format!("{prefix}S5"), b_prod, b);
    let s6 = pre(format!("{prefix}S6"), a_prod, b);
    let s7 = pre(format!("{prefix}S7"), a_prod, b);
    let s8 = pre(format!("{prefix}S8"), b_prod, b);
    let s9 = pre(format!("{prefix}S9"), a_prod, b);
    let s10 = pre(format!("{prefix}S10"), b_prod, b);

    // Quadrant "extract" views for the raw-operand multiplies (M2, M3,
    // M4, M5) are modeled as quadrant-sized transfers from the operand
    // producer; the recursive calls below consume h-sized operands.
    let m1 = strassen_rec(b, costs, h, s1, s2, depth - 1, &format!("{prefix}M1."));
    let m2 = strassen_rec(b, costs, h, s3, b_prod, depth - 1, &format!("{prefix}M2."));
    let m3 = strassen_rec(b, costs, h, a_prod, s4, depth - 1, &format!("{prefix}M3."));
    let m4 = strassen_rec(b, costs, h, a_prod, s5, depth - 1, &format!("{prefix}M4."));
    let m5 = strassen_rec(b, costs, h, s6, b_prod, depth - 1, &format!("{prefix}M5."));
    let m6 = strassen_rec(b, costs, h, s7, s8, depth - 1, &format!("{prefix}M6."));
    let m7 = strassen_rec(b, costs, h, s9, s10, depth - 1, &format!("{prefix}M7."));

    // Post-additions into C quadrants.
    let post = |name: String, x: NodeId, y: NodeId, bld: &mut MdgBuilder| -> NodeId {
        let s = bld.compute_with_meta(name, add_p, add_m.clone());
        bld.edge(x, s, quad());
        bld.edge(y, s, quad());
        s
    };
    let t1 = post(format!("{prefix}T1"), m1, m4, b);
    let t2 = post(format!("{prefix}T2"), t1, m5, b);
    let c11 = post(format!("{prefix}C11"), t2, m7, b);
    let c12 = post(format!("{prefix}C12"), m3, m5, b);
    let c21 = post(format!("{prefix}C21"), m2, m4, b);
    let t3 = post(format!("{prefix}T3"), m1, m2, b);
    let t4 = post(format!("{prefix}T4"), t3, m3, b);
    let c22 = post(format!("{prefix}C22"), t4, m6, b);

    // Quadrant assembly into the m x m result (an init-class copy loop).
    let asm_p = costs.params_for(&LoopClass::MatrixInit, m);
    let asm_m = LoopMeta::square(LoopClass::MatrixInit, m);
    let out = b.compute_with_meta(format!("{prefix}assemble{m}"), asm_p, asm_m);
    for q in [c11, c12, c21, c22] {
        b.edge(q, out, quad());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeKind, TransferKind};
    use crate::validate::assert_invariants;

    #[test]
    fn fig1_reproduces_paper_schedule_lengths() {
        let g = example_fig1_mdg();
        assert_eq!(g.compute_node_count(), 3);
        let params =
            g.nodes().find(|(_, n)| n.kind == NodeKind::Compute).map(|(_, n)| n.cost).unwrap();
        // Naive: all three nodes serialized on 4 processors.
        let naive = 3.0 * params.cost(4.0);
        assert!((naive - 15.6).abs() < 1e-9, "naive scheme must be 15.6 s, got {naive}");
        // Mixed: N1 on 4 processors, then N2 || N3 on 2 each.
        let mixed = params.cost(4.0) + params.cost(2.0);
        assert!((mixed - 14.3).abs() < 1e-9, "mixed scheme must be 14.3 s, got {mixed}");
    }

    #[test]
    fn fig1_structure() {
        let g = example_fig1_mdg();
        assert_invariants(&g);
        // N1 (node 1) has two compute successors.
        let succs: Vec<_> = g.succs(crate::graph::NodeId(1)).collect();
        assert_eq!(succs.len(), 2);
    }

    #[test]
    fn cm5_cost_table_matches_table1() {
        let t = KernelCostTable::cm5();
        assert!((t.add.alpha - 0.067).abs() < 1e-12);
        assert!((t.add.tau - 3.73e-3).abs() < 1e-12);
        assert!((t.mul.alpha - 0.121).abs() < 1e-12);
        assert!((t.mul.tau - 298.47e-3).abs() < 1e-12);
    }

    #[test]
    fn cost_table_scaling_laws() {
        let t = KernelCostTable::cm5();
        let mul128 = t.params_for(&LoopClass::MatrixMultiply, 128);
        assert!((mul128.tau - 298.47e-3 * 8.0).abs() < 1e-9, "mul scales as n^3");
        let add128 = t.params_for(&LoopClass::MatrixAdd, 128);
        assert!((add128.tau - 3.73e-3 * 4.0).abs() < 1e-9, "add scales as n^2");
        let add64 = t.params_for(&LoopClass::MatrixAdd, 64);
        assert!((add64.tau - 3.73e-3).abs() < 1e-15, "reference size unchanged");
    }

    #[test]
    fn complex_matmul_structure() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        assert_invariants(&g);
        // 4 inits + 4 muls + 2 adds = 10 compute nodes.
        assert_eq!(g.compute_node_count(), 10);
        // 12 data edges plus START/STOP wiring.
        let data_edges = g.edges().filter(|(_, e)| !e.transfers.is_empty()).count();
        assert_eq!(data_edges, 12);
        // All data transfers are 1D, of a full 64x64 matrix.
        for (_, e) in g.edges() {
            for tr in &e.transfers {
                assert_eq!(tr.kind, TransferKind::OneD);
                assert_eq!(tr.bytes, 64 * 64 * 8);
            }
        }
    }

    #[test]
    fn complex_matmul_depth() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let s = crate::stats::MdgStats::of(&g);
        assert_eq!(s.depth, 3, "init -> mul -> add pipeline");
        assert_eq!(s.max_width, 4);
    }

    #[test]
    fn strassen_structure() {
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        assert_invariants(&g);
        // 8 inits + 10 pre-adds + 7 muls + 8 post-adds = 33 compute nodes.
        assert_eq!(g.compute_node_count(), 33);
        let s = crate::stats::MdgStats::of(&g);
        assert_eq!(*s.class_histogram.get("mul").unwrap(), 7);
        assert_eq!(*s.class_histogram.get("add").unwrap(), 18);
        assert_eq!(*s.class_histogram.get("init").unwrap(), 8);
        // All transfers are 1D 64x64 quadrants.
        for (_, e) in g.edges() {
            for tr in &e.transfers {
                assert_eq!(tr.kind, TransferKind::OneD);
                assert_eq!(tr.bytes, 64 * 64 * 8);
            }
        }
    }

    #[test]
    fn strassen_serial_time_dominated_by_multiplies() {
        let t = KernelCostTable::cm5();
        let g = strassen_mdg(128, &t);
        let s = crate::stats::MdgStats::of(&g);
        let mul_time = 7.0 * t.mul.tau; // 7 64x64 multiplies at reference size
        assert!(s.serial_time > mul_time);
        assert!(mul_time / s.serial_time > 0.9, "multiplies dominate Strassen serial time");
    }

    #[test]
    fn strassen_exposes_sevenfold_multiply_parallelism() {
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        let s = crate::stats::MdgStats::of(&g);
        // The seven multiplies are mutually independent, so inherent
        // parallelism must be well above 1 (bounded by the add chains).
        assert!(s.inherent_parallelism() > 3.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn strassen_rejects_odd_size() {
        let _ = strassen_mdg(65, &KernelCostTable::cm5());
    }

    #[test]
    fn multilevel_strassen_level1_counts() {
        // N(1) = 19 leaf-bearing nodes + 7 multiplies + 2 inits = 28.
        let g = strassen_mdg_multilevel(128, 1, &KernelCostTable::cm5());
        crate::validate::assert_invariants(&g);
        // 2 inits + 10 pre-adds + 7 muls + 8 post-adds + 1 assemble = 28.
        assert_eq!(g.compute_node_count(), 28);
        let s = crate::stats::MdgStats::of(&g);
        assert_eq!(*s.class_histogram.get("mul").unwrap(), 7);
    }

    #[test]
    fn multilevel_strassen_level2_counts() {
        let g = strassen_mdg_multilevel(256, 2, &KernelCostTable::cm5());
        crate::validate::assert_invariants(&g);
        let s = crate::stats::MdgStats::of(&g);
        // 7^2 = 49 leaf multiplies at 64x64.
        assert_eq!(*s.class_histogram.get("mul").unwrap(), 49);
        // Recursion: N(L) = 19 + 7 N(L-1), N(0) = 1; plus 2 inits.
        // N(2) = 19 + 7*26 = 201; total = 203.
        assert_eq!(g.compute_node_count(), 203);
    }

    #[test]
    fn multilevel_strassen_serial_work_follows_seven_eighths_law() {
        // Each level trades 8 multiplies for 7: the multiply work at
        // level L is (7/8)^L of the classic product's.
        let t = KernelCostTable::cm5();
        let classic = |n: usize| t.params_for(&LoopClass::MatrixMultiply, n).tau;
        for levels in 1..=2u32 {
            let n = 64 << levels;
            let g = strassen_mdg_multilevel(n, levels, &t);
            let mul_time: f64 = g
                .nodes()
                .filter(|(_, nd)| matches!(nd.meta.class, LoopClass::MatrixMultiply))
                .map(|(_, nd)| nd.cost.tau)
                .sum();
            let expect = classic(n) * (7.0_f64 / 8.0).powi(levels as i32);
            assert!(
                (mul_time - expect).abs() < 1e-9 * expect,
                "levels {levels}: {mul_time} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn multilevel_strassen_rejects_bad_dimension() {
        let _ = strassen_mdg_multilevel(100, 3, &KernelCostTable::cm5());
    }

    #[test]
    fn strassen_multiplies_are_mutually_unreachable() {
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        let muls: Vec<_> = g
            .nodes()
            .filter(|(_, n)| matches!(n.meta.class, LoopClass::MatrixMultiply))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(muls.len(), 7);
        for &a in &muls {
            for &b in &muls {
                if a != b {
                    assert!(!g.reaches(a, b), "{a} must not reach {b}");
                }
            }
        }
    }
}
