//! # paradigm-mdg — Macro Dataflow Graphs
//!
//! The *Macro Dataflow Graph* (MDG) is the program representation used by
//! the PARADIGM compiler work reproduced in this workspace (Ramaswamy,
//! Sapatnekar & Banerjee, ICPP 1994). An MDG is a weighted directed acyclic
//! graph:
//!
//! * **nodes** correspond to loop nests of the source program and carry a
//!   data-parallel *processing cost* description (Amdahl's law parameters
//!   plus kernel metadata used by the simulator);
//! * **edges** correspond to precedence constraints and carry the arrays
//!   that must be redistributed between the processor groups executing the
//!   two endpoint loops (the *data transfer* description).
//!
//! Two distinguished nodes, [`NodeKind::Start`] and [`NodeKind::Stop`],
//! act as the FORK and JOIN of the whole program: START precedes every
//! node and STOP succeeds every node (directly or indirectly). The
//! [`MdgBuilder`] inserts and wires them automatically.
//!
//! This crate contains only the graph structure and graph algorithms
//! (topological order, critical path, validation, rendering); the cost
//! *functions* live in `paradigm-cost` and the allocation/scheduling
//! algorithms in `paradigm-solver` / `paradigm-sched`.
//!
//! ## Quick example
//!
//! ```
//! use paradigm_mdg::{MdgBuilder, AmdahlParams, ArrayTransfer, TransferKind};
//!
//! let mut b = MdgBuilder::new("demo");
//! let a = b.compute("A", AmdahlParams::new(0.05, 1.0));
//! let c = b.compute("C", AmdahlParams::new(0.05, 2.0));
//! b.edge(a, c, vec![ArrayTransfer::new(32 * 1024, TransferKind::OneD)]);
//! let mdg = b.finish().unwrap();
//! assert_eq!(mdg.compute_node_count(), 2);
//! // START and STOP are added automatically:
//! assert_eq!(mdg.node_count(), 4);
//! assert!(mdg.topo_order().len() == 4);
//! ```

pub mod builders;
pub mod dot;
pub mod footprint;
pub mod gallery;
pub mod graph;
pub mod hash;
pub mod json;
pub mod node;
pub mod random;
pub mod stats;
pub mod textfmt;
pub mod transform;
pub mod validate;

pub use builders::{
    complex_matmul_mdg, example_fig1_mdg, strassen_mdg, strassen_mdg_multilevel, KernelCostTable,
};
pub use footprint::{
    edge_payload_bytes, node_footprint, node_local_bytes, total_comm_bytes, NodeFootprint,
};
pub use gallery::{block_lu_mdg, fft_2d_mdg, stencil_mdg};
pub use graph::{EdgeId, Mdg, MdgBuilder, MdgError, NodeId};
pub use hash::{structural_hash, Fnv128};
pub use json::{parse as parse_json, Json, JsonError};
pub use node::{
    AmdahlParams, ArrayTransfer, Edge, LoopClass, LoopMeta, Node, NodeKind, TransferKind,
};
pub use random::{fork_join_mdg, random_layered_mdg, RandomMdgConfig};
pub use stats::MdgStats;
pub use textfmt::{from_text, to_text};
pub use transform::{fuse_serial_chains, transitive_reduction};
