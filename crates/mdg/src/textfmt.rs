//! A plain-text MDG interchange format, so graphs can be authored by
//! hand, checked into repositories, or produced by front-ends (the
//! PARADIGM compiler's own MDGs for the paper were "hand generated after
//! studying the programs" — this is the file format for doing that).
//!
//! ```text
//! mdg complex-matmul
//! # comments and blank lines are ignored
//! node 0 "init Ar" alpha=0.05 tau=0.002 class=init rows=64 cols=64
//! node 1 "M1 = Ar*Br" alpha=0.121 tau=0.29847 class=mul rows=64 cols=64
//! edge 0 1 xfer 32768 1d xfer 32768 2d
//! edge 0 1                      # pure precedence (no transfers)
//! ```
//!
//! Node ids are dense 0-based *compute node* indices (START/STOP are
//! implicit and re-created on load). `class` is optional; without it the
//! node is synthetic.

use crate::graph::{Mdg, MdgBuilder, NodeId};
use crate::node::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta, NodeKind, TransferKind};
use std::fmt::Write as _;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Serialize an MDG to the text format (compute nodes only; START/STOP
/// are implicit).
pub fn to_text(g: &Mdg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mdg {}", g.name());
    // Dense compute-node numbering.
    let mut file_id = vec![usize::MAX; g.node_count()];
    let mut next = 0usize;
    for (id, node) in g.nodes() {
        if node.kind == NodeKind::Compute {
            file_id[id.0] = next;
            next += 1;
            let mut line = format!(
                "node {} \"{}\" alpha={} tau={}",
                file_id[id.0], node.name, node.cost.alpha, node.cost.tau
            );
            let class_tag = match &node.meta.class {
                LoopClass::MatrixInit => Some("init"),
                LoopClass::MatrixAdd => Some("add"),
                LoopClass::MatrixMultiply => Some("mul"),
                // Custom classes serialize too when they carry real
                // dimensions (e.g. derived by a lint autofix) and the tag
                // survives tokenization — otherwise `--fix --write` would
                // silently drop the derived extents on the next load.
                LoopClass::Custom(s) => {
                    let clean = !s.is_empty()
                        && !s.contains(|c: char| c.is_whitespace() || c == '"' || c == '#');
                    if clean && node.meta.rows > 0 && node.meta.cols > 0 {
                        Some(s.as_str())
                    } else {
                        None
                    }
                }
            };
            if let Some(tag) = class_tag {
                let _ =
                    write!(line, " class={tag} rows={} cols={}", node.meta.rows, node.meta.cols);
            }
            let _ = writeln!(out, "{line}");
        }
    }
    for (_, e) in g.edges() {
        let (su, sv) = (file_id[e.src], file_id[e.dst]);
        if su == usize::MAX || sv == usize::MAX {
            continue; // START/STOP wiring is implicit
        }
        let mut line = format!("edge {su} {sv}");
        for t in &e.transfers {
            let k = match t.kind {
                TransferKind::OneD => "1d",
                TransferKind::TwoD => "2d",
            };
            let _ = write!(line, " xfer {} {k}", t.bytes);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Parse the text format back into an MDG.
pub fn from_text(text: &str) -> Result<Mdg, ParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<MdgBuilder> = None;
    let mut nodes: Vec<NodeId> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = tokenize(line, lineno)?;
        let head = tokens.remove(0);
        match head.as_str() {
            "mdg" => {
                if name.is_some() {
                    return Err(err(lineno, "duplicate `mdg` header"));
                }
                if tokens.len() != 1 {
                    return Err(err(lineno, "usage: mdg <name>"));
                }
                name = Some(tokens.remove(0));
                builder = Some(MdgBuilder::new(name.clone().expect("just set")));
            }
            "node" => {
                let b = builder.as_mut().ok_or(err(lineno, "`node` before `mdg` header"))?;
                if tokens.len() < 4 {
                    return Err(err(lineno, "usage: node <id> <name> alpha=A tau=T [class=..]"));
                }
                let id: usize = tokens[0]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad node id `{}`", tokens[0])))?;
                if id != nodes.len() {
                    return Err(err(
                        lineno,
                        format!("node ids must be dense; expected {}, got {id}", nodes.len()),
                    ));
                }
                let node_name = tokens[1].clone();
                let mut alpha = None;
                let mut tau = None;
                let mut class: Option<LoopClass> = None;
                let mut rows = 0usize;
                let mut cols = 0usize;
                for t in &tokens[2..] {
                    let (k, v) = t
                        .split_once('=')
                        .ok_or(err(lineno, format!("expected key=value, got `{t}`")))?;
                    match k {
                        "alpha" => {
                            alpha = Some(v.parse::<f64>().map_err(|_| err(lineno, "bad alpha"))?)
                        }
                        "tau" => tau = Some(v.parse::<f64>().map_err(|_| err(lineno, "bad tau"))?),
                        "class" => {
                            class = Some(match v {
                                "init" => LoopClass::MatrixInit,
                                "add" => LoopClass::MatrixAdd,
                                "mul" => LoopClass::MatrixMultiply,
                                other => LoopClass::Custom(other.to_string()),
                            })
                        }
                        "rows" => rows = v.parse().map_err(|_| err(lineno, "bad rows"))?,
                        "cols" => cols = v.parse().map_err(|_| err(lineno, "bad cols"))?,
                        other => return Err(err(lineno, format!("unknown key `{other}`"))),
                    }
                }
                let alpha = alpha.ok_or(err(lineno, "missing alpha="))?;
                let tau = tau.ok_or(err(lineno, "missing tau="))?;
                if !(0.0..=1.0).contains(&alpha) {
                    return Err(err(lineno, format!("alpha {alpha} outside [0,1]")));
                }
                if !tau.is_finite() || tau < 0.0 {
                    return Err(err(lineno, format!("tau {tau} invalid")));
                }
                let meta = match class {
                    Some(c) => LoopMeta { class: c, rows, cols },
                    None => LoopMeta::synthetic(),
                };
                nodes.push(b.compute_with_meta(node_name, AmdahlParams::new(alpha, tau), meta));
            }
            "edge" => {
                let b = builder.as_mut().ok_or(err(lineno, "`edge` before `mdg` header"))?;
                if tokens.len() < 2 {
                    return Err(err(lineno, "usage: edge <src> <dst> [xfer <bytes> 1d|2d]*"));
                }
                let src: usize =
                    tokens[0].parse().map_err(|_| err(lineno, "bad edge source id"))?;
                let dst: usize =
                    tokens[1].parse().map_err(|_| err(lineno, "bad edge destination id"))?;
                let su = *nodes.get(src).ok_or(err(lineno, format!("unknown node {src}")))?;
                let sv = *nodes.get(dst).ok_or(err(lineno, format!("unknown node {dst}")))?;
                let mut transfers = Vec::new();
                let mut rest = &tokens[2..];
                while !rest.is_empty() {
                    if rest[0] != "xfer" || rest.len() < 3 {
                        return Err(err(lineno, "expected: xfer <bytes> 1d|2d"));
                    }
                    let bytes: u64 =
                        rest[1].parse().map_err(|_| err(lineno, "bad transfer size"))?;
                    let kind = match rest[2].as_str() {
                        "1d" => TransferKind::OneD,
                        "2d" => TransferKind::TwoD,
                        other => return Err(err(lineno, format!("unknown kind `{other}`"))),
                    };
                    transfers.push(ArrayTransfer::new(bytes, kind));
                    rest = &rest[3..];
                }
                b.edge(su, sv, transfers);
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    let b = builder.ok_or(err(0, "missing `mdg` header"))?;
    b.finish().map_err(|e| err(0, format!("graph construction failed: {e}")))
}

/// Split on whitespace honouring double-quoted strings.
fn tokenize(line: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in line.chars() {
        match (c, in_quote) {
            ('"', false) => in_quote = true,
            ('"', true) => {
                in_quote = false;
                out.push(std::mem::take(&mut cur));
            }
            (c, false) if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            (c, _) => cur.push(c),
        }
    }
    if in_quote {
        return Err(err(lineno, "unterminated string"));
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    if out.is_empty() {
        return Err(err(lineno, "empty line after comment stripping"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{complex_matmul_mdg, strassen_mdg, KernelCostTable};
    use crate::random::{random_layered_mdg, RandomMdgConfig};
    use crate::validate::assert_invariants;

    fn roundtrip(g: &Mdg) -> Mdg {
        let text = to_text(g);
        from_text(&text).unwrap_or_else(|e| panic!("reparse of {}: {e}\n{text}", g.name()))
    }

    fn assert_same(a: &Mdg, b: &Mdg) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (id, na) in a.nodes() {
            let nb = b.node(id);
            assert_eq!(na.name, nb.name);
            assert_eq!(na.kind, nb.kind);
            assert!((na.cost.alpha - nb.cost.alpha).abs() < 1e-15);
            assert!((na.cost.tau - nb.cost.tau).abs() < 1e-15);
        }
        let mut ea: Vec<_> = a.edges().map(|(_, e)| (e.src, e.dst, e.transfers.clone())).collect();
        let mut eb: Vec<_> = b.edges().map(|(_, e)| (e.src, e.dst, e.transfers.clone())).collect();
        let key = |t: &(usize, usize, Vec<ArrayTransfer>)| (t.0, t.1);
        ea.sort_by_key(key);
        eb.sort_by_key(key);
        for (x, y) in ea.iter().zip(&eb) {
            assert_eq!((x.0, x.1), (y.0, y.1));
            assert_eq!(x.2.len(), y.2.len());
        }
    }

    #[test]
    fn paper_graphs_roundtrip() {
        let t = KernelCostTable::cm5();
        for g in [complex_matmul_mdg(64, &t), strassen_mdg(128, &t)] {
            let back = roundtrip(&g);
            assert_invariants(&back);
            assert_same(&g, &back);
            // Kernel metadata survives.
            for (id, n) in g.nodes() {
                assert_eq!(n.meta.class, back.node(id).meta.class);
                assert_eq!(n.meta.rows, back.node(id).meta.rows);
            }
        }
    }

    #[test]
    fn random_graphs_roundtrip() {
        for seed in 0..8 {
            let g = random_layered_mdg(&RandomMdgConfig::default(), seed);
            let back = roundtrip(&g);
            assert_same(&g, &back);
        }
    }

    #[test]
    fn hand_written_file_parses() {
        let text = r#"
mdg demo
# two nodes and a transfer
node 0 "producer" alpha=0.05 tau=1.5 class=mul rows=64 cols=64
node 1 "consumer loop" alpha=0.1 tau=0.5
edge 0 1 xfer 32768 1d xfer 4096 2d
"#;
        let g = from_text(text).unwrap();
        assert_eq!(g.name(), "demo");
        assert_eq!(g.compute_node_count(), 2);
        let e = g.edges().find(|(_, e)| !e.transfers.is_empty()).unwrap().1;
        assert_eq!(e.transfers.len(), 2);
        assert_eq!(e.transfers[0].bytes, 32768);
        assert_eq!(e.transfers[1].kind, TransferKind::TwoD);
        let names: Vec<_> = g.nodes().map(|(_, n)| n.name.clone()).collect();
        assert!(names.contains(&"consumer loop".to_string()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "mdg x\nnode 0 \"a\" alpha=2.0 tau=1.0\n";
        let e = from_text(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("alpha"));

        let bad2 = "mdg x\nnode 1 \"a\" alpha=0.1 tau=1.0\n";
        let e2 = from_text(bad2).unwrap_err();
        assert!(e2.message.contains("dense"));

        let bad3 = "node 0 \"a\" alpha=0.1 tau=1.0\n";
        assert!(from_text(bad3).unwrap_err().message.contains("before `mdg`"));

        let bad4 = "mdg x\nnode 0 \"a\" alpha=0.1 tau=1.0\nedge 0 5\n";
        assert!(from_text(bad4).unwrap_err().message.contains("unknown node"));
    }

    #[test]
    fn cycle_in_file_rejected() {
        let text =
            "mdg c\nnode 0 \"a\" alpha=0 tau=1\nnode 1 \"b\" alpha=0 tau=1\nedge 0 1\nedge 1 0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\nmdg t\n\nnode 0 \"x\" alpha=0 tau=1 # trailing\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.compute_node_count(), 1);
    }

    #[test]
    fn unterminated_string_rejected() {
        let text = "mdg t\nnode 0 \"oops alpha=0 tau=1\n";
        assert!(from_text(text).is_err());
    }
}
