//! Graphviz DOT export and an ASCII adjacency rendering of MDGs.
//!
//! Used by the Figure-6 reproduction harness (`repro_fig6_mdgs`) so that
//! the two test-program graphs can be inspected visually.

use crate::graph::Mdg;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Render the MDG in Graphviz DOT syntax. Node labels carry the loop name
/// and its Amdahl parameters; edge labels carry the transfer volume.
pub fn to_dot(g: &Mdg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", g.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, n) in g.nodes() {
        let (shape, label) = match n.kind {
            NodeKind::Start => ("ellipse", "START".to_string()),
            NodeKind::Stop => ("ellipse", "STOP".to_string()),
            NodeKind::Compute => {
                ("box", format!("{}\\n(alpha={:.3}, tau={:.4}s)", n.name, n.cost.alpha, n.cost.tau))
            }
        };
        let _ = writeln!(out, "  {} [shape={shape}, label=\"{label}\"];", id.0);
    }
    for (_, e) in g.edges() {
        if e.transfers.is_empty() {
            let _ = writeln!(out, "  {} -> {} [style=dashed];", e.src, e.dst);
        } else {
            let kinds: Vec<&str> = e
                .transfers
                .iter()
                .map(|t| match t.kind {
                    crate::node::TransferKind::OneD => "1D",
                    crate::node::TransferKind::TwoD => "2D",
                })
                .collect();
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}B {}\"];",
                e.src,
                e.dst,
                e.total_bytes(),
                kinds.join(",")
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a plain-text adjacency listing, one line per node:
/// `n3 [M1 = Ar*Br]  <- n1, n2   -> n7`.
pub fn to_ascii(g: &Mdg) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "MDG `{}` ({} nodes, {} edges)", g.name(), g.node_count(), g.edge_count());
    for (id, n) in g.nodes() {
        let preds: Vec<String> = g.preds(id).map(|p| p.to_string()).collect();
        let succs: Vec<String> = g.succs(id).map(|s| s.to_string()).collect();
        let _ = writeln!(
            out,
            "  {:<4} [{}]  <- [{}]  -> [{}]",
            id.to_string(),
            n.name,
            preds.join(", "),
            succs.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MdgBuilder;
    use crate::node::{AmdahlParams, ArrayTransfer, TransferKind};

    fn small() -> Mdg {
        let mut b = MdgBuilder::new("dot-test");
        let x = b.compute("x", AmdahlParams::new(0.05, 1.5));
        let y = b.compute("y", AmdahlParams::new(0.05, 2.5));
        b.edge(x, y, vec![ArrayTransfer::new(4096, TransferKind::TwoD)]);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = small();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("START"));
        assert!(dot.contains("STOP"));
        assert!(dot.contains("alpha=0.050"));
        assert!(dot.contains("4096B 2D"));
        // One line per node and per edge at minimum.
        assert!(dot.lines().count() >= g.node_count() + g.edge_count());
    }

    #[test]
    fn dot_marks_pure_precedence_edges_dashed() {
        let g = small();
        let dot = to_dot(&g);
        assert!(dot.contains("style=dashed"), "START/STOP wiring edges should be dashed");
    }

    #[test]
    fn ascii_lists_every_node() {
        let g = small();
        let txt = to_ascii(&g);
        for (_, n) in g.nodes() {
            assert!(txt.contains(&format!("[{}]", n.name)));
        }
    }
}
