//! Graphviz DOT export and an ASCII adjacency rendering of MDGs.
//!
//! Used by the Figure-6 reproduction harness (`repro_fig6_mdgs`) so that
//! the two test-program graphs can be inspected visually.

use crate::graph::Mdg;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Escape a string for use inside a double-quoted DOT id or label:
/// backslashes and quotes are backslash-escaped, and literal newlines
/// become DOT's `\n` line breaks (front-end generated names can contain
/// both, which would otherwise produce invalid DOT).
pub fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Render the MDG in Graphviz DOT syntax. Node labels carry the loop name
/// and its Amdahl parameters; edge labels carry the transfer volume.
pub fn to_dot(g: &Mdg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dot_escape(g.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (id, n) in g.nodes() {
        let (shape, label) = match n.kind {
            NodeKind::Start => ("ellipse", "START".to_string()),
            NodeKind::Stop => ("ellipse", "STOP".to_string()),
            NodeKind::Compute => (
                "box",
                format!(
                    "{}\\n(alpha={:.3}, tau={:.4}s)",
                    dot_escape(&n.name),
                    n.cost.alpha,
                    n.cost.tau
                ),
            ),
        };
        let _ = writeln!(out, "  {} [shape={shape}, label=\"{label}\"];", id.0);
    }
    for (_, e) in g.edges() {
        if e.transfers.is_empty() {
            let _ = writeln!(out, "  {} -> {} [style=dashed];", e.src, e.dst);
        } else {
            let kinds: Vec<&str> = e
                .transfers
                .iter()
                .map(|t| match t.kind {
                    crate::node::TransferKind::OneD => "1D",
                    crate::node::TransferKind::TwoD => "2D",
                })
                .collect();
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}B {}\"];",
                e.src,
                e.dst,
                e.total_bytes(),
                kinds.join(",")
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render a plain-text adjacency listing, one line per node:
/// `n3 [M1 = Ar*Br]  <- n1, n2   -> n7`.
pub fn to_ascii(g: &Mdg) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "MDG `{}` ({} nodes, {} edges)", g.name(), g.node_count(), g.edge_count());
    for (id, n) in g.nodes() {
        let preds: Vec<String> = g.preds(id).map(|p| p.to_string()).collect();
        let succs: Vec<String> = g.succs(id).map(|s| s.to_string()).collect();
        let _ = writeln!(
            out,
            "  {:<4} [{}]  <- [{}]  -> [{}]",
            id.to_string(),
            n.name,
            preds.join(", "),
            succs.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MdgBuilder;
    use crate::node::{AmdahlParams, ArrayTransfer, TransferKind};

    fn small() -> Mdg {
        let mut b = MdgBuilder::new("dot-test");
        let x = b.compute("x", AmdahlParams::new(0.05, 1.5));
        let y = b.compute("y", AmdahlParams::new(0.05, 2.5));
        b.edge(x, y, vec![ArrayTransfer::new(4096, TransferKind::TwoD)]);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = small();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("START"));
        assert!(dot.contains("STOP"));
        assert!(dot.contains("alpha=0.050"));
        assert!(dot.contains("4096B 2D"));
        // One line per node and per edge at minimum.
        assert!(dot.lines().count() >= g.node_count() + g.edge_count());
    }

    #[test]
    fn dot_marks_pure_precedence_edges_dashed() {
        let g = small();
        let dot = to_dot(&g);
        assert!(dot.contains("style=dashed"), "START/STOP wiring edges should be dashed");
    }

    #[test]
    fn hostile_names_are_escaped() {
        let mut b = MdgBuilder::new("evil \"graph\"\nname");
        let x = b.compute("say \"hi\"\nback\\slash", AmdahlParams::new(0.1, 1.0));
        let y = b.compute("ok", AmdahlParams::new(0.1, 1.0));
        b.edge(x, y, vec![]);
        let g = b.finish().unwrap();
        let dot = to_dot(&g);
        // Every double quote inside an id/label is escaped: strip the
        // escaped forms and no stray quote may remain inside a label.
        assert!(dot.contains("digraph \"evil \\\"graph\\\"\\nname\""));
        assert!(dot.contains("say \\\"hi\\\"\\nback\\\\slash\\n(alpha="));
        // Balanced quotes per line (escaped ones excluded) — a literal
        // newline or stray quote in a label would break this.
        for line in dot.lines() {
            let unescaped = line.replace("\\\\", "").replace("\\\"", "").matches('"').count();
            assert_eq!(unescaped % 2, 0, "unbalanced quotes in {line:?}");
        }
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        assert_eq!(dot_escape("M1 = Ar*Br"), "M1 = Ar*Br");
        assert_eq!(dot_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn ascii_lists_every_node() {
        let g = small();
        let txt = to_ascii(&g);
        for (_, n) in g.nodes() {
            assert!(txt.contains(&format!("[{}]", n.name)));
        }
    }
}
