//! A hand-rolled JSON value model, writer, and parser (std only).
//!
//! The serve protocol is line-delimited JSON and the analyze layer's
//! certificates round-trip through the same format; the build environment
//! has no registry access, so this module implements the needed subset
//! of RFC 8259 directly: objects, arrays, strings (with the standard
//! escapes plus `\uXXXX`), finite numbers, booleans, and null.
//!
//! Deliberate deviations, all in the *writer*:
//!
//! * object member order is preserved (members are a `Vec`, not a map),
//!   so output is deterministic and diff-friendly;
//! * non-finite numbers serialize as `null` (JSON has no NaN/Inf);
//! * output is single-line — never contains a raw newline — so a value
//!   per line *is* the framing.
//!
//! The parser accepts any whitespace-insensitive standard JSON document
//! and rejects trailing garbage, duplicate-key objects are allowed
//! (last occurrence wins via [`Json::get`]'s first-match — callers in
//! this workspace never emit duplicates).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and magnitudes beyond
    /// `2^53` where `f64` loses integer exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= 9.007_199_254_740_992e15 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 prints the shortest round-trip form.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            // Surrogates are not paired (the protocol is
                            // ASCII-heavy); map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&v.render()).expect("rendered JSON must reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num(0.0),
            Json::num(-12.5),
            Json::num(1e-9),
            Json::num(98765432.0),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t tab"),
            Json::str("unicode Φ λ"),
        ] {
            assert_eq!(roundtrip(&v), v, "{}", v.render());
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Json::Obj(vec![
            ("op".into(), Json::str("solve")),
            ("procs".into(), Json::num(16.0)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("inner".into(), Json::Obj(vec![("empty_arr".into(), Json::Arr(vec![]))])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn output_is_single_line() {
        let v = Json::Obj(vec![("k".into(), Json::str("line\nbreak"))]);
        assert!(!v.render().contains('\n'));
    }

    #[test]
    fn member_order_is_preserved() {
        let v = Json::Obj(vec![("z".into(), Json::num(1.0)), ("a".into(), Json::num(2.0))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"s":"x","n":3,"frac":1.5,"b":false,"a":[1,2],"neg":-1}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("frac").and_then(Json::as_u64), None);
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn unicode_escape_parses() {
        let v = parse(r#""AΦ""#).unwrap();
        assert_eq!(v.as_str(), Some("AΦ"));
    }

    #[test]
    fn errors_are_located() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
        let e = parse("[tru]").unwrap_err();
        assert!(e.message.contains("true"), "{e}");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }
}
