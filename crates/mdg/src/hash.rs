//! Canonical structural hashing of MDGs, for content-addressed caching.
//!
//! [`structural_hash`] produces a 128-bit digest of an [`Mdg`] that is
//! **invariant under node and edge insertion order**: two graphs built by
//! adding the same nodes and edges in different orders (and hence with
//! different internal indices) hash identically. The serving layer uses
//! this as the graph component of its cache key, so identical workloads
//! submitted by different clients — or parsed from differently-ordered
//! text files — deduplicate to one solve.
//!
//! The digest covers everything the pipeline consumes:
//!
//! * per-node payloads — kind, name, Amdahl `alpha`/`tau` (bit-exact),
//!   loop class tag, and rows/cols metadata. Node *names* are included
//!   because they appear verbatim in solved responses (the allocation
//!   table), so two graphs that differ only in names must not share a
//!   cache entry;
//! * per-edge payloads — the transfer list in its on-edge order (bytes
//!   and 1D/2D kind per transfer);
//! * the DAG shape, via a two-direction refinement (below).
//!
//! The graph's own *name* is deliberately excluded — it is presentation
//! metadata, and callers that care (the serve layer) report the
//! request's name rather than the cached one.
//!
//! ## How order-invariance is achieved
//!
//! Each node gets a *forward* signature computed in topological order
//! (a digest of its payload plus the **sorted** multiset of
//! `(forward(pred), edge payload)` contributions) and a *backward*
//! signature computed the same way over successors in reverse
//! topological order. A node's canonical signature combines both
//! directions, so nodes are discriminated by their full ancestry *and*
//! descendance. The graph digest is the digest of the sorted multiset
//! of node signatures plus the node/edge counts. Every multiset is
//! sorted before digesting, so neither adjacency order nor index
//! assignment can leak into the result.
//!
//! This is a hash, not an isomorphism certificate: distinct graphs can
//! collide (128-bit FNV-1a offers no adversarial resistance), but for
//! cache keying the failure odds are negligible and the cost is one
//! `O((V + E) log E)` pass.

use crate::graph::{Mdg, NodeId};
use crate::node::{Edge, LoopClass, Node, NodeKind};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental 128-bit FNV-1a hasher.
///
/// Public so downstream crates (the serving layer) can extend a graph's
/// structural digest with request parameters when forming cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb an `f64` bit-exactly (`-0.0` and `0.0` hash differently;
    /// the cost model never produces negative zero).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// Absorb a length-prefixed string (prefixing prevents ambiguity
    /// between e.g. `("ab", "c")` and `("a", "bc")`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

/// Digest of one node's pipeline-visible payload.
fn node_payload_hash(n: &Node) -> u128 {
    let mut h = Fnv128::new();
    h.write_u64(match n.kind {
        NodeKind::Start => 1,
        NodeKind::Stop => 2,
        NodeKind::Compute => 3,
    });
    h.write_str(&n.name);
    h.write_f64(n.cost.alpha);
    h.write_f64(n.cost.tau);
    let class_tag = match &n.meta.class {
        LoopClass::MatrixInit => "init",
        LoopClass::MatrixAdd => "add",
        LoopClass::MatrixMultiply => "mul",
        LoopClass::Custom(s) => s.as_str(),
    };
    h.write_str(class_tag);
    h.write_u64(n.meta.rows as u64);
    h.write_u64(n.meta.cols as u64);
    h.finish()
}

/// Digest of one edge's transfer list (order-sensitive within the edge:
/// the list is part of the edge's identity, not a set).
fn edge_payload_hash(e: &Edge) -> u128 {
    let mut h = Fnv128::new();
    h.write_u64(e.transfers.len() as u64);
    for t in &e.transfers {
        h.write_u64(t.bytes);
        h.write_u64(match t.kind {
            crate::node::TransferKind::OneD => 1,
            crate::node::TransferKind::TwoD => 2,
        });
    }
    h.finish()
}

/// One direction of the refinement: signature of `v` from the sorted
/// multiset of `(neighbour signature, edge payload)` contributions.
fn combine(payload: u128, mut contribs: Vec<u128>) -> u128 {
    contribs.sort_unstable();
    let mut h = Fnv128::new();
    h.write_u128(payload);
    h.write_u64(contribs.len() as u64);
    for c in contribs {
        h.write_u128(c);
    }
    h.finish()
}

/// Canonical structural digest of a graph. See the module docs for what
/// is covered and the invariance guarantee.
pub fn structural_hash(g: &Mdg) -> u128 {
    let n = g.node_count();
    let payload: Vec<u128> = g.nodes().map(|(_, node)| node_payload_hash(node)).collect();
    let edge_payload: Vec<u128> = g.edges().map(|(_, e)| edge_payload_hash(e)).collect();

    // Forward signatures: ancestors only, well-defined in topo order.
    let mut fwd = vec![0u128; n];
    for &v in g.topo_order() {
        let contribs: Vec<u128> = g
            .in_edges(v)
            .iter()
            .map(|&eid| {
                let mut h = Fnv128::new();
                h.write_u128(fwd[g.edge(eid).src]);
                h.write_u128(edge_payload[eid.index()]);
                h.finish()
            })
            .collect();
        fwd[v.index()] = combine(payload[v.index()], contribs);
    }

    // Backward signatures: descendants only, reverse topo order.
    let mut bwd = vec![0u128; n];
    for &v in g.topo_order().iter().rev() {
        let contribs: Vec<u128> = g
            .out_edges(v)
            .iter()
            .map(|&eid| {
                let mut h = Fnv128::new();
                h.write_u128(bwd[g.edge(eid).dst]);
                h.write_u128(edge_payload[eid.index()]);
                h.finish()
            })
            .collect();
        bwd[v.index()] = combine(payload[v.index()], contribs);
    }

    let mut sigs: Vec<u128> = (0..n)
        .map(|i| {
            let mut h = Fnv128::new();
            h.write_u128(fwd[i]);
            h.write_u128(bwd[i]);
            h.finish()
        })
        .collect();
    sigs.sort_unstable();

    let mut h = Fnv128::new();
    h.write_u64(n as u64);
    h.write_u64(g.edge_count() as u64);
    for s in sigs {
        h.write_u128(s);
    }
    h.finish()
}

/// Per-node canonical signatures (same refinement as
/// [`structural_hash`]), exposed for diagnostics: two nodes with equal
/// signatures are structurally indistinguishable to the hash.
pub fn node_signatures(g: &Mdg) -> Vec<(NodeId, u128)> {
    let n = g.node_count();
    let payload: Vec<u128> = g.nodes().map(|(_, node)| node_payload_hash(node)).collect();
    let edge_payload: Vec<u128> = g.edges().map(|(_, e)| edge_payload_hash(e)).collect();
    let mut fwd = vec![0u128; n];
    for &v in g.topo_order() {
        let contribs: Vec<u128> = g
            .in_edges(v)
            .iter()
            .map(|&eid| {
                let mut h = Fnv128::new();
                h.write_u128(fwd[g.edge(eid).src]);
                h.write_u128(edge_payload[eid.index()]);
                h.finish()
            })
            .collect();
        fwd[v.index()] = combine(payload[v.index()], contribs);
    }
    let mut bwd = vec![0u128; n];
    for &v in g.topo_order().iter().rev() {
        let contribs: Vec<u128> = g
            .out_edges(v)
            .iter()
            .map(|&eid| {
                let mut h = Fnv128::new();
                h.write_u128(bwd[g.edge(eid).dst]);
                h.write_u128(edge_payload[eid.index()]);
                h.finish()
            })
            .collect();
        bwd[v.index()] = combine(payload[v.index()], contribs);
    }
    (0..n)
        .map(|i| {
            let mut h = Fnv128::new();
            h.write_u128(fwd[i]);
            h.write_u128(bwd[i]);
            (NodeId(i), h.finish())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MdgBuilder;
    use crate::node::{AmdahlParams, ArrayTransfer, TransferKind};

    fn tiny(reversed: bool, tau_b: f64) -> Mdg {
        // a -> b, a -> c, with optional reversed insertion order of b/c.
        let mut bld = MdgBuilder::new("tiny");
        let a = bld.compute("a", AmdahlParams::new(0.1, 1.0));
        let (b, c) = if reversed {
            let c = bld.compute("c", AmdahlParams::new(0.2, 3.0));
            let b = bld.compute("b", AmdahlParams::new(0.1, tau_b));
            (b, c)
        } else {
            let b = bld.compute("b", AmdahlParams::new(0.1, tau_b));
            let c = bld.compute("c", AmdahlParams::new(0.2, 3.0));
            (b, c)
        };
        if reversed {
            bld.edge(a, c, vec![]);
            bld.edge(a, b, vec![ArrayTransfer::new(64, TransferKind::OneD)]);
        } else {
            bld.edge(a, b, vec![ArrayTransfer::new(64, TransferKind::OneD)]);
            bld.edge(a, c, vec![]);
        }
        bld.finish().unwrap()
    }

    #[test]
    fn insertion_order_does_not_matter() {
        assert_eq!(structural_hash(&tiny(false, 2.0)), structural_hash(&tiny(true, 2.0)));
    }

    #[test]
    fn payload_changes_change_the_hash() {
        assert_ne!(structural_hash(&tiny(false, 2.0)), structural_hash(&tiny(false, 2.5)));
    }

    #[test]
    fn graph_name_is_excluded() {
        let mut b1 = MdgBuilder::new("one");
        b1.compute("x", AmdahlParams::new(0.0, 1.0));
        let mut b2 = MdgBuilder::new("two");
        b2.compute("x", AmdahlParams::new(0.0, 1.0));
        assert_eq!(structural_hash(&b1.finish().unwrap()), structural_hash(&b2.finish().unwrap()));
    }

    #[test]
    fn node_names_are_included() {
        let mut b1 = MdgBuilder::new("g");
        b1.compute("x", AmdahlParams::new(0.0, 1.0));
        let mut b2 = MdgBuilder::new("g");
        b2.compute("y", AmdahlParams::new(0.0, 1.0));
        assert_ne!(structural_hash(&b1.finish().unwrap()), structural_hash(&b2.finish().unwrap()));
    }

    #[test]
    fn edge_direction_matters() {
        let build = |flip: bool| {
            let mut b = MdgBuilder::new("g");
            let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
            let y = b.compute("y", AmdahlParams::new(0.0, 1.0));
            // Same payloads but x/y differ by the extra edge endpoint.
            let z = b.compute("z", AmdahlParams::new(0.5, 2.0));
            if flip {
                b.edge(y, x, vec![]);
            } else {
                b.edge(x, y, vec![]);
            }
            b.edge(x, z, vec![]);
            b.finish().unwrap()
        };
        assert_ne!(structural_hash(&build(false)), structural_hash(&build(true)));
    }

    #[test]
    fn transfer_kind_matters() {
        let build = |kind: TransferKind| {
            let mut b = MdgBuilder::new("g");
            let x = b.compute("x", AmdahlParams::new(0.0, 1.0));
            let y = b.compute("y", AmdahlParams::new(0.0, 1.0));
            b.edge(x, y, vec![ArrayTransfer::new(128, kind)]);
            b.finish().unwrap()
        };
        assert_ne!(
            structural_hash(&build(TransferKind::OneD)),
            structural_hash(&build(TransferKind::TwoD))
        );
    }

    #[test]
    fn hash_is_deterministic_across_calls() {
        let g = tiny(false, 2.0);
        assert_eq!(structural_hash(&g), structural_hash(&g));
    }

    #[test]
    fn node_signatures_distinguish_asymmetric_nodes() {
        let g = tiny(false, 2.0);
        let sigs = node_signatures(&g);
        assert_eq!(sigs.len(), g.node_count());
        // b and c carry different payloads, so their signatures differ.
        let by_name = |name: &str| {
            sigs.iter()
                .find(|(id, _)| g.node(*id).name == name)
                .map(|&(_, s)| s)
                .expect("node present")
        };
        assert_ne!(by_name("b"), by_name("c"));
    }

    #[test]
    fn fnv_str_prefixing_disambiguates() {
        let mut a = Fnv128::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
