//! Summary statistics over an MDG — used by reports, the Figure-6
//! reproduction, and the random-workload benches.

use crate::graph::Mdg;
use crate::node::{LoopClass, NodeKind};
use std::collections::BTreeMap;

/// Aggregate statistics describing an MDG's shape and weight.
#[derive(Debug, Clone, PartialEq)]
pub struct MdgStats {
    /// Total nodes including START/STOP.
    pub nodes: usize,
    /// Compute nodes only.
    pub compute_nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// Edges carrying at least one array transfer.
    pub data_edges: usize,
    /// Total bytes moved across all edges.
    pub total_transfer_bytes: u64,
    /// Longest START→STOP path in hops (compute nodes on it).
    pub depth: usize,
    /// Maximum number of nodes at any depth level (graph width).
    pub max_width: usize,
    /// Sum of single-processor times `tau` over compute nodes (the serial
    /// execution time of the whole program).
    pub serial_time: f64,
    /// Critical-path time at one processor per node, zero transfer cost —
    /// an upper bound on attainable functional parallelism.
    pub single_proc_critical_path: f64,
    /// Compute node count per loop class tag.
    pub class_histogram: BTreeMap<String, usize>,
}

impl MdgStats {
    /// Compute all statistics for `g`.
    pub fn of(g: &Mdg) -> MdgStats {
        let mut class_histogram: BTreeMap<String, usize> = BTreeMap::new();
        let mut serial_time = 0.0;
        for (_, n) in g.nodes() {
            if n.kind == NodeKind::Compute {
                serial_time += n.cost.tau;
                let tag = match &n.meta.class {
                    LoopClass::Custom(s) => s.clone(),
                    other => other.tag().to_string(),
                };
                *class_histogram.entry(tag).or_insert(0) += 1;
            }
        }
        let data_edges = g.edges().filter(|(_, e)| !e.transfers.is_empty()).count();
        let total_transfer_bytes = g.edges().map(|(_, e)| e.total_bytes()).sum();
        let depths = g.depths();
        let depth_hops = depths.iter().copied().max().unwrap_or(0);
        // Subtract the two structural hops (START and STOP levels).
        let depth = depth_hops.saturating_sub(1);
        let max_width = g.level_widths().into_iter().max().unwrap_or(0);
        let single_proc_critical_path = g.critical_path_with(|v| g.node(v).cost.tau, |_| 0.0);
        MdgStats {
            nodes: g.node_count(),
            compute_nodes: g.compute_node_count(),
            edges: g.edge_count(),
            data_edges,
            total_transfer_bytes,
            depth,
            max_width,
            serial_time,
            single_proc_critical_path,
            class_histogram,
        }
    }

    /// The graph's inherent functional parallelism: serial time divided by
    /// the single-processor critical path. 1.0 for a pure chain.
    pub fn inherent_parallelism(&self) -> f64 {
        if self.single_proc_critical_path > 0.0 {
            self.serial_time / self.single_proc_critical_path
        } else {
            1.0
        }
    }

    /// Render a compact multi-line summary for reports.
    pub fn render(&self, name: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("MDG `{name}`\n"));
        s.push_str(&format!(
            "  nodes: {} ({} compute), edges: {} ({} with data)\n",
            self.nodes, self.compute_nodes, self.edges, self.data_edges
        ));
        s.push_str(&format!(
            "  depth: {}, max width: {}, transfer volume: {} bytes\n",
            self.depth, self.max_width, self.total_transfer_bytes
        ));
        s.push_str(&format!(
            "  serial time: {:.4} s, 1-proc critical path: {:.4} s, inherent parallelism: {:.2}x\n",
            self.serial_time,
            self.single_proc_critical_path,
            self.inherent_parallelism()
        ));
        let classes: Vec<String> =
            self.class_histogram.iter().map(|(k, v)| format!("{k}: {v}")).collect();
        s.push_str(&format!("  loop classes: {{{}}}\n", classes.join(", ")));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MdgBuilder;
    use crate::node::{AmdahlParams, ArrayTransfer, LoopMeta, TransferKind};

    #[test]
    fn stats_of_fork_join() {
        let mut b = MdgBuilder::new("fj");
        let src = b.compute_with_meta(
            "src",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 64),
        );
        let l = b.compute_with_meta(
            "l",
            AmdahlParams::new(0.1, 2.0),
            LoopMeta::square(LoopClass::MatrixMultiply, 64),
        );
        let r = b.compute_with_meta(
            "r",
            AmdahlParams::new(0.1, 3.0),
            LoopMeta::square(LoopClass::MatrixMultiply, 64),
        );
        let sink = b.compute_with_meta(
            "sink",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixAdd, 64),
        );
        b.edge(src, l, vec![ArrayTransfer::new(100, TransferKind::OneD)]);
        b.edge(src, r, vec![ArrayTransfer::new(200, TransferKind::OneD)]);
        b.edge(l, sink, vec![]);
        b.edge(r, sink, vec![]);
        let g = b.finish().unwrap();
        let s = MdgStats::of(&g);
        assert_eq!(s.compute_nodes, 4);
        assert_eq!(s.data_edges, 2);
        assert_eq!(s.total_transfer_bytes, 300);
        assert_eq!(s.depth, 3); // src -> (l|r) -> sink
        assert_eq!(s.max_width, 2);
        assert!((s.serial_time - 7.0).abs() < 1e-12);
        // critical path: src(1) + r(3) + sink(1) = 5
        assert!((s.single_proc_critical_path - 5.0).abs() < 1e-12);
        assert!((s.inherent_parallelism() - 7.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.class_histogram.get("mul"), Some(&2));
        assert_eq!(s.class_histogram.get("add"), Some(&1));
        assert_eq!(s.class_histogram.get("init"), Some(&1));
    }

    #[test]
    fn render_contains_key_fields() {
        let mut b = MdgBuilder::new("one");
        b.compute("solo", AmdahlParams::new(0.0, 4.0));
        let g = b.finish().unwrap();
        let text = MdgStats::of(&g).render("one");
        assert!(text.contains("MDG `one`"));
        assert!(text.contains("1 compute"));
        assert!(text.contains("serial time: 4.0000"));
    }

    #[test]
    fn chain_has_unit_parallelism() {
        let mut b = MdgBuilder::new("chain");
        let mut prev = b.compute("n0", AmdahlParams::new(0.0, 1.0));
        for i in 1..5 {
            let next = b.compute(format!("n{i}"), AmdahlParams::new(0.0, 1.0));
            b.edge(prev, next, vec![]);
            prev = next;
        }
        let g = b.finish().unwrap();
        let s = MdgStats::of(&g);
        assert!((s.inherent_parallelism() - 1.0).abs() < 1e-12);
        assert_eq!(s.depth, 5);
        assert_eq!(s.max_width, 1);
    }
}
