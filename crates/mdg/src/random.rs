//! Random layered MDG generation for stress tests, property tests, and
//! the ablation benches (the paper's earlier results were obtained on
//! synthetic benchmarks of this style; see its Section 1.3).

use crate::graph::{Mdg, MdgBuilder};
use crate::node::{AmdahlParams, ArrayTransfer, TransferKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the layered random graph model: `layers` layers with
/// `width_min..=width_max` nodes each; every node receives at least one
/// predecessor in the previous layer, and additional inter-layer edges are
/// added with probability `edge_prob`.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomMdgConfig {
    /// Number of layers (>= 1).
    pub layers: usize,
    /// Minimum nodes per layer (>= 1).
    pub width_min: usize,
    /// Maximum nodes per layer.
    pub width_max: usize,
    /// Probability of each optional previous-layer edge.
    pub edge_prob: f64,
    /// Serial fraction range for node costs.
    pub alpha_range: (f64, f64),
    /// Single-processor time range (seconds) for node costs.
    pub tau_range: (f64, f64),
    /// Byte-size range for array transfers.
    pub bytes_range: (u64, u64),
    /// Probability that a transfer is 2D rather than 1D.
    pub two_d_prob: f64,
    /// Per-node probability of one extra edge from a layer *further*
    /// back than the previous one (creates transitive shortcuts).
    pub skip_prob: f64,
}

impl Default for RandomMdgConfig {
    fn default() -> Self {
        RandomMdgConfig {
            layers: 4,
            width_min: 1,
            width_max: 4,
            edge_prob: 0.35,
            alpha_range: (0.02, 0.25),
            tau_range: (0.01, 1.0),
            bytes_range: (1 << 10, 1 << 18),
            two_d_prob: 0.3,
            skip_prob: 0.2,
        }
    }
}

impl RandomMdgConfig {
    /// A configuration producing roughly `nodes` compute nodes in a
    /// fixed-width layered shape — the scalable input family for the
    /// distributed ADMM solver (10^2 .. 10^5 nodes and beyond). The
    /// layer width grows slowly with size so huge instances stay
    /// plausibly wide rather than degenerating into one long chain;
    /// edge probability shrinks with width to keep average fan-in
    /// (and thus the edge count) roughly constant per node.
    pub fn sized(nodes: usize) -> Self {
        let nodes = nodes.max(8);
        // width ~ 8 at 100 nodes, ~16 at 10^4, ~32 at 10^5.
        let width = (2.0 * (nodes as f64).sqrt().sqrt()).round().clamp(4.0, 32.0) as usize;
        let layers = nodes.div_ceil(width).max(2);
        RandomMdgConfig {
            layers,
            width_min: width,
            width_max: width,
            edge_prob: (4.0 / width as f64).min(0.5),
            ..RandomMdgConfig::default()
        }
    }
}

/// Generate a random layered MDG. Deterministic for a given `seed`.
pub fn random_layered_mdg(cfg: &RandomMdgConfig, seed: u64) -> Mdg {
    assert!(cfg.layers >= 1, "need at least one layer");
    assert!(cfg.width_min >= 1 && cfg.width_min <= cfg.width_max, "bad width range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MdgBuilder::new(format!("random-l{}-s{}", cfg.layers, seed));

    let mut layers: Vec<Vec<crate::graph::NodeId>> = Vec::with_capacity(cfg.layers);
    let mut counter = 0usize;
    for li in 0..cfg.layers {
        let width = rng.random_range(cfg.width_min..=cfg.width_max);
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let alpha = rng.random_range(cfg.alpha_range.0..=cfg.alpha_range.1);
            let tau = rng.random_range(cfg.tau_range.0..=cfg.tau_range.1);
            let id = b.compute(format!("L{li}N{counter}"), AmdahlParams::new(alpha, tau));
            counter += 1;
            layer.push(id);
        }
        layers.push(layer);
    }

    let transfer = |rng: &mut StdRng| -> Vec<ArrayTransfer> {
        // Round down to whole f64 elements so generated graphs pass the
        // `edge-unit-sanity` lint (transfers model f64 arrays).
        let bytes = rng.random_range(cfg.bytes_range.0..=cfg.bytes_range.1) / 8 * 8;
        let kind = if rng.random::<f64>() < cfg.two_d_prob {
            TransferKind::TwoD
        } else {
            TransferKind::OneD
        };
        vec![ArrayTransfer::new(bytes, kind)]
    };

    for li in 1..cfg.layers {
        // Split the borrow: previous layer (read) vs current layer (read).
        let (prevs, curs) = layers.split_at(li);
        let prev = &prevs[li - 1];
        let cur = &curs[0];
        for &v in cur {
            // Mandatory predecessor keeps the graph connected layer-to-layer.
            let anchor = prev[rng.random_range(0..prev.len())];
            b.edge(anchor, v, transfer(&mut rng));
            for &u in prev {
                if u != anchor && rng.random::<f64>() < cfg.edge_prob {
                    b.edge(u, v, transfer(&mut rng));
                }
            }
            // Occasional long-range edge from an earlier layer: produces
            // transitive shortcuts and deeper fan-in patterns. Half carry
            // data; half are pure precedence constraints (the kind the
            // transitive reduction can remove).
            if li >= 2 && rng.random::<f64>() < cfg.skip_prob {
                let lj = rng.random_range(0..li - 1);
                let u = prevs[lj][rng.random_range(0..prevs[lj].len())];
                let payload =
                    if rng.random::<f64>() < 0.5 { transfer(&mut rng) } else { Vec::new() };
                b.edge(u, v, payload);
            }
        }
    }

    b.finish().expect("layered construction is acyclic by layer ordering")
}

/// Generate a seeded fork-join MDG: `stages` sequential stages, each a
/// scatter node fanning out to `width` parallel workers that all join
/// into the next stage's scatter. The classic data-parallel skeleton
/// (and the ADMM partitioner's best case: stage boundaries are natural
/// min-cuts). Deterministic for a given `seed`; compute node count is
/// `stages * (width + 2) + 1`.
pub fn fork_join_mdg(stages: usize, width: usize, seed: u64) -> Mdg {
    assert!(stages >= 1, "need at least one stage");
    assert!(width >= 1, "need at least one worker per stage");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = MdgBuilder::new(format!("fork-join-s{stages}-w{width}-r{seed}"));

    let xfer = |rng: &mut StdRng| -> Vec<ArrayTransfer> {
        vec![ArrayTransfer::new(rng.random_range(1u64 << 10..=1 << 16) / 8 * 8, TransferKind::OneD)]
    };
    // Serial-ish scatter/gather nodes, parallel-friendly workers.
    let scatter_cost = |rng: &mut StdRng| {
        AmdahlParams::new(rng.random_range(0.3..=0.6), rng.random_range(0.02..=0.1))
    };
    let worker_cost = |rng: &mut StdRng| {
        AmdahlParams::new(rng.random_range(0.02..=0.1), rng.random_range(0.2..=1.0))
    };

    let mut prev_join: Option<crate::graph::NodeId> = None;
    for s in 0..stages {
        let scatter = b.compute(format!("S{s}scatter"), scatter_cost(&mut rng));
        if let Some(j) = prev_join {
            b.edge(j, scatter, xfer(&mut rng));
        }
        let join = b.compute(format!("S{s}join"), scatter_cost(&mut rng));
        for w in 0..width {
            let worker = b.compute(format!("S{s}W{w}"), worker_cost(&mut rng));
            b.edge(scatter, worker, xfer(&mut rng));
            b.edge(worker, join, xfer(&mut rng));
        }
        prev_join = Some(join);
    }
    let tail = b.compute("gather", scatter_cost(&mut rng));
    if let Some(j) = prev_join {
        b.edge(j, tail, xfer(&mut rng));
    }
    b.finish().expect("fork-join construction is acyclic by stage ordering")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::check_invariants;

    #[test]
    fn sized_config_hits_the_requested_scale() {
        for target in [100usize, 1_000, 10_000] {
            let g = random_layered_mdg(&RandomMdgConfig::sized(target), 42);
            let n = g.compute_node_count();
            assert!(n >= target * 9 / 10 && n <= target * 11 / 10 + 40, "target {target}, got {n}");
            check_invariants(&g).unwrap_or_else(|e| panic!("target {target}: {e}"));
        }
    }

    #[test]
    fn fork_join_shape_and_determinism() {
        let g = fork_join_mdg(3, 4, 7);
        assert_eq!(g.compute_node_count(), 3 * (4 + 2) + 1);
        check_invariants(&g).unwrap();
        let h = fork_join_mdg(3, 4, 7);
        assert_eq!(crate::hash::structural_hash(&g), crate::hash::structural_hash(&h));
        let other = fork_join_mdg(3, 4, 8);
        assert_ne!(crate::hash::structural_hash(&g), crate::hash::structural_hash(&other));
    }

    #[test]
    fn random_graphs_are_valid() {
        for seed in 0..20 {
            let g = random_layered_mdg(&RandomMdgConfig::default(), seed);
            check_invariants(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn same_seed_same_graph() {
        let cfg = RandomMdgConfig::default();
        let a = random_layered_mdg(&cfg, 7);
        let b = random_layered_mdg(&cfg, 7);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (ia, na) in a.nodes() {
            let nb = b.node(ia);
            assert_eq!(na.name, nb.name);
            assert_eq!(na.cost, nb.cost);
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let cfg = RandomMdgConfig::default();
        let a = random_layered_mdg(&cfg, 1);
        let b = random_layered_mdg(&cfg, 2);
        // Graph-level difference: node counts, edge counts, or some cost.
        let same = a.node_count() == b.node_count()
            && a.edge_count() == b.edge_count()
            && a.nodes().zip(b.nodes()).all(|((_, x), (_, y))| x.cost == y.cost);
        assert!(!same, "seeds 1 and 2 should produce different graphs");
    }

    #[test]
    fn wide_single_layer_is_pure_fork_join() {
        let cfg =
            RandomMdgConfig { layers: 1, width_min: 6, width_max: 6, ..RandomMdgConfig::default() };
        let g = random_layered_mdg(&cfg, 3);
        assert_eq!(g.compute_node_count(), 6);
        // Every compute node connects only to START and STOP.
        for (id, n) in g.nodes() {
            if !n.is_structural() {
                assert_eq!(g.in_edges(id).len(), 1);
                assert_eq!(g.out_edges(id).len(), 1);
            }
        }
    }

    #[test]
    fn layer_count_bounds_depth() {
        let cfg = RandomMdgConfig { layers: 7, ..RandomMdgConfig::default() };
        let g = random_layered_mdg(&cfg, 11);
        let stats = crate::stats::MdgStats::of(&g);
        assert!(stats.depth <= 7);
        assert!(stats.depth >= 1);
    }

    #[test]
    fn node_costs_respect_ranges() {
        let cfg = RandomMdgConfig::default();
        let g = random_layered_mdg(&cfg, 5);
        for (_, n) in g.nodes() {
            if !n.is_structural() {
                assert!(n.cost.alpha >= cfg.alpha_range.0 && n.cost.alpha <= cfg.alpha_range.1);
                assert!(n.cost.tau >= cfg.tau_range.0 && n.cost.tau <= cfg.tau_range.1);
            }
        }
        for (_, e) in g.edges() {
            for t in &e.transfers {
                assert!(t.bytes >= cfg.bytes_range.0 && t.bytes <= cfg.bytes_range.1);
            }
        }
    }
}
