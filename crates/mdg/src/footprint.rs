//! Symbolic memory footprints for MDG nodes and edges.
//!
//! Every downstream memory analysis — the static resource analyzer in
//! `paradigm-analyze`, the schedule auditor's capacity sweep, and the
//! simulator's concrete resident-set accounting — derives its byte counts
//! from the expressions defined here, so the layers agree on what "the
//! footprint of node i" means:
//!
//! * a compute node's **local** array is the `rows x cols` matrix of
//!   `f64` its loop nest touches ([`node_local_bytes`]); synthetic nodes
//!   (zero extent) own no modeled array;
//! * a data edge's **payload** is the total bytes of its array
//!   transfers, floored at one byte between compute endpoints because
//!   code generation lowers even a data-less precedence edge to a 1-byte
//!   token message ([`edge_payload_bytes`]); structural (START/STOP)
//!   wiring moves nothing;
//! * a node must hold, while resident, its local array, every inbound
//!   payload (operands), and every outbound payload (results being
//!   produced) — [`node_footprint`].
//!
//! All quantities are exact `u64` byte counts; how they divide over a
//! processor group (evenly, in the block-distribution model) is the
//! analyzer's concern, not the graph's.

use crate::graph::{EdgeId, Mdg, NodeId};
use crate::node::Node;

/// Byte footprint of one node, split into the three components the
/// resident-set model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFootprint {
    /// Bytes of the node's own `rows x cols` array (0 for synthetic).
    pub local_bytes: u64,
    /// Sum of inbound edge payloads (operands received).
    pub in_bytes: u64,
    /// Sum of outbound edge payloads (results produced).
    pub out_bytes: u64,
}

impl NodeFootprint {
    /// Bytes resident on the node's own processor group while it
    /// executes, excluding operands: local array plus outputs.
    pub fn self_bytes(&self) -> u64 {
        self.local_bytes + self.out_bytes
    }

    /// Total working set: local array + operands + results.
    pub fn total_bytes(&self) -> u64 {
        self.local_bytes + self.in_bytes + self.out_bytes
    }
}

/// Bytes of the node's own array: `rows * cols * size_of::<f64>()`.
/// Synthetic nodes (`rows == 0 || cols == 0`) own no modeled array.
pub fn node_local_bytes(node: &Node) -> u64 {
    (node.meta.rows as u64) * (node.meta.cols as u64) * (std::mem::size_of::<f64>() as u64)
}

/// Bytes moved along an edge in the resident-set model. Structural
/// (START/STOP) wiring is free; a data-less edge between compute nodes
/// costs the 1-byte synchronization token codegen will synthesize for it.
pub fn edge_payload_bytes(g: &Mdg, e: EdgeId) -> u64 {
    let edge = g.edge(e);
    if g.node(NodeId(edge.src)).is_structural() || g.node(NodeId(edge.dst)).is_structural() {
        return 0;
    }
    edge.total_bytes().max(1)
}

/// The full footprint of `id`: local array plus all inbound and outbound
/// edge payloads. Structural nodes have a zero footprint.
pub fn node_footprint(g: &Mdg, id: NodeId) -> NodeFootprint {
    let node = g.node(id);
    if node.is_structural() {
        return NodeFootprint { local_bytes: 0, in_bytes: 0, out_bytes: 0 };
    }
    let in_bytes = g.in_edges(id).iter().map(|&e| edge_payload_bytes(g, e)).sum();
    let out_bytes = g.out_edges(id).iter().map(|&e| edge_payload_bytes(g, e)).sum();
    NodeFootprint { local_bytes: node_local_bytes(node), in_bytes, out_bytes }
}

/// Total communication volume of the graph: the sum of every edge
/// payload. This is exactly the data the program moves between groups
/// (plus one token byte per data-less compute-compute edge).
pub fn total_comm_bytes(g: &Mdg) -> u64 {
    g.edges().map(|(e, _)| edge_payload_bytes(g, e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{complex_matmul_mdg, KernelCostTable};
    use crate::graph::MdgBuilder;
    use crate::node::{AmdahlParams, ArrayTransfer, LoopClass, LoopMeta};

    fn chain() -> Mdg {
        let mut b = MdgBuilder::new("fp");
        let a = b.compute_with_meta(
            "a",
            AmdahlParams::new(0.1, 1.0),
            LoopMeta::square(LoopClass::MatrixInit, 64),
        );
        let c = b.compute("c", AmdahlParams::new(0.1, 1.0));
        let d = b.compute("d", AmdahlParams::new(0.1, 1.0));
        b.edge(a, c, vec![ArrayTransfer::matrix_1d(64, 64)]);
        b.edge(c, d, vec![]); // pure precedence between compute nodes
        b.finish().unwrap()
    }

    #[test]
    fn local_bytes_follow_dims() {
        let g = chain();
        let a = g.node(NodeId(1));
        assert_eq!(node_local_bytes(a), 64 * 64 * 8);
        assert_eq!(node_local_bytes(g.node(NodeId(2))), 0); // synthetic
        assert_eq!(node_local_bytes(g.node(g.start())), 0);
    }

    #[test]
    fn structural_edges_are_free_and_tokens_cost_one_byte() {
        let g = chain();
        let mut payloads: Vec<u64> = g.edges().map(|(e, _)| edge_payload_bytes(&g, e)).collect();
        payloads.sort_unstable();
        // START->a, d->STOP are free; c->d is a 1-byte token; a->c moves
        // the 32 KiB matrix.
        assert_eq!(payloads, vec![0, 0, 1, 64 * 64 * 8]);
        assert_eq!(total_comm_bytes(&g), 64 * 64 * 8 + 1);
    }

    #[test]
    fn node_footprint_sums_components() {
        let g = chain();
        let fa = node_footprint(&g, NodeId(1));
        assert_eq!(fa, NodeFootprint { local_bytes: 64 * 64 * 8, in_bytes: 0, out_bytes: 32768 });
        assert_eq!(fa.self_bytes(), 64 * 64 * 8 + 32768);
        assert_eq!(fa.total_bytes(), 64 * 64 * 8 + 32768);
        let fc = node_footprint(&g, NodeId(2));
        assert_eq!(fc, NodeFootprint { local_bytes: 0, in_bytes: 32768, out_bytes: 1 });
        let start = node_footprint(&g, g.start());
        assert_eq!(start.total_bytes(), 0);
    }

    #[test]
    fn gallery_graph_has_positive_footprints() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        for (id, n) in g.nodes() {
            if !n.is_structural() {
                assert!(node_footprint(&g, id).total_bytes() > 0, "node {id} has no footprint");
            }
        }
        assert!(total_comm_bytes(&g) > 0);
    }
}
