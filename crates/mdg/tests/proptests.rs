//! Property-based tests of the MDG data structure and its graph
//! algorithms over randomized layered graphs.

use paradigm_mdg::validate::check_invariants;
use paradigm_mdg::{random_layered_mdg, MdgStats, NodeId, RandomMdgConfig};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (1usize..=6, 1usize..=5, 0.0f64..0.9).prop_map(|(layers, width, edge_prob)| RandomMdgConfig {
        layers,
        width_min: 1,
        width_max: width,
        edge_prob,
        ..RandomMdgConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn invariants_hold(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        prop_assert!(check_invariants(&g).is_ok());
    }

    #[test]
    fn topo_order_is_a_permutation_respecting_edges(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![usize::MAX; g.node_count()];
        for (i, &v) in order.iter().enumerate() {
            prop_assert_eq!(pos[v.0], usize::MAX, "duplicate in topo order");
            pos[v.0] = i;
        }
        for (_, e) in g.edges() {
            prop_assert!(pos[e.src] < pos[e.dst]);
        }
    }

    #[test]
    fn critical_path_at_most_serial_time(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        let stats = MdgStats::of(&g);
        prop_assert!(stats.single_proc_critical_path <= stats.serial_time + 1e-9);
        prop_assert!(stats.inherent_parallelism() >= 1.0 - 1e-12);
    }

    #[test]
    fn critical_path_monotone_in_node_weights(cfg in arb_cfg(), seed in 0u64..10_000, scale in 1.0f64..5.0) {
        let g = random_layered_mdg(&cfg, seed);
        let base = g.critical_path_with(|v| g.node(v).cost.tau, |_| 0.0);
        let scaled = g.critical_path_with(|v| g.node(v).cost.tau * scale, |_| 0.0);
        prop_assert!((scaled - base * scale).abs() < 1e-9 * scaled.max(1.0));
    }

    #[test]
    fn edge_weights_only_increase_critical_path(cfg in arb_cfg(), seed in 0u64..10_000, w in 0.0f64..2.0) {
        let g = random_layered_mdg(&cfg, seed);
        let without = g.critical_path_with(|v| g.node(v).cost.tau, |_| 0.0);
        let with = g.critical_path_with(|v| g.node(v).cost.tau, |_| w);
        prop_assert!(with >= without - 1e-12);
    }

    #[test]
    fn reachability_consistent_with_finish_times(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        // START reaches everything; everything reaches STOP.
        for (id, _) in g.nodes() {
            prop_assert!(g.reaches(g.start(), id));
            prop_assert!(g.reaches(id, g.stop()));
        }
        // Finish times are monotone along reachability for positive
        // node weights.
        let ft = g.finish_times_with(|v| g.node(v).cost.tau + 0.01, |_| 0.0);
        for (_, e) in g.edges() {
            prop_assert!(ft[e.dst] > ft[e.src]);
        }
    }

    #[test]
    fn depths_bounded_by_node_count(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        let depths = g.depths();
        let n = g.node_count();
        prop_assert!(depths.iter().all(|&d| d < n));
        // Level widths sum to node count.
        let widths = g.level_widths();
        prop_assert_eq!(widths.iter().sum::<usize>(), n);
    }

    #[test]
    fn dot_output_mentions_every_node(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        let dot = paradigm_mdg::dot::to_dot(&g);
        for (id, _) in g.nodes() {
            let needle = format!("  {} [", id.0);
            let found = dot.contains(&needle);
            prop_assert!(found, "node line missing: {}", needle);
        }
    }

    #[test]
    fn in_out_edge_counts_match_edge_list(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        let total_in: usize = g.nodes().map(|(id, _)| g.in_edges(id).len()).sum();
        let total_out: usize = g.nodes().map(|(id, _)| g.out_edges(id).len()).sum();
        prop_assert_eq!(total_in, g.edge_count());
        prop_assert_eq!(total_out, g.edge_count());
        // And adjacency agrees with the edge payloads.
        for (id, _) in g.nodes() {
            for &e in g.in_edges(id) {
                prop_assert_eq!(g.edge(e).dst, id.0);
            }
            for &e in g.out_edges(id) {
                prop_assert_eq!(g.edge(e).src, id.0);
            }
        }
    }

    #[test]
    fn start_stop_are_unique_extremes(cfg in arb_cfg(), seed in 0u64..10_000) {
        let g = random_layered_mdg(&cfg, seed);
        prop_assert_eq!(g.start(), NodeId(0));
        prop_assert_eq!(g.stop(), NodeId(g.node_count() - 1));
        prop_assert!(g.in_edges(g.start()).is_empty());
        prop_assert!(g.out_edges(g.stop()).is_empty());
    }
}
