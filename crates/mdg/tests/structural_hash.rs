//! Property tests of the canonical structural hash: the content-address
//! used by the serving layer's result cache must be invariant under
//! node/edge insertion order and must change when pipeline-visible
//! payload changes.

use paradigm_mdg::{random_layered_mdg, structural_hash, Mdg, MdgBuilder, NodeId, RandomMdgConfig};
use proptest::prelude::*;

/// Rebuild `g` inserting its compute nodes and user edges in a
/// different order. `rot` rotates the node insertion order; `rev`
/// reverses the edge insertion order. The result is structurally the
/// same graph with different internal indices.
fn rebuild_permuted(g: &Mdg, rot: usize, rev: bool) -> Mdg {
    let compute: Vec<NodeId> =
        g.nodes().filter(|(_, n)| !n.is_structural()).map(|(id, _)| id).collect();
    let k = compute.len();
    let mut b = MdgBuilder::new(g.name());
    // old NodeId -> new builder NodeId, inserting in rotated order.
    let mut remap = std::collections::HashMap::new();
    for i in 0..k {
        let old = compute[(i + rot) % k];
        let n = g.node(old);
        let new_id = b.compute_with_meta(n.name.clone(), n.cost, n.meta.clone());
        remap.insert(old, new_id);
    }
    // Re-add only user edges (between compute nodes); finish() re-wires
    // START/STOP to sources/sinks itself.
    let mut user_edges: Vec<_> = g
        .edges()
        .filter(|(_, e)| {
            !g.node(NodeId(e.src)).is_structural() && !g.node(NodeId(e.dst)).is_structural()
        })
        .collect();
    if rev {
        user_edges.reverse();
    }
    for (_, e) in user_edges {
        b.edge(remap[&NodeId(e.src)], remap[&NodeId(e.dst)], e.transfers.clone());
    }
    b.finish().expect("permuted rebuild of a valid DAG")
}

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (2usize..=5, 1usize..=4, 0.0f64..0.9).prop_map(|(layers, width, edge_prob)| RandomMdgConfig {
        layers,
        width_min: 1,
        width_max: width,
        edge_prob,
        ..RandomMdgConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn hash_invariant_under_insertion_order(
        cfg in arb_cfg(),
        seed in 0u64..5000,
        rot in 0usize..7,
        rev in any::<bool>(),
    ) {
        let g = random_layered_mdg(&cfg, seed);
        let h = structural_hash(&g);
        let permuted = rebuild_permuted(&g, rot, rev);
        prop_assert_eq!(
            h,
            structural_hash(&permuted),
            "insertion order must not matter (rot {}, rev {})", rot, rev
        );
        // And the hash is stable across repeated computation.
        prop_assert_eq!(h, structural_hash(&g));
    }

    #[test]
    fn hash_distinguishes_different_graphs(
        cfg in arb_cfg(),
        seed in 0u64..2500,
    ) {
        let a = random_layered_mdg(&cfg, seed);
        let b = random_layered_mdg(&cfg, seed + 7919);
        // Different seeds may occasionally draw isomorphic graphs with
        // identical payloads; only compare when shapes already differ.
        if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
            prop_assert_ne!(structural_hash(&a), structural_hash(&b));
        }
    }
}
