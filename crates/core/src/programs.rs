//! The paper's test programs as a small registry, so examples, benches,
//! and tests all agree on the exact workloads being reproduced.

use paradigm_kernels::{strassen_one_level, ComplexMatrix, Matrix};
use paradigm_mdg::{complex_matmul_mdg, strassen_mdg, KernelCostTable, Mdg};

/// A named evaluation program (paper Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestProgram {
    /// Complex Matrix Multiply on `n x n` complex matrices (paper: 64).
    ComplexMatMul {
        /// Matrix dimension.
        n: usize,
    },
    /// One-level Strassen on `n x n` matrices (paper: 128).
    Strassen {
        /// Matrix dimension.
        n: usize,
    },
}

impl TestProgram {
    /// The two configurations evaluated in the paper.
    pub fn paper_suite() -> [TestProgram; 2] {
        [TestProgram::ComplexMatMul { n: 64 }, TestProgram::Strassen { n: 128 }]
    }

    /// Printable name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            TestProgram::ComplexMatMul { n } => format!("Complex Matrix Multiply ({n}x{n})"),
            TestProgram::Strassen { n } => format!("Strassen's Matrix Multiply ({n}x{n})"),
        }
    }

    /// Build the MDG with the given kernel cost table.
    pub fn build(&self, costs: &KernelCostTable) -> Mdg {
        match self {
            TestProgram::ComplexMatMul { n } => complex_matmul_mdg(*n, costs),
            TestProgram::Strassen { n } => strassen_mdg(*n, costs),
        }
    }

    /// Value-level verification: run the exact computation the MDG
    /// encodes (via `paradigm-kernels`) on deterministic random inputs
    /// and compare against an independent reference implementation.
    /// Returns the maximum absolute element error.
    pub fn verify_numerics(&self, seed: u64) -> f64 {
        match self {
            TestProgram::ComplexMatMul { n } => {
                let a = ComplexMatrix::random(*n, *n, seed);
                let b = ComplexMatrix::random(*n, *n, seed ^ 0x9e37);
                // The MDG's computation: M1..M4, Cr = M1-M2, Ci = M3+M4.
                let got = a.mul_4m2a(&b);
                let want = a.mul_reference(&b);
                got.max_abs_diff(&want)
            }
            TestProgram::Strassen { n } => {
                let a = Matrix::random(*n, *n, seed);
                let b = Matrix::random(*n, *n, seed ^ 0x9e37);
                // The MDG's computation: one Strassen recursion level.
                let got = strassen_one_level(&a, &b);
                let want = a.mul(&b);
                got.max_abs_diff(&want)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_builds() {
        for prog in TestProgram::paper_suite() {
            let g = prog.build(&KernelCostTable::cm5());
            assert!(g.compute_node_count() >= 10);
            assert!(!prog.name().is_empty());
        }
    }

    #[test]
    fn paper_programs_compute_correct_values() {
        for prog in TestProgram::paper_suite() {
            for seed in [1u64, 42, 1994] {
                let err = prog.verify_numerics(seed);
                assert!(err < 1e-8, "{} seed {seed}: max element error {err}", prog.name());
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TestProgram::ComplexMatMul { n: 64 }.name(), "Complex Matrix Multiply (64x64)");
        assert_eq!(TestProgram::Strassen { n: 128 }.name(), "Strassen's Matrix Multiply (128x128)");
    }
}
