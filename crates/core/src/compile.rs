//! Steps 3–5 of the pipeline: allocate (convex program), schedule (PSA),
//! and lower to executable task programs.

use paradigm_cost::{Machine, PhiBreakdown};
use paradigm_mdg::Mdg;
use paradigm_sched::{psa_schedule, refine_allocation, PsaConfig, PsaResult, RefineConfig};
use paradigm_sim::{lower_mpmd, lower_spmd, simulate, SimResult, TaskProgram, TrueMachine};
use paradigm_solver::{
    allocate, allocate_resilient, try_allocate, AllocationResult, SolverConfig, SolverError,
};

/// Compilation settings: solver and PSA knobs.
#[derive(Debug, Clone, Default)]
pub struct CompileConfig {
    /// Convex solver settings.
    pub solver: SolverConfig,
    /// PSA settings (PB etc.).
    pub psa: PsaConfig,
    /// Run the greedy reallocation refinement after the PSA (off by
    /// default — the paper's pipeline stops at the PSA).
    pub refine: bool,
}

impl CompileConfig {
    /// Cheaper solver settings for tests and large sweeps.
    pub fn fast() -> Self {
        CompileConfig { solver: SolverConfig::fast(), psa: PsaConfig::default(), refine: false }
    }
}

/// The result of compiling one MDG for one machine.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The machine compiled for.
    pub machine: Machine,
    /// Convex allocation result; `solve.phi.phi` is the paper's `Phi`.
    pub solve: AllocationResult,
    /// PSA result (rounded/bounded allocation, schedule).
    pub psa: PsaResult,
    /// Predicted finish time `T_psa` (schedule makespan).
    pub t_psa: f64,
    /// `Phi` breakdown at the continuous optimum.
    pub phi: PhiBreakdown,
    /// The MPMD task program (paper Step 5).
    pub mpmd: TaskProgram,
}

impl Compiled {
    /// Relative deviation `(T_psa - Phi) / Phi` — the paper's Table 3
    /// "Percent Change" column.
    pub fn deviation_percent(&self) -> f64 {
        100.0 * (self.t_psa - self.phi.phi) / self.phi.phi
    }
}

/// Compile `g` for `machine`: allocation, scheduling, MPMD lowering.
///
/// Panics if the solver fails; prefer [`try_compile`] or
/// [`compile_resilient`] on user-reachable paths.
pub fn compile(g: &Mdg, machine: Machine, cfg: &CompileConfig) -> Compiled {
    compile_with_solve(g, machine, cfg, allocate(g, machine, &cfg.solver))
}

/// Like [`compile`], but solver failures (bad machine parameters,
/// exhausted budget, non-finite objective) come back as a typed
/// [`SolverError`] instead of a panic.
pub fn try_compile(
    g: &Mdg,
    machine: Machine,
    cfg: &CompileConfig,
) -> Result<Compiled, SolverError> {
    let solve = try_allocate(g, machine, &cfg.solver)?;
    Ok(compile_with_solve(g, machine, cfg, solve))
}

/// Like [`compile`], but walks the solver's degradation ladder instead of
/// failing: projected gradient, then coordinate descent, then the
/// analytic equal split. The tier that produced the allocation is
/// recorded in `Compiled::solve.tier`.
pub fn compile_resilient(g: &Mdg, machine: Machine, cfg: &CompileConfig) -> Compiled {
    compile_with_solve(g, machine, cfg, allocate_resilient(g, machine, &cfg.solver))
}

/// Schedule and lower a pre-computed allocation (Steps 4–5 only). This is
/// the shared tail of [`compile`]/[`try_compile`]/[`compile_resilient`],
/// and lets callers supply an allocation from any source — e.g. the
/// serving layer's degraded path feeds `equal_split_allocation` here.
pub fn compile_with_solve(
    g: &Mdg,
    machine: Machine,
    cfg: &CompileConfig,
    solve: AllocationResult,
) -> Compiled {
    let mut psa = psa_schedule(g, machine, &solve.alloc, &cfg.psa);
    if cfg.refine {
        psa = refine_allocation(g, machine, &psa, &RefineConfig::default()).best;
    }
    // In debug builds, every schedule the pipeline emits goes through the
    // full static analyzer (races, precedence, recurrence lower bound) —
    // far stricter than `Schedule::validate`'s first-error check.
    #[cfg(debug_assertions)]
    {
        let report = paradigm_analyze::analyze_schedule(g, &psa.weights, &psa.schedule);
        assert!(
            report.is_clean(),
            "pipeline produced an invalid schedule for `{}`:\n{}",
            g.name(),
            report.render()
        );
    }
    let mpmd = lower_mpmd(g, &psa.schedule);
    Compiled { machine, phi: solve.phi.clone(), t_psa: psa.t_psa, solve, psa, mpmd }
}

/// Execute the compiled MPMD program on the ground-truth machine.
pub fn run_mpmd(_g: &Mdg, compiled: &Compiled, truth: &TrueMachine) -> SimResult {
    assert_eq!(
        truth.machine.procs, compiled.machine.procs,
        "truth and compile target sizes differ"
    );
    simulate(&compiled.mpmd, truth)
}

/// Execute the SPMD version (every node on all processors) on the
/// ground-truth machine.
pub fn run_spmd(g: &Mdg, truth: &TrueMachine) -> SimResult {
    let prog = lower_spmd(g, truth.machine.procs);
    simulate(&prog, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{complex_matmul_mdg, example_fig1_mdg, KernelCostTable};

    #[test]
    fn compile_fig1_reproduces_paper_numbers() {
        let g = example_fig1_mdg();
        let c = compile(&g, Machine::cm5(4), &CompileConfig::default());
        // Phi (continuous optimum) <= 14.3; T_psa == 14.3 exactly (the
        // rounded allocation is the paper's mixed schedule).
        assert!(c.phi.phi <= 14.3 + 1e-9);
        assert!((c.t_psa - 14.3).abs() < 1e-9, "T_psa = {}", c.t_psa);
        assert!(c.deviation_percent() >= -1e-6);
        assert!(c.deviation_percent() < 10.0);
    }

    #[test]
    fn t_psa_never_below_phi() {
        // Phi is a lower bound on any schedule of any allocation, so the
        // PSA can never beat it — up to the solver's convergence slack,
        // which with the fast config can reach a fraction of a percent
        // (the paper's own Table 3 shows -2.6% from the same effect).
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        for p in [16u32, 32, 64] {
            let c = compile(&g, Machine::cm5(p), &CompileConfig::fast());
            assert!(
                c.t_psa >= c.phi.phi * (1.0 - 1e-2),
                "p={p}: T_psa {} < Phi {}",
                c.t_psa,
                c.phi.phi
            );
        }
    }

    #[test]
    fn refine_flag_improves_or_matches() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let base = compile(&g, Machine::cm5(64), &CompileConfig::fast());
        let refined =
            compile(&g, Machine::cm5(64), &CompileConfig { refine: true, ..CompileConfig::fast() });
        assert!(refined.t_psa <= base.t_psa + 1e-12);
        refined.psa.schedule.validate(&g, &refined.psa.weights).unwrap();
    }

    #[test]
    fn mpmd_run_close_to_prediction() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let c = compile(&g, Machine::cm5(16), &CompileConfig::fast());
        let r = run_mpmd(&g, &c, &TrueMachine::cm5(16));
        let rel = (r.makespan - c.t_psa).abs() / c.t_psa;
        assert!(rel < 0.25, "simulated {} vs predicted {} (rel {rel})", r.makespan, c.t_psa);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_rejected() {
        let g = example_fig1_mdg();
        let c = compile(&g, Machine::cm5(4), &CompileConfig::fast());
        let _ = run_mpmd(&g, &c, &TrueMachine::cm5(8));
    }
}
