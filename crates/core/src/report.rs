//! Plain-text rendering of experiment rows, shared by the bench
//! harnesses and the examples. The renderings deliberately mimic the
//! layout of the paper's tables so a side-by-side comparison is easy.

use crate::calibrate::Calibration;
use crate::experiments::{Fig8Row, Fig9Row, Table3Row};

/// Render Figure-8 rows for one program.
pub fn render_fig8(program_name: &str, rows: &[Fig8Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{program_name}: SPMD vs MPMD (simulated CM-5)\n"));
    s.push_str("  procs |  SPMD time |  MPMD time | SPMD spd | MPMD spd | SPMD eff | MPMD eff\n");
    s.push_str("  ------+------------+------------+----------+----------+----------+---------\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>5} | {:>9.4}s | {:>9.4}s | {:>8.2} | {:>8.2} | {:>7.1}% | {:>7.1}%\n",
            r.procs,
            r.spmd_time,
            r.mpmd_time,
            r.spmd_speedup,
            r.mpmd_speedup,
            100.0 * r.spmd_efficiency,
            100.0 * r.mpmd_efficiency,
        ));
    }
    s
}

/// Render Figure-9 rows for one program.
pub fn render_fig9(program_name: &str, rows: &[Fig9Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{program_name}: predicted vs actual execution times (normalized to actual)\n"
    ));
    s.push_str("  procs |  predicted |     actual | predicted/actual\n");
    s.push_str("  ------+------------+------------+-----------------\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>5} | {:>9.4}s | {:>9.4}s | {:>16.3}\n",
            r.procs, r.predicted, r.actual, r.ratio
        ));
    }
    s
}

/// Render Table-3 rows for one program (paper layout: Phi, T_psa,
/// percent change).
pub fn render_table3(program_name: &str, rows: &[Table3Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{program_name}: deviation of T_psa from Phi (paper Table 3)\n"));
    s.push_str("  System Size |   Phi (S) | T_psa (S) | Percent Change\n");
    s.push_str("  ------------+-----------+-----------+---------------\n");
    for r in rows {
        s.push_str(&format!(
            "  {:>11} | {:>9.4} | {:>9.4} | {:>+13.1}%\n",
            r.procs, r.phi, r.t_psa, r.percent_change
        ));
    }
    s
}

/// Render a calibration summary (Tables 1 and 2 reproduction).
pub fn render_calibration(cal: &Calibration) -> String {
    let mut s = String::new();
    s.push_str("Fitted processing-cost parameters (paper Table 1):\n");
    s.push_str("  Node Name                 |   alpha (%)   |    tau (mS)    | R^2\n");
    s.push_str("  --------------------------+---------------+----------------+------\n");
    for (class, fit) in &cal.kernel_fits {
        s.push_str(&format!(
            "  {:<25} | {:>5.1} ± {:>5.2} | {:>7.2} ± {:>4.2} | {:>.4}\n",
            format!("Matrix {:?} (64x64)", class),
            100.0 * fit.params.alpha,
            100.0 * fit.alpha_stderr,
            1e3 * fit.params.tau,
            1e3 * fit.tau_stderr,
            fit.r2
        ));
    }
    let x = cal.machine.xfer;
    s.push_str("\nFitted data-transfer parameters (paper Table 2):\n");
    s.push_str("  t_ss (uS) | t_ps (nS) | t_sr (uS) | t_pr (nS) | t_n (nS)\n");
    s.push_str("  ----------+-----------+-----------+-----------+---------\n");
    s.push_str(&format!(
        "  {:>9.2} | {:>9.2} | {:>9.2} | {:>9.2} | {:>8.2}\n",
        1e6 * x.t_ss,
        1e9 * x.t_ps,
        1e6 * x.t_sr,
        1e9 * x.t_pr,
        1e9 * x.t_n
    ));
    s.push_str(&format!(
        "  (fit R^2: send {:.4}, recv {:.4})\n",
        cal.transfer_fit.r2_send, cal.transfer_fit.r2_recv
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_render_contains_rows() {
        let rows = vec![Fig8Row {
            procs: 16,
            spmd_time: 0.2,
            mpmd_time: 0.15,
            serial_time: 1.2,
            spmd_speedup: 6.0,
            mpmd_speedup: 8.0,
            spmd_efficiency: 0.375,
            mpmd_efficiency: 0.5,
        }];
        let s = render_fig8("CMM", &rows);
        assert!(s.contains("16"));
        assert!(s.contains("8.00"));
        assert!(s.contains("50.0%"));
    }

    #[test]
    fn table3_render_signs() {
        let rows = vec![Table3Row { procs: 64, phi: 0.077, t_psa: 0.085, percent_change: 10.4 }];
        let s = render_table3("Strassen", &rows);
        assert!(s.contains("+10.4%"));
        assert!(s.contains("0.0770"));
    }

    #[test]
    fn fig9_render_ratio() {
        let rows = vec![Fig9Row { procs: 32, predicted: 0.074, actual: 0.0804, ratio: 0.92 }];
        let s = render_fig9("CMM", &rows);
        assert!(s.contains("0.920"));
    }
}
