//! Step 2 of the pipeline: determine the cost-model parameters by
//! running training-set measurements on the target machine and fitting
//! by regression (paper Section 4; methodology after Balasundaram et
//! al.'s Training Sets approach).

use paradigm_cost::regression::{fit_amdahl, fit_transfer, FittedAmdahl, FittedTransfer};
use paradigm_cost::Machine;
use paradigm_mdg::{KernelCostTable, LoopClass};
use paradigm_sim::measure::{measure_processing, measure_transfers};
use paradigm_sim::TrueMachine;

/// The fitted cost model, ready to drive allocation and scheduling.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fitted per-class Amdahl parameters (Table 1).
    pub kernel_table: KernelCostTable,
    /// Fitted machine (Table 2 constants at the truth's size).
    pub machine: Machine,
    /// Raw fit diagnostics for the three kernel classes.
    pub kernel_fits: Vec<(LoopClass, FittedAmdahl)>,
    /// Raw fit diagnostics for the transfer constants.
    pub transfer_fit: FittedTransfer,
}

/// Measurement-sweep settings.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Processor counts for the kernel sweeps.
    pub qs: Vec<u32>,
    /// Repetitions per kernel configuration.
    pub reps: usize,
    /// Array sizes (bytes) for the transfer sweeps.
    pub sizes: Vec<u64>,
    /// Group sizes for the transfer sweeps.
    pub groups: Vec<usize>,
    /// Reference matrix dimension for the kernel measurements.
    pub ref_n: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            qs: vec![1, 2, 4, 8, 16, 32, 64],
            reps: 3,
            sizes: vec![4096, 16384, 65536, 262144],
            groups: vec![1, 2, 4, 8, 16],
            ref_n: 64,
        }
    }
}

/// Run the full calibration campaign against `truth`.
pub fn calibrate(truth: &TrueMachine, cfg: &CalibrationConfig) -> Calibration {
    let qs: Vec<u32> = cfg.qs.iter().copied().filter(|&q| q <= truth.machine.procs).collect();
    let mut kernel_fits = Vec::new();
    let mut fitted = KernelCostTable { ref_n: cfg.ref_n, ..KernelCostTable::cm5() };
    for class in [LoopClass::MatrixInit, LoopClass::MatrixAdd, LoopClass::MatrixMultiply] {
        let samples = measure_processing(truth, &class, cfg.ref_n, &qs, cfg.reps);
        let fit = fit_amdahl(&samples);
        match class {
            LoopClass::MatrixInit => fitted.init = fit.params,
            LoopClass::MatrixAdd => fitted.add = fit.params,
            LoopClass::MatrixMultiply => fitted.mul = fit.params,
            LoopClass::Custom(_) => unreachable!(),
        }
        kernel_fits.push((class, fit));
    }
    let groups: Vec<usize> =
        cfg.groups.iter().copied().filter(|&g| g <= truth.machine.procs as usize).collect();
    let transfer_samples = measure_transfers(truth, &cfg.sizes, &groups);
    let transfer_fit = fit_transfer(&transfer_samples);
    let machine = Machine::new(truth.machine.procs, transfer_fit.params);
    Calibration { kernel_table: fitted, machine, kernel_fits, transfer_fit }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_close_to_nominal_cm5() {
        let truth = TrueMachine::cm5(64);
        let cal = calibrate(&truth, &CalibrationConfig::default());
        let nominal = KernelCostTable::cm5();
        assert!((cal.kernel_table.mul.alpha - nominal.mul.alpha).abs() < 0.03);
        assert!((cal.kernel_table.mul.tau - nominal.mul.tau).abs() / nominal.mul.tau < 0.05);
        assert!((cal.kernel_table.add.alpha - nominal.add.alpha).abs() < 0.03);
        let x = cal.machine.xfer;
        let nx = paradigm_cost::TransferParams::cm5();
        assert!((x.t_ss - nx.t_ss).abs() / nx.t_ss < 0.1);
        assert!((x.t_pr - nx.t_pr).abs() / nx.t_pr < 0.1);
        assert!(x.t_n.abs() < 1e-12);
    }

    #[test]
    fn calibration_respects_machine_size() {
        let truth = TrueMachine::cm5(8);
        let cal = calibrate(&truth, &CalibrationConfig::default());
        assert_eq!(cal.machine.procs, 8);
        // Fit quality should still be good with the smaller sweep.
        for (_, f) in &cal.kernel_fits {
            assert!(f.r2 > 0.95);
        }
    }

    #[test]
    fn fits_are_reported_for_all_classes() {
        let truth = TrueMachine::cm5(16);
        let cal = calibrate(&truth, &CalibrationConfig::default());
        assert_eq!(cal.kernel_fits.len(), 3);
    }
}
