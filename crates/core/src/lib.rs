//! # paradigm-core — the end-to-end PARADIGM pipeline
//!
//! Ties the sub-crates into the compiler flow of the paper's Section 1.2:
//!
//! 1. *MDG construction* — `paradigm-mdg` (builders for the paper's test
//!    programs, or your own via [`paradigm_mdg::MdgBuilder`]);
//! 2. *weight determination* — [`calibrate()`]: run training-set
//!    measurements on the (simulated) machine and fit the cost-model
//!    parameters by regression;
//! 3. *allocation & scheduling* — [`compile()`]: convex-programming
//!    allocation followed by the PSA;
//! 4. *code generation* — MPMD/SPMD lowering to task programs;
//! 5. *execution* — the message-level simulator stands in for the CM-5.
//!
//! [`experiments`] packages the paper's evaluation (Figures 8/9,
//! Table 3) as reusable drivers; the `paradigm-bench` harnesses and the
//! integration tests both consume them.
//!
//! ## Quickstart
//!
//! ```
//! use paradigm_core::prelude::*;
//!
//! // The paper's first test program on a 16-node CM-5.
//! let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
//! let machine = Machine::cm5(16);
//! let compiled = compile(&g, machine, &CompileConfig::fast());
//! assert!(compiled.t_psa >= compiled.phi.phi * 0.99);
//!
//! // Execute the MPMD program on the simulated machine.
//! let truth = TrueMachine::cm5(16);
//! let run = run_mpmd(&g, &compiled, &truth);
//! assert!(run.makespan > 0.0);
//! ```

pub mod calibrate;
pub mod compile;
pub mod experiments;
pub mod pipeline;
pub mod programs;
pub mod report;

pub use calibrate::{calibrate, Calibration};
pub use compile::{
    compile, compile_resilient, compile_with_solve, run_mpmd, run_spmd, try_compile, CompileConfig,
    Compiled,
};
pub use experiments::{
    fig8_speedups, fig9_predicted_vs_actual, table3_deviation, Fig8Row, Fig9Row, Table3Row,
};
pub use pipeline::{
    gallery_graph, machine_from_spec, routes_through_admm, solve_fingerprint, solve_pipeline,
    solve_pipeline_degraded, try_solve_pipeline, try_solve_pipeline_with_backend, AdmmStats,
    AllocEntry, PipelineError, SolveOutput, SolveSpec, ADMM_NODE_THRESHOLD, GALLERY_NAMES,
    MACHINE_SPECS,
};
pub use programs::TestProgram;

// Re-exported so downstream crates (e.g. `paradigm-serve`) can name the
// solver's failure types without depending on `paradigm-solver` directly.
pub use paradigm_solver::{FallbackTier, SolverError};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::calibrate::{calibrate, Calibration};
    pub use crate::compile::{compile, run_mpmd, run_spmd, CompileConfig, Compiled};
    pub use crate::experiments::*;
    pub use crate::programs::TestProgram;
    pub use paradigm_cost::{Allocation, Machine, MdgWeights, TransferParams};
    pub use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, strassen_mdg, AmdahlParams, ArrayTransfer,
        KernelCostTable, Mdg, MdgBuilder, NodeId, TransferKind,
    };
    pub use paradigm_sched::{psa_schedule, spmd_schedule, PsaConfig, Schedule};
    pub use paradigm_sim::{simulate, SimResult, TrueMachine};
    pub use paradigm_solver::{
        allocate, AllocationResult, FallbackTier, SolverConfig, SolverError,
    };
}
