//! Drivers for the paper's evaluation artifacts (Section 6): one
//! function per figure/table, returning structured rows that the bench
//! harnesses print and the integration tests assert on.

use crate::compile::{compile, run_mpmd, run_spmd, CompileConfig};
use crate::programs::TestProgram;
use paradigm_cost::Machine;
use paradigm_mdg::KernelCostTable;
use paradigm_sched::serial_schedule;
use paradigm_sim::TrueMachine;

/// One row of the Figure-8 reproduction: SPMD vs MPMD speedup and
/// efficiency at one system size (measured on the simulated machine,
/// normalized to the 1-processor serial time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Row {
    /// System size.
    pub procs: u32,
    /// Measured SPMD execution time (s).
    pub spmd_time: f64,
    /// Measured MPMD execution time (s).
    pub mpmd_time: f64,
    /// Serial reference time (s).
    pub serial_time: f64,
    /// `serial / spmd`.
    pub spmd_speedup: f64,
    /// `serial / mpmd`.
    pub mpmd_speedup: f64,
    /// `spmd_speedup / p`.
    pub spmd_efficiency: f64,
    /// `mpmd_speedup / p`.
    pub mpmd_efficiency: f64,
}

/// Figure 8: speedups and efficiencies of the SPMD and MPMD versions of
/// `program` at each system size.
pub fn fig8_speedups(
    program: TestProgram,
    sizes: &[u32],
    costs: &KernelCostTable,
    cfg: &CompileConfig,
) -> Vec<Fig8Row> {
    let g = program.build(costs);
    let serial_time = serial_schedule(&g);
    sizes
        .iter()
        .map(|&p| {
            let truth = TrueMachine::cm5(p);
            let compiled = compile(&g, Machine::cm5(p), cfg);
            let mpmd = run_mpmd(&g, &compiled, &truth);
            let spmd = run_spmd(&g, &truth);
            let spmd_speedup = serial_time / spmd.makespan;
            let mpmd_speedup = serial_time / mpmd.makespan;
            Fig8Row {
                procs: p,
                spmd_time: spmd.makespan,
                mpmd_time: mpmd.makespan,
                serial_time,
                spmd_speedup,
                mpmd_speedup,
                spmd_efficiency: spmd_speedup / p as f64,
                mpmd_efficiency: mpmd_speedup / p as f64,
            }
        })
        .collect()
}

/// One row of the Figure-9 reproduction: predicted (`T_psa`) vs measured
/// execution time of the MPMD program, normalized to measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// System size.
    pub procs: u32,
    /// Model-predicted finish time `T_psa` (s).
    pub predicted: f64,
    /// Simulated execution time (s).
    pub actual: f64,
    /// `predicted / actual` (Figure 9 plots exactly this, normalized to
    /// actual = 1.0).
    pub ratio: f64,
}

/// Figure 9: predicted vs actual MPMD execution times.
pub fn fig9_predicted_vs_actual(
    program: TestProgram,
    sizes: &[u32],
    costs: &KernelCostTable,
    cfg: &CompileConfig,
) -> Vec<Fig9Row> {
    let g = program.build(costs);
    sizes
        .iter()
        .map(|&p| {
            let truth = TrueMachine::cm5(p);
            let compiled = compile(&g, Machine::cm5(p), cfg);
            let actual = run_mpmd(&g, &compiled, &truth).makespan;
            Fig9Row { procs: p, predicted: compiled.t_psa, actual, ratio: compiled.t_psa / actual }
        })
        .collect()
}

/// One row of the Table-3 reproduction: deviation of `T_psa` from `Phi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// System size.
    pub procs: u32,
    /// Convex-program optimum `Phi` (s).
    pub phi: f64,
    /// PSA finish time `T_psa` (s).
    pub t_psa: f64,
    /// `100 * (T_psa - Phi) / Phi`.
    pub percent_change: f64,
}

/// Table 3: `Phi` vs `T_psa` for `program` at each system size.
pub fn table3_deviation(
    program: TestProgram,
    sizes: &[u32],
    costs: &KernelCostTable,
    cfg: &CompileConfig,
) -> Vec<Table3Row> {
    let g = program.build(costs);
    sizes
        .iter()
        .map(|&p| {
            let compiled = compile(&g, Machine::cm5(p), cfg);
            Table3Row {
                procs: p,
                phi: compiled.phi.phi,
                t_psa: compiled.t_psa,
                percent_change: compiled.deviation_percent(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: [u32; 3] = [16, 32, 64];

    #[test]
    fn fig8_mpmd_dominates_spmd_and_gap_grows() {
        for prog in TestProgram::paper_suite() {
            let rows = fig8_speedups(prog, &SIZES, &KernelCostTable::cm5(), &CompileConfig::fast());
            assert_eq!(rows.len(), 3);
            for r in &rows {
                assert!(
                    r.mpmd_speedup >= r.spmd_speedup * 0.98,
                    "{}: p={} MPMD {} vs SPMD {}",
                    prog.name(),
                    r.procs,
                    r.mpmd_speedup,
                    r.spmd_speedup
                );
                assert!(r.mpmd_efficiency <= 1.05, "efficiency cannot exceed 1");
            }
            // The paper's headline: the advantage is largest at p = 64.
            let gain64 = rows[2].mpmd_speedup / rows[2].spmd_speedup;
            assert!(gain64 > 1.1, "{}: 64-proc MPMD gain {}", prog.name(), gain64);
        }
    }

    #[test]
    fn fig9_predictions_within_band() {
        for prog in TestProgram::paper_suite() {
            let rows = fig9_predicted_vs_actual(
                prog,
                &SIZES,
                &KernelCostTable::cm5(),
                &CompileConfig::fast(),
            );
            for r in &rows {
                assert!(
                    (0.7..=1.3).contains(&r.ratio),
                    "{} p={}: predicted/actual = {}",
                    prog.name(),
                    r.procs,
                    r.ratio
                );
            }
        }
    }

    #[test]
    fn table3_deviation_small_and_nonnegative() {
        for prog in TestProgram::paper_suite() {
            let rows =
                table3_deviation(prog, &SIZES, &KernelCostTable::cm5(), &CompileConfig::fast());
            for r in &rows {
                // Allow up to 1% negative: fast-config solver slack (the
                // paper's own CMM column is -2.6%..-1.3% from the same
                // effect).
                assert!(
                    r.percent_change >= -1.0,
                    "{} p={}: T_psa below Phi by {}%",
                    prog.name(),
                    r.procs,
                    r.percent_change
                );
                assert!(
                    r.percent_change <= 50.0,
                    "{} p={}: deviation {}% too large",
                    prog.name(),
                    r.procs,
                    r.percent_change
                );
            }
        }
    }
}
