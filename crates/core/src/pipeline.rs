//! A reusable, parameter-complete entry point into the compile pipeline,
//! plus canonical cache keying — the pure function the serving layer
//! (`paradigm-serve`) memoizes.
//!
//! [`solve_pipeline`] runs allocation → PSA → (optional refinement) →
//! (optional simulation) for one `(MDG, SolveSpec)` pair and returns a
//! plain-data [`SolveOutput`]: everything is owned values, no borrowed
//! graph state, so results can live in a cache and be shared across
//! threads. [`solve_fingerprint`] produces the content-addressed key:
//! the MDG's [`paradigm_mdg::structural_hash`] extended with every spec
//! field the output depends on. Identical fingerprints therefore mean
//! identical outputs (the pipeline is deterministic), which is exactly
//! the property single-flight caching needs.

use crate::compile::{
    compile_resilient, compile_with_solve, run_mpmd, try_compile, CompileConfig, Compiled,
};
use paradigm_admm::{solve_admm, AdmmConfig, AdmmResult, BlockBackend, InProcessBackend};
use paradigm_cost::Machine;
use paradigm_mdg::hash::Fnv128;
use paradigm_mdg::{
    block_lu_mdg, complex_matmul_mdg, example_fig1_mdg, fft_2d_mdg, fork_join_mdg,
    random_layered_mdg, stencil_mdg, strassen_mdg, strassen_mdg_multilevel, structural_hash,
    KernelCostTable, Mdg, RandomMdgConfig,
};
use paradigm_sched::{idle_profile, SchedPolicy};
use paradigm_sim::TrueMachine;
use paradigm_solver::{
    equal_split_allocation, AllocationResult, FallbackTier, SolverConfig, SolverError,
};
use std::fmt;

/// Compute-node count at which [`solve_pipeline`] routes the allocation
/// through the distributed consensus-ADMM solver instead of the dense
/// projected-gradient solver (a single dense tape past this size
/// dominates solve time; the partitioned solve parallelizes it).
pub const ADMM_NODE_THRESHOLD: usize = 4096;

/// Everything (besides the graph) that a pipeline solve depends on.
/// Two requests with equal specs and structurally equal graphs produce
/// identical outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSpec {
    /// Target machine (processor count + transfer constants).
    pub machine: Machine,
    /// PSA ready-queue priority.
    pub policy: SchedPolicy,
    /// Explicit processor bound; `None` = Corollary 1's optimum.
    pub pb: Option<u32>,
    /// Run the post-PSA reallocation refinement.
    pub refine: bool,
    /// Use the cheaper solver settings (`SolverConfig::fast()`).
    pub fast_solver: bool,
    /// Also execute the MPMD lowering on the ground-truth simulator and
    /// report the measured makespan.
    pub simulate: bool,
    /// Force the consensus-ADMM solver tier regardless of graph size
    /// (graphs above [`ADMM_NODE_THRESHOLD`] compute nodes route through
    /// it automatically).
    pub admm: bool,
}

impl SolveSpec {
    /// A spec with the serving layer's defaults: fast solver, paper's
    /// PSA policy, automatic PB, no refinement, no simulation.
    pub fn new(machine: Machine) -> Self {
        SolveSpec {
            machine,
            policy: SchedPolicy::LowestEst,
            pb: None,
            refine: false,
            fast_solver: true,
            simulate: false,
            admm: false,
        }
    }

    /// Reject specs the pipeline would panic on.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(pb) = self.pb {
            if pb == 0 {
                return Err("processor bound must be positive".into());
            }
            if pb > self.machine.procs {
                return Err(format!(
                    "processor bound {pb} exceeds machine size {}",
                    self.machine.procs
                ));
            }
        }
        self.machine.xfer.validate()
    }
}

/// One node's solved placement.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocEntry {
    /// Node name as given in the MDG.
    pub node: String,
    /// Continuous optimum from the convex program.
    pub continuous: f64,
    /// Rounded/bounded processor count actually scheduled.
    pub procs: u32,
}

/// Consensus-ADMM solve diagnostics, reported when the allocation came
/// from the distributed solver tier.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmStats {
    /// Partition blocks solved per outer round.
    pub blocks: usize,
    /// Cut (consensus-coupled) edges in the partition.
    pub cut_edges: usize,
    /// Outer consensus iterations executed.
    pub outer_iters: usize,
    /// Inner block-solver gradient iterations, summed.
    pub inner_iters: usize,
    /// Coordinator-side exact polish steps.
    pub polish_iters: usize,
    /// Final RMS primal residual (log-allocation units).
    pub primal_residual: f64,
    /// Final RMS consensus drift (log-allocation units).
    pub dual_residual: f64,
    /// Whether both residuals dropped below the tolerance.
    pub converged: bool,
    /// Block jobs retried on another attempt after a worker fault.
    pub blocks_retried: u64,
    /// Block jobs completed by a different worker than the one that
    /// first failed them (work stealing across the fleet).
    pub blocks_stolen: u64,
    /// Rounds that reused a block's previous solution because the fresh
    /// one missed the deadline (bounded-staleness mode only).
    pub blocks_stale: u64,
    /// Longest consecutive stale streak any single block reached.
    pub max_block_stale_rounds: usize,
    /// Worker circuit-breaker open transitions (quarantine events).
    pub workers_quarantined: u64,
    /// Backend downgrades taken (e.g. TCP fleet → in-process).
    pub backend_downgrades: u64,
}

impl AdmmStats {
    fn from_result(r: &AdmmResult) -> Self {
        AdmmStats {
            blocks: r.blocks,
            cut_edges: r.cut_edges,
            outer_iters: r.outer_iters,
            inner_iters: r.inner_iters,
            polish_iters: r.polish_iters,
            primal_residual: r.primal_residual,
            dual_residual: r.dual_residual,
            converged: r.converged,
            blocks_retried: r.blocks_retried,
            blocks_stolen: r.blocks_stolen,
            blocks_stale: r.blocks_stale,
            max_block_stale_rounds: r.max_block_stale_rounds,
            workers_quarantined: r.workers_quarantined,
            backend_downgrades: r.backend_downgrades,
        }
    }
}

/// Owned, thread-shareable result of one pipeline solve.
#[derive(Debug, Clone)]
pub struct SolveOutput {
    /// Graph name at solve time (callers holding a structurally equal
    /// graph under a different name should prefer their own).
    pub graph: String,
    /// Number of compute nodes solved.
    pub compute_nodes: usize,
    /// Continuous optimum `Phi`.
    pub phi: f64,
    /// Schedule makespan `T_psa`.
    pub t_psa: f64,
    /// Processor bound used by the PSA.
    pub pb: u32,
    /// `(T_psa - Phi) / Phi` in percent.
    pub deviation_percent: f64,
    /// Schedule utilization in `[0, 1]`.
    pub utilization: f64,
    /// Per-compute-node allocation, in node-index order.
    pub alloc: Vec<AllocEntry>,
    /// Measured makespan on the ground-truth simulator, if requested.
    pub sim_makespan: Option<f64>,
    /// Which rung of the solver's degradation ladder produced the
    /// allocation (`FallbackTier::Primary` on the normal path).
    pub degraded: FallbackTier,
    /// The PSA schedule itself, so downstream consumers (e.g. the serve
    /// layer's sampled audits) can re-verify the result independently.
    pub schedule: paradigm_sched::Schedule,
    /// Consensus-ADMM diagnostics when `degraded == FallbackTier::Admm`.
    pub admm: Option<AdmmStats>,
}

/// Why a pipeline solve could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The spec failed [`SolveSpec::validate`].
    InvalidSpec(String),
    /// The convex solver reported a typed failure.
    Solver(SolverError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidSpec(msg) => write!(f, "invalid solve spec: {msg}"),
            PipelineError::Solver(e) => write!(f, "solver failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SolverError> for PipelineError {
    fn from(e: SolverError) -> Self {
        PipelineError::Solver(e)
    }
}

fn compile_config(spec: &SolveSpec) -> CompileConfig {
    CompileConfig {
        solver: if spec.fast_solver { SolverConfig::fast() } else { SolverConfig::default() },
        psa: paradigm_sched::PsaConfig { pb: spec.pb, skip_rounding: false, policy: spec.policy },
        refine: spec.refine,
    }
}

fn output_from_compiled(g: &Mdg, spec: &SolveSpec, c: &Compiled) -> SolveOutput {
    let prof = idle_profile(&c.psa.schedule, c.psa.pb);
    let alloc = g
        .nodes()
        .filter(|(_, n)| !n.is_structural())
        .map(|(id, n)| AllocEntry {
            node: n.name.clone(),
            continuous: c.solve.alloc.get(id),
            procs: c.psa.bounded.as_u32(id),
        })
        .collect();
    let sim_makespan = spec.simulate.then(|| {
        let truth = TrueMachine {
            machine: spec.machine,
            kernels: KernelCostTable::cm5(),
            ..TrueMachine::cm5(spec.machine.procs)
        };
        run_mpmd(g, c, &truth).makespan
    });
    SolveOutput {
        graph: g.name().to_string(),
        compute_nodes: g.compute_node_count(),
        phi: c.phi.phi,
        t_psa: c.t_psa,
        pb: c.psa.pb,
        deviation_percent: c.deviation_percent(),
        utilization: prof.utilization(),
        alloc,
        sim_makespan,
        degraded: c.solve.tier,
        schedule: c.psa.schedule.clone(),
        admm: None,
    }
}

/// Whether this `(graph, spec)` pair routes through the consensus-ADMM
/// solver tier: explicitly via `spec.admm`, or automatically when the
/// graph outgrows the dense solver.
pub fn routes_through_admm(g: &Mdg, spec: &SolveSpec) -> bool {
    spec.admm || g.compute_node_count() >= ADMM_NODE_THRESHOLD
}

/// Run the consensus-ADMM tier through an explicit block backend and
/// package the allocation for the compile tail.
fn admm_allocation_with<B: BlockBackend>(
    g: &Mdg,
    spec: &SolveSpec,
    cfg: &AdmmConfig,
    backend: &mut B,
) -> Result<(AllocationResult, AdmmStats), SolverError> {
    let res = solve_admm(g, spec.machine, cfg, backend)?;
    let stats = AdmmStats::from_result(&res);
    let solve = AllocationResult {
        alloc: res.alloc,
        phi: res.phi,
        iterations: res.inner_iters + res.polish_iters,
        starts: res.blocks,
        tier: FallbackTier::Admm,
    };
    Ok((solve, stats))
}

/// Run the consensus-ADMM tier with the default in-process backend.
fn admm_allocation(
    g: &Mdg,
    spec: &SolveSpec,
) -> Result<(AllocationResult, AdmmStats), SolverError> {
    admm_allocation_with(g, spec, &AdmmConfig::default(), &mut InProcessBackend::default())
}

/// Run the full pipeline for one graph under one spec, walking the
/// solver's degradation ladder on failure (the tier taken is recorded in
/// `SolveOutput::degraded`).
///
/// # Panics
/// Panics if the spec is invalid (callers should [`SolveSpec::validate`]
/// first) or the graph triggers a pipeline assertion.
pub fn solve_pipeline(g: &Mdg, spec: &SolveSpec) -> SolveOutput {
    if routes_through_admm(g, spec) {
        // The ADMM tier degrades to the dense resilient ladder on
        // failure rather than panicking, mirroring the ladder's spirit.
        if let Ok((solve, stats)) = admm_allocation(g, spec) {
            let c = compile_with_solve(g, spec.machine, &compile_config(spec), solve);
            let mut out = output_from_compiled(g, spec, &c);
            out.admm = Some(stats);
            return out;
        }
    }
    let c = compile_resilient(g, spec.machine, &compile_config(spec));
    output_from_compiled(g, spec, &c)
}

/// Like [`solve_pipeline`], but validates the spec and surfaces solver
/// failures as a typed [`PipelineError`] instead of degrading or
/// panicking. The serving layer's primary path uses this so the circuit
/// breaker can see *why* a solve failed.
pub fn try_solve_pipeline(g: &Mdg, spec: &SolveSpec) -> Result<SolveOutput, PipelineError> {
    spec.validate().map_err(PipelineError::InvalidSpec)?;
    if routes_through_admm(g, spec) {
        let (solve, stats) = admm_allocation(g, spec)?;
        let c = compile_with_solve(g, spec.machine, &compile_config(spec), solve);
        let mut out = output_from_compiled(g, spec, &c);
        out.admm = Some(stats);
        return Ok(out);
    }
    let c = try_compile(g, spec.machine, &compile_config(spec))?;
    Ok(output_from_compiled(g, spec, &c))
}

/// Like [`try_solve_pipeline`], but the consensus-ADMM tier (when the
/// pair routes through it) runs on the caller's [`BlockBackend`] and
/// [`AdmmConfig`] instead of the defaults. The serving layer uses this
/// to drive a TCP worker fleet — wrapped in a failover backend — from
/// the same pipeline the cache and auditor already understand. Requests
/// that do not route through ADMM behave exactly like
/// [`try_solve_pipeline`].
pub fn try_solve_pipeline_with_backend<B: BlockBackend>(
    g: &Mdg,
    spec: &SolveSpec,
    admm_cfg: &AdmmConfig,
    backend: &mut B,
) -> Result<SolveOutput, PipelineError> {
    spec.validate().map_err(PipelineError::InvalidSpec)?;
    if routes_through_admm(g, spec) {
        let (solve, stats) = admm_allocation_with(g, spec, admm_cfg, backend)?;
        let c = compile_with_solve(g, spec.machine, &compile_config(spec), solve);
        let mut out = output_from_compiled(g, spec, &c);
        out.admm = Some(stats);
        return Ok(out);
    }
    let c = try_compile(g, spec.machine, &compile_config(spec))?;
    Ok(output_from_compiled(g, spec, &c))
}

/// Run the pipeline with the analytic equal-split allocation instead of
/// the convex solver — the serving layer's last-resort degraded path.
/// Never invokes the solver; simulation is skipped even if requested
/// (degraded answers should be cheap). `SolveOutput::degraded` is always
/// [`FallbackTier::EqualSplit`].
pub fn solve_pipeline_degraded(g: &Mdg, spec: &SolveSpec) -> SolveOutput {
    let spec = SolveSpec { simulate: false, ..spec.clone() };
    let solve = equal_split_allocation(g, spec.machine);
    let c = compile_with_solve(g, spec.machine, &compile_config(&spec), solve);
    output_from_compiled(g, &spec, &c)
}

/// Content-addressed cache key: the graph's canonical structural hash
/// extended with every [`SolveSpec`] field the output depends on.
pub fn solve_fingerprint(g: &Mdg, spec: &SolveSpec) -> u128 {
    let mut h = Fnv128::new();
    h.write_u128(structural_hash(g));
    h.write_u64(u64::from(spec.machine.procs));
    h.write_f64(spec.machine.xfer.t_ss);
    h.write_f64(spec.machine.xfer.t_ps);
    h.write_f64(spec.machine.xfer.t_sr);
    h.write_f64(spec.machine.xfer.t_pr);
    h.write_f64(spec.machine.xfer.t_n);
    h.write_u64(spec.machine.mem_bytes);
    h.write_u64(match spec.policy {
        SchedPolicy::LowestEst => 1,
        SchedPolicy::HighestLevelFirst => 2,
    });
    h.write_u64(spec.pb.map_or(0, |pb| u64::from(pb) + 1));
    h.write_u64(u64::from(spec.refine));
    h.write_u64(u64::from(spec.fast_solver));
    h.write_u64(u64::from(spec.simulate));
    h.write_u64(u64::from(spec.admm));
    h.finish()
}

/// Machine spec names understood by [`machine_from_spec`] (also the CLI
/// `--machine` flag and the serve protocol's `"machine"` field).
pub const MACHINE_SPECS: [&str; 4] = ["cm5", "mesh", "paragon", "sp1"];

/// Resolve a machine spec name at a processor count. `"cm5"` is the
/// paper's fitted testbed; `"mesh"` the synthetic machine with a
/// non-zero per-byte network term (`t_n > 0`); `"paragon"` / `"sp1"`
/// the illustrative 1994-era parameter sets.
pub fn machine_from_spec(spec: &str, procs: u32) -> Option<Machine> {
    match spec {
        "cm5" => Some(Machine::cm5(procs)),
        "mesh" => Some(Machine::synthetic_mesh(procs)),
        "paragon" => Some(Machine::intel_paragon(procs)),
        "sp1" => Some(Machine::ibm_sp1(procs)),
        _ => None,
    }
}

/// Names of the built-in gallery graphs served by [`gallery_graph`]
/// (also `paradigm analyze --gallery` and the serve protocol's
/// `"gallery"` field).
pub const GALLERY_NAMES: [&str; 9] = [
    "fig1",
    "cmm",
    "strassen",
    "strassen-ml",
    "fft2d",
    "block-lu",
    "stencil",
    "random-layered",
    "fork-join",
];

/// Build one built-in gallery graph by name, at the workloads' standard
/// sizes (CM-5 cost table).
pub fn gallery_graph(name: &str) -> Option<Mdg> {
    let t = KernelCostTable::cm5();
    match name {
        "fig1" => Some(example_fig1_mdg()),
        "cmm" => Some(complex_matmul_mdg(64, &t)),
        "strassen" => Some(strassen_mdg(128, &t)),
        "strassen-ml" => Some(strassen_mdg_multilevel(128, 2, &t)),
        "fft2d" => Some(fft_2d_mdg(64, 4, &t)),
        "block-lu" => Some(block_lu_mdg(4, 32, &t)),
        "stencil" => Some(stencil_mdg(64, 2, 3, &t)),
        // Seeded synthetic large-graph generators (ADMM's home turf) at
        // gallery-friendly sizes that the dense solver still handles, so
        // the two tiers can be cross-checked on the same graphs.
        "random-layered" => Some(random_layered_mdg(&RandomMdgConfig::sized(192), 11)),
        "fork-join" => Some(fork_join_mdg(6, 12, 5)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    #[test]
    fn solve_matches_direct_compile() {
        let g = example_fig1_mdg();
        let spec = SolveSpec { fast_solver: false, ..SolveSpec::new(Machine::cm5(4)) };
        let out = solve_pipeline(&g, &spec);
        let direct = compile(&g, Machine::cm5(4), &CompileConfig::default());
        assert_eq!(out.phi, direct.phi.phi);
        assert_eq!(out.t_psa, direct.t_psa);
        assert_eq!(out.pb, direct.psa.pb);
        assert_eq!(out.alloc.len(), g.compute_node_count());
        assert!(out.sim_makespan.is_none());
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn simulate_flag_reports_a_makespan() {
        let g = example_fig1_mdg();
        let spec = SolveSpec { simulate: true, ..SolveSpec::new(Machine::cm5(4)) };
        let out = solve_pipeline(&g, &spec);
        let sim = out.sim_makespan.expect("simulate requested");
        assert!(sim > 0.0);
        // The simulator tracks the schedule prediction loosely.
        assert!((sim - out.t_psa).abs() / out.t_psa < 0.5, "sim {sim} vs {}", out.t_psa);
    }

    #[test]
    fn fingerprint_separates_specs_and_graphs() {
        let g = example_fig1_mdg();
        let base = SolveSpec::new(Machine::cm5(16));
        let fp = solve_fingerprint(&g, &base);
        assert_eq!(fp, solve_fingerprint(&g, &base.clone()), "deterministic");
        for other in [
            SolveSpec::new(Machine::cm5(32)),
            SolveSpec::new(Machine::synthetic_mesh(16)),
            SolveSpec { policy: SchedPolicy::HighestLevelFirst, ..base.clone() },
            SolveSpec { pb: Some(4), ..base.clone() },
            SolveSpec { refine: true, ..base.clone() },
            SolveSpec { fast_solver: false, ..base.clone() },
            SolveSpec { simulate: true, ..base.clone() },
            SolveSpec { admm: true, ..base.clone() },
        ] {
            assert_ne!(fp, solve_fingerprint(&g, &other), "{other:?}");
        }
        let g2 = gallery_graph("cmm").unwrap();
        assert_ne!(fp, solve_fingerprint(&g2, &base));
    }

    #[test]
    fn pb_zero_and_oversize_rejected_by_validate() {
        let mut spec = SolveSpec::new(Machine::cm5(8));
        spec.pb = Some(0);
        assert!(spec.validate().is_err());
        spec.pb = Some(16);
        assert!(spec.validate().is_err());
        spec.pb = Some(8);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn gallery_covers_all_names() {
        for name in GALLERY_NAMES {
            let g = gallery_graph(name).expect(name);
            assert!(g.compute_node_count() >= 3, "{name}");
        }
        assert!(gallery_graph("nope").is_none());
    }

    #[test]
    fn pipeline_reports_primary_tier_on_healthy_solves() {
        let g = example_fig1_mdg();
        let out = solve_pipeline(&g, &SolveSpec::new(Machine::cm5(4)));
        assert_eq!(out.degraded, FallbackTier::Primary);
        let out2 = try_solve_pipeline(&g, &SolveSpec::new(Machine::cm5(4))).unwrap();
        assert_eq!(out2.degraded, FallbackTier::Primary);
        assert_eq!(out.phi, out2.phi);
    }

    #[test]
    fn try_pipeline_rejects_invalid_spec() {
        let g = example_fig1_mdg();
        let spec = SolveSpec { pb: Some(0), ..SolveSpec::new(Machine::cm5(4)) };
        match try_solve_pipeline(&g, &spec) {
            Err(PipelineError::InvalidSpec(msg)) => assert!(msg.contains("positive"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn try_pipeline_surfaces_solver_errors() {
        let g = example_fig1_mdg();
        let mut machine = Machine::cm5(4);
        machine.xfer.t_ss = f64::NAN;
        let spec = SolveSpec::new(machine);
        match try_solve_pipeline(&g, &spec) {
            Err(PipelineError::InvalidSpec(_)) => {}
            other => panic!("NaN machine should fail validation, got {other:?}"),
        }
    }

    #[test]
    fn degraded_pipeline_schedules_without_the_solver() {
        let g = gallery_graph("cmm").unwrap();
        let spec = SolveSpec { simulate: true, ..SolveSpec::new(Machine::cm5(16)) };
        let out = solve_pipeline_degraded(&g, &spec);
        assert_eq!(out.degraded, FallbackTier::EqualSplit);
        assert!(out.t_psa.is_finite() && out.t_psa > 0.0);
        // Degraded answers skip simulation even when the spec asks.
        assert!(out.sim_makespan.is_none());
        // Equal split is a real schedule, just a worse one.
        let best = solve_pipeline(&g, &SolveSpec::new(Machine::cm5(16)));
        assert!(out.t_psa >= best.t_psa * 0.99, "{} vs {}", out.t_psa, best.t_psa);
    }

    #[test]
    fn admm_flag_forces_the_distributed_tier() {
        let g = gallery_graph("fork-join").unwrap();
        let machine = Machine::cm5(32);
        let spec = SolveSpec { admm: true, ..SolveSpec::new(machine) };
        let out = try_solve_pipeline(&g, &spec).expect("admm pipeline");
        assert_eq!(out.degraded, FallbackTier::Admm);
        let stats = out.admm.expect("admm stats reported");
        assert!(stats.converged, "r={} s={}", stats.primal_residual, stats.dual_residual);
        assert!(stats.blocks >= 1 && stats.outer_iters >= 1);
        // The distributed tier lands near the dense tier on the same graph.
        let dense = solve_pipeline(&g, &SolveSpec::new(machine));
        assert_eq!(dense.degraded, FallbackTier::Primary);
        assert!(dense.admm.is_none());
        assert!(out.phi <= dense.phi * 1.01 + 1e-9, "admm {} dense {}", out.phi, dense.phi);
        // Below the size threshold, nothing auto-routes.
        assert!(!routes_through_admm(&g, &SolveSpec::new(machine)));
        assert!(routes_through_admm(&g, &spec));
    }

    #[test]
    fn machine_specs_resolve() {
        for spec in MACHINE_SPECS {
            let m = machine_from_spec(spec, 16).expect(spec);
            assert_eq!(m.procs, 16);
        }
        assert!(machine_from_spec("mesh", 8).unwrap().xfer.t_n > 0.0);
        assert!(machine_from_spec("vax", 8).is_none());
    }
}
