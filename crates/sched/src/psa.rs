//! The Prioritized Scheduling Algorithm (paper Section 3).
//!
//! Input: an MDG, a machine, and the *continuous* allocation produced by
//! the convex program. The PSA then:
//!
//! 1. rounds every `p_i` to the nearest power of two;
//! 2. clamps the allocation to the bound `PB` (Corollary 1 by default);
//! 3. recomputes all node/edge weights for the modified allocation;
//! 4. repeatedly takes the ready node with the **lowest EST** (the
//!    prioritization that gives the algorithm its name) and places it at
//!    `max(EST, PST)`, where PST — the Processor Satisfaction Time — is
//!    the instant its processor demand can be met;
//! 5. stops when STOP is placed; STOP's finish time is `T_psa`.
//!
//! Processors are modeled as a flat pool with per-processor free times
//! (the paper's cost functions carry no notion of processor contiguity,
//! so a flat pool loses nothing). A node needing `k` processors takes the
//! `k` earliest-free ones; its PST is the `k`-th smallest free time.

use crate::bounds::optimal_pb;
use crate::rounding::{bound_allocation, round_allocation};
use crate::schedule::{Schedule, Task};
use paradigm_cost::{Allocation, Machine, MdgWeights};
use paradigm_mdg::{Mdg, NodeId, NodeKind};

/// Ready-queue priority of the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// The paper's PSA: pick the ready node with the lowest Earliest
    /// Start Time.
    #[default]
    LowestEst,
    /// Highest Level First: pick the ready node with the longest
    /// remaining weighted path to STOP (classic critical-path list
    /// scheduling; used by the `ablation_scheduler_policy` bench).
    HighestLevelFirst,
}

/// PSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PsaConfig {
    /// Processor bound; `None` selects Corollary 1's optimum.
    pub pb: Option<u32>,
    /// Skip the rounding step (ablation only — the input allocation must
    /// already be integral powers of two, or the schedule is rejected).
    pub skip_rounding: bool,
    /// Ready-queue priority (the paper's PSA by default).
    pub policy: SchedPolicy,
}

/// Everything the PSA produced.
#[derive(Debug, Clone)]
pub struct PsaResult {
    /// The final schedule.
    pub schedule: Schedule,
    /// Allocation after Step 1 (rounding).
    pub rounded: Allocation,
    /// Allocation after Step 2 (bounding) — the one actually scheduled.
    pub bounded: Allocation,
    /// The processor bound used.
    pub pb: u32,
    /// The recomputed weights (Step 3).
    pub weights: MdgWeights,
    /// `T_psa`: the schedule's makespan.
    pub t_psa: f64,
}

/// Run the PSA. See the module docs for the algorithm.
///
/// ```
/// use paradigm_mdg::example_fig1_mdg;
/// use paradigm_cost::{Allocation, Machine};
/// use paradigm_sched::{psa_schedule, PsaConfig};
///
/// let g = example_fig1_mdg();
/// let mut alloc = Allocation::uniform(&g, 1.0);
/// alloc.set(paradigm_mdg::NodeId(1), 4.0); // N1 on the whole machine
/// alloc.set(paradigm_mdg::NodeId(2), 2.0); // N2 || N3 on halves
/// alloc.set(paradigm_mdg::NodeId(3), 2.0);
/// let res = psa_schedule(&g, Machine::cm5(4), &alloc, &PsaConfig::default());
/// assert!((res.t_psa - 14.3).abs() < 1e-9); // the paper's Figure 2
/// res.schedule.validate(&g, &res.weights).unwrap();
/// ```
///
/// # Panics
/// Panics if `skip_rounding` is set but the allocation is not integral
/// powers of two, or if the allocation size does not match the graph.
pub fn psa_schedule(
    g: &Mdg,
    machine: Machine,
    continuous: &Allocation,
    cfg: &PsaConfig,
) -> PsaResult {
    assert_eq!(continuous.len(), g.node_count(), "allocation/graph size mismatch");
    // Steps 1-2: round, bound.
    let rounded = if cfg.skip_rounding {
        assert!(continuous.is_power_of_two(), "skip_rounding requires a power-of-two allocation");
        continuous.clone()
    } else {
        round_allocation(g, continuous)
    };
    let pb = cfg.pb.unwrap_or_else(|| optimal_pb(machine.procs));
    assert!(pb <= machine.procs, "PB {pb} exceeds machine size {}", machine.procs);
    let bounded = bound_allocation(&rounded, pb);
    // Step 3: recompute weights.
    let weights = MdgWeights::compute(g, &machine, &bounded);

    // HLF priority: longest remaining weighted path to STOP.
    let levels: Vec<f64> = {
        let n = g.node_count();
        let mut level = vec![0.0_f64; n];
        for &v in g.topo_order().iter().rev() {
            let mut best = 0.0_f64;
            for &e in g.out_edges(v) {
                let w = g.edge(e).dst;
                let cand = weights.edge_weight(e) + level[w];
                if cand > best {
                    best = cand;
                }
            }
            level[v.0] = weights.node_weight(v) + best;
        }
        level
    };

    // Steps 4-7: the list scheduling loop.
    let n = g.node_count();
    let p = machine.procs as usize;
    let mut free_time = vec![0.0_f64; p];
    let mut remaining_preds: Vec<usize> = (0..n).map(|v| g.in_edges(NodeId(v)).len()).collect();
    let mut est = vec![f64::INFINITY; n];
    let mut finish = vec![f64::NAN; n];
    let mut placed: Vec<Option<Task>> = vec![None; n];
    let mut ready: Vec<NodeId> = Vec::new();

    est[g.start().0] = 0.0;
    ready.push(g.start());

    let mut order: Vec<Task> = Vec::with_capacity(n);
    let mut proc_indices: Vec<usize> = (0..p).collect();

    while let Some(pos) = match cfg.policy {
        SchedPolicy::LowestEst => pick_lowest_est(&ready, &est),
        SchedPolicy::HighestLevelFirst => pick_highest_level(&ready, &levels),
    } {
        let v = ready.swap_remove(pos);
        let node = g.node(v);
        let t_v = weights.node_weight(v);
        let k = if node.kind == NodeKind::Compute { weights.alloc.as_u32(v) as usize } else { 0 };

        let (start, procs) = if k == 0 {
            (est[v.0], Vec::new())
        } else {
            // k earliest-free processors; PST = k-th smallest free time.
            proc_indices.sort_by(|&a, &b| {
                free_time[a].partial_cmp(&free_time[b]).expect("finite free times")
            });
            let chosen: Vec<u32> = proc_indices[..k].iter().map(|&i| i as u32).collect();
            let pst = free_time[proc_indices[k - 1]];
            let start = if pst >= est[v.0] { pst } else { est[v.0] };
            for &c in &chosen {
                free_time[c as usize] = start + t_v;
            }
            (start, chosen)
        };

        let f = start + t_v;
        finish[v.0] = f;
        let task = Task { node: v, procs, start, finish: f };
        placed[v.0] = Some(task.clone());
        order.push(task);

        if v == g.stop() {
            break;
        }

        // Step 6: release successors whose predecessors are all placed.
        for &e in g.out_edges(v) {
            let w = g.edge(e).dst;
            remaining_preds[w] -= 1;
            if remaining_preds[w] == 0 {
                let mut ew = 0.0_f64;
                for &ie in g.in_edges(NodeId(w)) {
                    let m = g.edge(ie).src;
                    let cand = finish[m] + weights.edge_weight(ie);
                    if cand > ew {
                        ew = cand;
                    }
                }
                est[w] = ew;
                ready.push(NodeId(w));
            }
        }
    }

    let t_psa = finish[g.stop().0];
    assert!(t_psa.is_finite(), "PSA failed to schedule STOP — malformed MDG?");
    let schedule = Schedule { tasks: order, machine_procs: machine.procs, makespan: t_psa };
    PsaResult { schedule, rounded, bounded, pb, weights, t_psa }
}

/// Index (into `ready`) of the node with the lowest EST; ties break
/// toward the lower node id for determinism.
fn pick_lowest_est(ready: &[NodeId], est: &[f64]) -> Option<usize> {
    if ready.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for i in 1..ready.len() {
        let (ei, eb) = (est[ready[i].0], est[ready[best].0]);
        if ei < eb || (ei == eb && ready[i] < ready[best]) {
            best = i;
        }
    }
    Some(best)
}

/// Index (into `ready`) of the node with the highest level (longest
/// remaining path); ties break toward the lower node id.
fn pick_highest_level(ready: &[NodeId], levels: &[f64]) -> Option<usize> {
    if ready.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for i in 1..ready.len() {
        let (li, lb) = (levels[ready[i].0], levels[ready[best].0]);
        if li > lb || (li == lb && ready[i] < ready[best]) {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::theorem3_factor;
    use paradigm_mdg::{
        complex_matmul_mdg, example_fig1_mdg, random_layered_mdg, strassen_mdg, KernelCostTable,
        RandomMdgConfig,
    };
    use paradigm_solver::{allocate, SolverConfig};

    fn fig1_alloc(g: &Mdg) -> Allocation {
        let mut a = Allocation::uniform(g, 1.0);
        a.set(NodeId(1), 4.0);
        a.set(NodeId(2), 2.0);
        a.set(NodeId(3), 2.0);
        a
    }

    #[test]
    fn fig1_psa_reproduces_mixed_schedule() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let res = psa_schedule(&g, m, &fig1_alloc(&g), &PsaConfig::default());
        // PB for p=4 is 4 -> no clamping; makespan must be the paper's
        // mixed-parallelism 14.3 s.
        assert_eq!(res.pb, 4);
        assert!((res.t_psa - 14.3).abs() < 1e-9, "T_psa = {}", res.t_psa);
        res.schedule.validate(&g, &res.weights).unwrap();
        // N2 and N3 run concurrently on disjoint processor pairs.
        let t2 = res.schedule.task_for(NodeId(2)).unwrap();
        let t3 = res.schedule.task_for(NodeId(3)).unwrap();
        assert!((t2.start - t3.start).abs() < 1e-12);
        assert!(t2.procs.iter().all(|p| !t3.procs.contains(p)));
    }

    #[test]
    fn naive_all4_allocation_gives_serial_schedule() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        assert!((res.t_psa - 15.6).abs() < 1e-9, "T_psa = {}", res.t_psa);
        res.schedule.validate(&g, &res.weights).unwrap();
    }

    #[test]
    fn psa_schedules_are_always_valid() {
        let cfg = RandomMdgConfig::default();
        for seed in 0..10 {
            let g = random_layered_mdg(&cfg, seed);
            for procs in [4u32, 16, 64] {
                let m = Machine::cm5(procs);
                let alloc = Allocation::uniform(&g, (procs as f64 / 3.0).max(1.0));
                let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
                res.schedule
                    .validate(&g, &res.weights)
                    .unwrap_or_else(|e| panic!("seed {seed}, p {procs}: {e}"));
            }
        }
    }

    #[test]
    fn bounding_step_clamps_to_pb() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(64);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 64.0), &PsaConfig::default());
        assert_eq!(res.pb, 32, "Corollary 1 for p=64");
        assert!(res.bounded.max() <= 32.0);
        assert!(res.rounded.max() >= 64.0 - 1e-9, "rounding alone keeps 64");
    }

    #[test]
    fn explicit_pb_overrides_corollary() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(64);
        let res = psa_schedule(
            &g,
            m,
            &Allocation::uniform(&g, 64.0),
            &PsaConfig { pb: Some(8), skip_rounding: false, ..PsaConfig::default() },
        );
        assert_eq!(res.pb, 8);
        assert!(res.bounded.max() <= 8.0);
    }

    /// Theorem 3 end-to-end: T_psa from (convex solve -> PSA) is within
    /// the proven factor of Phi on the paper's workloads.
    #[test]
    fn theorem3_bound_holds_on_paper_workloads() {
        let table = KernelCostTable::cm5();
        let graphs = [complex_matmul_mdg(64, &table), strassen_mdg(128, &table)];
        for g in &graphs {
            for p in [16u32, 32, 64] {
                let m = Machine::cm5(p);
                let sol = allocate(g, m, &SolverConfig::fast());
                let res = psa_schedule(g, m, &sol.alloc, &PsaConfig::default());
                let bound = theorem3_factor(p, res.pb) * sol.phi.phi;
                assert!(
                    res.t_psa <= bound,
                    "{} p={p}: T_psa {} > bound {}",
                    g.name(),
                    res.t_psa,
                    bound
                );
                res.schedule.validate(g, &res.weights).unwrap();
            }
        }
    }

    #[test]
    fn skip_rounding_requires_pow2() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let res = std::panic::catch_unwind(|| {
            psa_schedule(
                &g,
                m,
                &Allocation::uniform(&g, 3.0),
                &PsaConfig { pb: None, skip_rounding: true, ..PsaConfig::default() },
            )
        });
        assert!(res.is_err());
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        let m = Machine::cm5(32);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 8.0), &PsaConfig::default());
        let (cp, _) = res.weights.critical_path_time(&g);
        assert!(res.t_psa >= cp - 1e-9, "makespan below critical path");
        // And at least the area bound.
        let ap = res.weights.average_finish_time();
        assert!(res.t_psa >= ap - 1e-9, "makespan below area bound");
    }

    #[test]
    fn hlf_policy_produces_valid_schedules() {
        let cfg = RandomMdgConfig::default();
        for seed in 0..8 {
            let g = random_layered_mdg(&cfg, seed);
            let m = Machine::cm5(16);
            let psa_cfg =
                PsaConfig { policy: SchedPolicy::HighestLevelFirst, ..PsaConfig::default() };
            let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &psa_cfg);
            res.schedule.validate(&g, &res.weights).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Both policies respect the same lower bounds.
            let (cp, _) = res.weights.critical_path_time(&g);
            assert!(res.t_psa >= cp - 1e-9);
        }
    }

    #[test]
    fn hlf_matches_psa_on_fig1() {
        // On the 3-node example both priorities produce the same optimal
        // mixed schedule.
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let est = psa_schedule(&g, m, &fig1_alloc(&g), &PsaConfig::default());
        let hlf = psa_schedule(
            &g,
            m,
            &fig1_alloc(&g),
            &PsaConfig { policy: SchedPolicy::HighestLevelFirst, ..PsaConfig::default() },
        );
        assert!((est.t_psa - hlf.t_psa).abs() < 1e-12);
    }

    #[test]
    fn single_processor_machine_serializes_everything() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(1);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 1.0), &PsaConfig::default());
        // Three nodes of tau = 16.9 each, serial.
        assert!((res.t_psa - 3.0 * 16.9).abs() < 1e-9);
        res.schedule.validate(&g, &res.weights).unwrap();
    }
}
