//! Optimality bounds — paper Section 5 (Theorems 1–3, Corollary 1).
//!
//! * Theorem 1: `T_psa <= (1 + p/(p - PB + 1)) * T_opt^PB` — list
//!   scheduling with a per-node processor bound, *including data transfer
//!   costs* (the paper's novel part).
//! * Theorem 2: `T_opt^PB <= (3/2)^2 * (p/PB)^2 * Phi` — the cost of the
//!   rounding and bounding steps relative to the convex optimum.
//! * Theorem 3 = product of the two.
//! * Corollary 1: the `PB` to use is the power of two minimizing the
//!   Theorem-3 factor.

/// Theorem 1 factor: `1 + p / (p - PB + 1)`.
///
/// # Panics
/// Panics unless `1 <= pb <= p`.
pub fn theorem1_factor(p: u32, pb: u32) -> f64 {
    assert!(pb >= 1 && pb <= p, "need 1 <= PB <= p, got PB={pb}, p={p}");
    1.0 + p as f64 / (p - pb + 1) as f64
}

/// Theorem 2 factor: `(3/2)^2 * (p/PB)^2`.
pub fn theorem2_factor(p: u32, pb: u32) -> f64 {
    assert!(pb >= 1 && pb <= p, "need 1 <= PB <= p, got PB={pb}, p={p}");
    2.25 * (p as f64 / pb as f64).powi(2)
}

/// Theorem 3 factor: `(1 + p/(p-PB+1)) * (3/2)^2 * (p/PB)^2`.
pub fn theorem3_factor(p: u32, pb: u32) -> f64 {
    theorem1_factor(p, pb) * theorem2_factor(p, pb)
}

/// Corollary 1: the power of two `PB <= p` minimizing the Theorem-3
/// factor (ties resolved toward the larger `PB`, which wastes less
/// parallelism inside a node).
pub fn optimal_pb(p: u32) -> u32 {
    assert!(p >= 1);
    let mut best = 1u32;
    let mut best_f = f64::INFINITY;
    let mut pb = 1u32;
    while pb <= p {
        let f = theorem3_factor(p, pb);
        if f <= best_f {
            best_f = f;
            best = pb;
        }
        if pb > p / 2 {
            break;
        }
        pb *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_known_values() {
        // p = 64, PB = 32: 1 + 64/33.
        assert!((theorem1_factor(64, 32) - (1.0 + 64.0 / 33.0)).abs() < 1e-12);
        // PB = p: 1 + p (the classic no-bound list-scheduling blowup).
        assert!((theorem1_factor(16, 16) - 17.0).abs() < 1e-12);
        // PB = 1: 1 + p/p = 2 (Graham's bound).
        assert!((theorem1_factor(64, 1) - (1.0 + 64.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn theorem2_known_values() {
        assert!((theorem2_factor(64, 64) - 2.25).abs() < 1e-12);
        assert!((theorem2_factor(64, 32) - 9.0).abs() < 1e-12);
        assert!((theorem2_factor(64, 16) - 36.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_is_product() {
        for &(p, pb) in &[(64u32, 32u32), (16, 8), (4, 4), (8, 2)] {
            assert!(
                (theorem3_factor(p, pb) - theorem1_factor(p, pb) * theorem2_factor(p, pb)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn optimal_pb_for_paper_sizes() {
        // Evaluated by hand: p=4 -> PB=4 (11.25 beats 21 at PB=2);
        // p=16 -> PB=8; p=32 -> PB=16; p=64 -> PB=32.
        assert_eq!(optimal_pb(4), 4);
        assert_eq!(optimal_pb(16), 8);
        assert_eq!(optimal_pb(32), 16);
        assert_eq!(optimal_pb(64), 32);
    }

    #[test]
    fn optimal_pb_trivial_machines() {
        assert_eq!(optimal_pb(1), 1);
        assert_eq!(optimal_pb(2), 2);
    }

    #[test]
    fn optimal_pb_minimizes_over_all_pow2() {
        for p in [4u32, 8, 16, 32, 64, 128] {
            let pb = optimal_pb(p);
            let f = theorem3_factor(p, pb);
            let mut other = 1;
            while other <= p {
                assert!(f <= theorem3_factor(p, other) + 1e-12);
                if other > p / 2 {
                    break;
                }
                other *= 2;
            }
        }
    }

    #[test]
    #[should_panic(expected = "PB")]
    fn factor_rejects_pb_above_p() {
        let _ = theorem1_factor(4, 8);
    }
}
