//! Baseline execution schemes the paper compares against.
//!
//! * [`spmd_schedule`] — pure data parallelism: every node runs on all
//!   `p` processors, one after another (the "SPMD versions" of Section 6;
//!   redistribution costs between consecutive nodes still apply).
//! * [`task_parallel_schedule`] — pure functional parallelism: every
//!   node runs on exactly one processor; concurrency comes only from the
//!   DAG. (Not in the paper's evaluation, but the natural other extreme;
//!   used by the ablation benches.)
//! * [`serial_schedule`] — the 1-processor reference time `Σ tau_i`
//!   (no message passing on a single processor), which both the paper's
//!   speedups and ours normalize against.

use crate::psa::{psa_schedule, PsaConfig, PsaResult};
use crate::schedule::{Schedule, Task};
use paradigm_cost::{Allocation, Machine, MdgWeights};
use paradigm_mdg::{Mdg, NodeKind};

/// Pure data-parallel (SPMD) execution: every compute node uses all `p`
/// processors; nodes run serially in a topological order, but never
/// earlier than their predecessors' data has arrived (network delays
/// still apply on machines where `t_n > 0`).
///
/// Returns the schedule together with the weights it was computed from.
pub fn spmd_schedule(g: &Mdg, machine: Machine) -> (Schedule, MdgWeights) {
    let alloc = spmd_allocation(g, machine.procs);
    let weights = MdgWeights::compute(g, &machine, &alloc);
    let all_procs: Vec<u32> = (0..machine.procs).collect();
    let mut tasks: Vec<Task> = Vec::with_capacity(g.node_count());
    let mut finish = vec![0.0_f64; g.node_count()];
    let mut prev_finish = 0.0_f64;
    for &v in g.topo_order() {
        let mut start = prev_finish;
        for &e in g.in_edges(v) {
            let m = g.edge(e).src;
            let cand = finish[m] + weights.edge_weight(e);
            if cand > start {
                start = cand;
            }
        }
        let f = start + weights.node_weight(v);
        finish[v.0] = f;
        let procs =
            if g.node(v).kind == NodeKind::Compute { all_procs.clone() } else { Vec::new() };
        tasks.push(Task { node: v, procs, start, finish: f });
        prev_finish = f;
    }
    let makespan = finish[g.stop().0];
    (Schedule { tasks, machine_procs: machine.procs, makespan }, weights)
}

/// The SPMD allocation: `p` everywhere (1 on structural nodes).
pub fn spmd_allocation(g: &Mdg, procs: u32) -> Allocation {
    let mut a = Allocation::uniform(g, 1.0);
    for (id, n) in g.nodes() {
        if n.kind == NodeKind::Compute {
            a.set(id, procs as f64);
        }
    }
    a
}

/// Pure task-parallel execution: one processor per node, list-scheduled
/// by the PSA machinery (rounding is a no-op on an all-ones allocation).
pub fn task_parallel_schedule(g: &Mdg, machine: Machine) -> PsaResult {
    psa_schedule(
        g,
        machine,
        &Allocation::uniform(g, 1.0),
        &PsaConfig { pb: Some(1), skip_rounding: true, ..PsaConfig::default() },
    )
}

/// Sequential reference time: `Σ tau_i` over compute nodes. A single
/// processor program passes no messages, so no transfer costs apply.
pub fn serial_schedule(g: &Mdg) -> f64 {
    g.nodes().filter(|(_, n)| n.kind == NodeKind::Compute).map(|(_, n)| n.cost.tau).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{complex_matmul_mdg, example_fig1_mdg, KernelCostTable, NodeId};

    #[test]
    fn spmd_fig1_matches_paper_naive_scheme() {
        let g = example_fig1_mdg();
        let (s, w) = spmd_schedule(&g, Machine::cm5(4));
        assert!((s.makespan - 15.6).abs() < 1e-9, "makespan = {}", s.makespan);
        s.validate(&g, &w).unwrap();
    }

    #[test]
    fn spmd_is_serial_in_time() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let (s, _) = spmd_schedule(&g, Machine::cm5(16));
        // No two compute tasks overlap.
        let mut compute: Vec<&Task> = s.tasks.iter().filter(|t| !t.procs.is_empty()).collect();
        compute.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in compute.windows(2) {
            assert!(pair[1].start >= pair[0].finish - 1e-9);
        }
    }

    #[test]
    fn spmd_speedup_is_sublinear_when_communication_dominates() {
        // For tiny work on many processors, SPMD pays startup costs that
        // the serial execution avoids entirely.
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let serial = serial_schedule(&g);
        let (s64, _) = spmd_schedule(&g, Machine::cm5(64));
        // 64x64 CMM does get speedup at 64 procs, but efficiency is low:
        // speedup well below p.
        let speedup = serial / s64.makespan;
        assert!(speedup > 1.0, "speedup {speedup}");
        assert!(speedup < 32.0, "speedup {speedup} suspiciously high");
    }

    #[test]
    fn task_parallel_uses_single_processors() {
        let g = example_fig1_mdg();
        let res = task_parallel_schedule(&g, Machine::cm5(4));
        res.schedule.validate(&g, &res.weights).unwrap();
        for t in &res.schedule.tasks {
            assert!(t.procs.len() <= 1);
        }
        // N2 and N3 still run concurrently (on different processors).
        let t2 = res.schedule.task_for(NodeId(2)).unwrap();
        let t3 = res.schedule.task_for(NodeId(3)).unwrap();
        assert!(t2.start < t3.finish && t3.start < t2.finish, "no overlap");
    }

    #[test]
    fn serial_time_of_fig1() {
        let g = example_fig1_mdg();
        assert!((serial_schedule(&g) - 3.0 * 16.9).abs() < 1e-9);
    }

    #[test]
    fn spmd_allocation_is_uniform_p() {
        let g = example_fig1_mdg();
        let a = spmd_allocation(&g, 8);
        assert_eq!(a.get(NodeId(1)), 8.0);
        assert_eq!(a.get(g.start()), 1.0);
    }
}
