//! Schedule analysis: idle-time accounting and machine-readable export.
//!
//! Theorem 1's proof hinges on *Idling Situations* — periods where more
//! than `PB` processors sit idle because every unscheduled node waits on
//! ongoing events. [`idle_profile`] measures exactly that structure in a
//! produced schedule: how much processor-time is idle, and how long the
//! periods with fewer than `p - PB + 1` busy processors last (the `Δ` of
//! the proof, which Theorem 1 bounds by the critical path).

use crate::schedule::Schedule;
use paradigm_mdg::Mdg;
use std::fmt::Write as _;

/// Idle-time breakdown of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleProfile {
    /// Total processor-seconds in the `p x makespan` rectangle.
    pub total_area: f64,
    /// Processor-seconds spent executing tasks.
    pub busy_area: f64,
    /// Processor-seconds idle.
    pub idle_area: f64,
    /// Wall-clock duration during which **fewer than** `p - PB + 1`
    /// processors were busy — the Idling-Situation duration `Δ` from the
    /// Theorem-1 proof.
    pub idling_situation_time: f64,
    /// Maximum number of simultaneously busy processors.
    pub peak_busy: usize,
}

impl IdleProfile {
    /// Fraction of the machine rectangle that is busy.
    pub fn utilization(&self) -> f64 {
        if self.total_area > 0.0 {
            self.busy_area / self.total_area
        } else {
            0.0
        }
    }
}

/// Compute the idle profile of a schedule under bound `pb`.
pub fn idle_profile(schedule: &Schedule, pb: u32) -> IdleProfile {
    let p = schedule.machine_procs as usize;
    let total_area = schedule.makespan * p as f64;
    let busy_area: f64 = schedule.tasks.iter().map(|t| t.duration() * t.procs.len() as f64).sum();

    // Sweep: busy-processor count over time via start/finish events.
    let mut events: Vec<(f64, i64)> = Vec::new();
    for t in &schedule.tasks {
        if !t.procs.is_empty() && t.duration() > 0.0 {
            events.push((t.start, t.procs.len() as i64));
            events.push((t.finish, -(t.procs.len() as i64)));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let threshold = (schedule.machine_procs.saturating_sub(pb) + 1) as i64;
    let mut busy = 0i64;
    let mut prev_t = 0.0_f64;
    let mut idling_situation_time = 0.0;
    let mut peak_busy = 0i64;
    let mut i = 0usize;
    while i < events.len() {
        let t = events[i].0;
        if busy < threshold && t > prev_t {
            idling_situation_time += t - prev_t;
        }
        // Apply all events at this timestamp.
        while i < events.len() && events[i].0 == t {
            busy += events[i].1;
            i += 1;
        }
        peak_busy = peak_busy.max(busy);
        prev_t = t;
    }
    if schedule.makespan > prev_t && busy < threshold {
        idling_situation_time += schedule.makespan - prev_t;
    }
    IdleProfile {
        total_area,
        busy_area,
        idle_area: total_area - busy_area,
        idling_situation_time,
        peak_busy: peak_busy.max(0) as usize,
    }
}

/// Render the schedule as a self-contained SVG Gantt chart (one lane per
/// processor, one rectangle per task-processor occupation, task colors
/// derived deterministically from node ids, time axis in seconds).
pub fn gantt_svg(schedule: &Schedule, g: &Mdg) -> String {
    const WIDTH: f64 = 960.0;
    const LANE: f64 = 22.0;
    const LEFT: f64 = 52.0;
    const TOP: f64 = 30.0;
    let p = schedule.machine_procs as usize;
    let span = schedule.makespan.max(1e-12);
    let height = TOP + LANE * p as f64 + 40.0;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" font-family="monospace" font-size="11">"#,
        WIDTH + LEFT + 20.0,
        height
    );
    let _ = writeln!(
        s,
        r#"<text x="{LEFT}" y="16">{} — {} procs, makespan {:.4} s</text>"#,
        xml_escape(g.name()),
        p,
        schedule.makespan
    );
    for pid in 0..p {
        let y = TOP + LANE * pid as f64;
        let _ = writeln!(
            s,
            r##"<text x="4" y="{:.1}">P{pid}</text><line x1="{LEFT}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ccc"/>"##,
            y + LANE * 0.7,
            y + LANE,
            LEFT + WIDTH,
            y + LANE
        );
    }
    for t in &schedule.tasks {
        if t.procs.is_empty() || t.duration() <= 0.0 {
            continue;
        }
        let x = LEFT + WIDTH * t.start / span;
        let w = (WIDTH * t.duration() / span).max(1.0);
        let hue = (t.node.0 as u64).wrapping_mul(47) % 360;
        for &pid in &t.procs {
            let y = TOP + LANE * pid as f64 + 1.0;
            let _ = writeln!(
                s,
                r##"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="hsl({hue},65%,62%)" stroke="#444" stroke-width="0.4"><title>{}: [{:.4}, {:.4}) on {} procs</title></rect>"##,
                LANE - 2.0,
                xml_escape(&g.node(t.node).name),
                t.start,
                t.finish,
                t.procs.len()
            );
        }
    }
    // Time axis ticks.
    for k in 0..=8 {
        let frac = k as f64 / 8.0;
        let x = LEFT + WIDTH * frac;
        let y = TOP + LANE * p as f64;
        let _ = writeln!(
            s,
            r##"<line x1="{x:.1}" y1="{y:.1}" x2="{x:.1}" y2="{:.1}" stroke="#444"/><text x="{:.1}" y="{:.1}">{:.3}</text>"##,
            y + 5.0,
            x - 14.0,
            y + 18.0,
            span * frac
        );
    }
    s.push_str("</svg>\n");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Export the schedule as CSV: `node,name,procs,start,finish`.
pub fn to_csv(schedule: &Schedule, g: &Mdg) -> String {
    let mut out = String::from("node,name,procs,start,finish\n");
    for t in &schedule.tasks {
        let name = g.node(t.node).name.replace(',', ";");
        let procs = t.procs.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" ");
        let _ = writeln!(out, "{},{name},{procs},{},{}", t.node.0, t.start, t.finish);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psa::{psa_schedule, PsaConfig};
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{complex_matmul_mdg, example_fig1_mdg, KernelCostTable};

    #[test]
    fn fig1_mixed_schedule_has_zero_idle() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let mut alloc = Allocation::uniform(&g, 1.0);
        alloc.set(paradigm_mdg::NodeId(1), 4.0);
        alloc.set(paradigm_mdg::NodeId(2), 2.0);
        alloc.set(paradigm_mdg::NodeId(3), 2.0);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        let prof = idle_profile(&res.schedule, res.pb);
        // N1 on all 4, then N2||N3 on 2+2: the machine is never idle.
        assert!(prof.idle_area < 1e-9, "idle {}", prof.idle_area);
        assert!((prof.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(prof.peak_busy, 4);
        assert!(prof.idling_situation_time < 1e-9);
    }

    #[test]
    fn naive_schedule_has_full_utilization_but_more_area() {
        let g = example_fig1_mdg();
        let m = Machine::cm5(4);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prof = idle_profile(&res.schedule, res.pb);
        // Serial all-4 execution also keeps processors "busy" (on
        // inefficient work): total area is larger though.
        assert!((prof.utilization() - 1.0).abs() < 1e-9);
        assert!(prof.total_area > 4.0 * 14.3);
    }

    #[test]
    fn idle_appears_when_allocation_underuses_machine() {
        // One node on 2 procs of an 8-proc machine: 6 procs idle.
        let g = example_fig1_mdg();
        let m = Machine::cm5(8);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 2.0), &PsaConfig::default());
        let prof = idle_profile(&res.schedule, res.pb);
        assert!(prof.idle_area > 0.0);
        assert!(prof.utilization() < 0.8);
        // With the Corollary-1 PB (= 8 at p = 8) the Idling-Situation
        // threshold is 1 busy processor, which this schedule never drops
        // below...
        assert!(prof.idling_situation_time < 1e-9);
        // ...but against a tight bound PB = 2 (threshold 7 busy), the
        // whole schedule is an idling situation: at most 4 run at once.
        let tight = idle_profile(&res.schedule, 2);
        assert!((tight.idling_situation_time - res.schedule.makespan).abs() < 1e-9);
    }

    #[test]
    fn areas_are_consistent() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let prof = idle_profile(&res.schedule, res.pb);
        assert!((prof.total_area - prof.busy_area - prof.idle_area).abs() < 1e-9);
        assert!(prof.busy_area <= prof.total_area + 1e-9);
        assert!(prof.peak_busy <= 16);
    }

    #[test]
    fn svg_contains_rect_per_task_processor_occupation() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(8);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let svg = gantt_svg(&res.schedule, &g);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        let expected_rects: usize = res.schedule.tasks.iter().map(|t| t.procs.len()).sum();
        assert_eq!(svg.matches("<rect ").count(), expected_rects);
        // Every processor lane is labeled.
        for pid in 0..8 {
            assert!(svg.contains(&format!(">P{pid}<")), "missing lane P{pid}");
        }
        // Node names appear as tooltips (XML-escaped).
        assert!(svg.contains("M1 = Ar*Br"));
    }

    #[test]
    fn svg_escapes_xml_metacharacters() {
        let mut b = paradigm_mdg::MdgBuilder::new("x<&>y");
        b.compute("a < b & c", paradigm_mdg::AmdahlParams::new(0.0, 1.0));
        let g = b.finish().unwrap();
        let m = Machine::cm5(2);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 1.0), &PsaConfig::default());
        let svg = gantt_svg(&res.schedule, &g);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let m = Machine::cm5(16);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 4.0), &PsaConfig::default());
        let csv = to_csv(&res.schedule, &g);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,name,procs,start,finish");
        assert_eq!(lines.len(), 1 + g.node_count());
        // Node names containing commas must not break the column count.
        for row in &lines[1..] {
            assert_eq!(row.matches(',').count(), 4, "bad row: {row}");
        }
    }
}
