//! # paradigm-sched — Prioritized Scheduling Algorithm (PSA)
//!
//! Implements Section 3 of the paper (scheduling) and Section 5
//! (optimality analysis):
//!
//! 1. **Rounding** — the convex program's continuous allocation is
//!    rounded to the nearest power of two ([`rounding`]), changing each
//!    `p_i` by at most a factor `[2/3, 4/3]`.
//! 2. **Bounding** — allocations are clamped to the processor bound `PB`
//!    chosen by Corollary 1 ([`bounds::optimal_pb`]).
//! 3. **PSA** — a prioritized list scheduler: repeatedly pick the ready
//!    node with the lowest Earliest Start Time and place it at
//!    `max(EST, PST)` where PST is when its processor demand can be met
//!    ([`psa`]).
//!
//! [`baselines`] provides the SPMD (pure data parallelism) and
//! task-parallel comparison schedules used for the paper's Figure 8, and
//! [`bounds`] the Theorem 1–3 worst-case factors that the test-suite
//! asserts against every produced schedule.

pub mod analysis;
pub mod baselines;
pub mod bounds;
pub mod psa;
pub mod refine;
pub mod rounding;
pub mod schedule;

pub use analysis::{gantt_svg, idle_profile, to_csv, IdleProfile};
pub use baselines::{serial_schedule, spmd_schedule, task_parallel_schedule};
pub use bounds::{optimal_pb, theorem1_factor, theorem2_factor, theorem3_factor};
pub use psa::{psa_schedule, PsaConfig, PsaResult, SchedPolicy};
pub use refine::{refine_allocation, RefineConfig, RefineResult};
pub use rounding::{bound_allocation, round_allocation, round_pow2};
pub use schedule::{Schedule, Task};
