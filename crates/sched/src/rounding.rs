//! Step 1 and Step 2 of the PSA: rounding the continuous allocation to
//! powers of two, and bounding it by `PB`.
//!
//! Rounding goes to the *arithmetically nearest* power of two (ties
//! down), which is exactly the regime analyzed in Theorem 2: any `p_i`
//! changes by at most a factor of `1/3` of its value — it can decrease to
//! `2 p_i / 3` (e.g. `3 -> 2`) or increase to `4 p_i / 3` (e.g.
//! `1.5+ε -> 2`) in the worst case.

use paradigm_cost::Allocation;
use paradigm_mdg::Mdg;

/// Round a continuous processor count to the arithmetically nearest power
/// of two (ties round down). Input must be `>= 1`.
pub fn round_pow2(q: f64) -> u32 {
    assert!(q.is_finite() && q >= 1.0, "processor count must be >= 1, got {q}");
    let lower_exp = q.log2().floor() as u32;
    let lower = 1u32 << lower_exp;
    // Guard against floating error at exact powers of two.
    if (lower as f64) >= q {
        return lower;
    }
    let upper = lower.saturating_mul(2);
    if q - lower as f64 <= upper as f64 - q {
        lower
    } else {
        upper
    }
}

/// Step 1: round every node's allocation to the nearest power of two.
/// Structural nodes (START/STOP) keep allocation 1.
pub fn round_allocation(g: &Mdg, alloc: &Allocation) -> Allocation {
    let mut out = Vec::with_capacity(alloc.len());
    for (id, node) in g.nodes() {
        if node.is_structural() {
            out.push(1.0);
        } else {
            out.push(round_pow2(alloc.get(id)) as f64);
        }
    }
    Allocation::new(out)
}

/// Step 2: clamp every allocation to at most `pb` processors. `pb` must
/// be a power of two (otherwise a re-round could push a node back above
/// the bound — see the paper's discussion).
pub fn bound_allocation(alloc: &Allocation, pb: u32) -> Allocation {
    assert!(pb.is_power_of_two(), "PB must be a power of two, got {pb}");
    Allocation::new(alloc.as_slice().iter().map(|&q| q.min(pb as f64)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{AmdahlParams, MdgBuilder, NodeId};

    #[test]
    fn round_exact_powers_unchanged() {
        for k in 0..10 {
            let q = (1u32 << k) as f64;
            assert_eq!(round_pow2(q), 1 << k);
        }
    }

    #[test]
    fn round_nearest_arithmetic() {
        assert_eq!(round_pow2(1.0), 1);
        assert_eq!(round_pow2(1.4), 1);
        assert_eq!(round_pow2(1.6), 2);
        assert_eq!(round_pow2(3.0), 2, "tie rounds down");
        assert_eq!(round_pow2(3.01), 4);
        assert_eq!(round_pow2(5.9), 4);
        assert_eq!(round_pow2(6.1), 8);
        assert_eq!(round_pow2(47.9), 32, "48 is the 32/64 tie point");
        assert_eq!(round_pow2(48.1), 64);
    }

    /// Theorem 2's premise: rounding changes any value by a factor in
    /// `[2/3, 4/3]`.
    #[test]
    fn rounding_factor_within_theorem2_premise() {
        let mut q = 1.0;
        while q < 200.0 {
            let r = round_pow2(q) as f64;
            let factor = r / q;
            assert!(
                (2.0 / 3.0 - 1e-9..=4.0 / 3.0 + 1e-9).contains(&factor),
                "q={q}: rounded to {r}, factor {factor}"
            );
            q += 0.013;
        }
    }

    fn simple_graph() -> Mdg {
        let mut b = MdgBuilder::new("g");
        b.compute("a", AmdahlParams::new(0.1, 1.0));
        b.compute("b", AmdahlParams::new(0.1, 1.0));
        b.finish().unwrap()
    }

    #[test]
    fn round_allocation_handles_structural_nodes() {
        let g = simple_graph();
        let a = Allocation::new(vec![1.0, 2.7, 6.3, 1.0]);
        let r = round_allocation(&g, &a);
        assert_eq!(r.get(g.start()), 1.0);
        assert_eq!(r.get(NodeId(1)), 2.0); // 2.7 -> 2 (dist .7 vs 1.3)
        assert_eq!(r.get(NodeId(2)), 8.0); // 6.3 -> 8 (dist 2.3 vs 1.7 -> 8)
        assert_eq!(r.get(g.stop()), 1.0);
        assert!(r.is_power_of_two());
    }

    #[test]
    fn bound_clamps_only_large_values() {
        let a = Allocation::new(vec![1.0, 2.0, 16.0, 64.0]);
        let b = bound_allocation(&a, 8);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 8.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bound_rejects_non_pow2() {
        let a = Allocation::new(vec![1.0]);
        let _ = bound_allocation(&a, 6);
    }

    #[test]
    fn round_then_bound_stays_pow2() {
        let g = simple_graph();
        let a = Allocation::new(vec![1.0, 23.0, 51.0, 1.0]);
        let r = bound_allocation(&round_allocation(&g, &a), 16);
        assert!(r.is_power_of_two());
        assert!(r.max() <= 16.0);
    }
}
