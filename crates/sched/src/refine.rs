//! Post-PSA allocation refinement.
//!
//! The PSA schedules a *fixed* (rounded, bounded) allocation; Table 3 of
//! the paper shows the resulting `T_psa` can sit 6–16 % above `Φ`
//! because the convex program's averaged view doesn't see scheduling
//! gaps. This pass closes part of that gap with a greedy hill-climb in
//! the discrete allocation space the PSA actually uses: repeatedly try
//! doubling or halving the processor count of nodes on the *weighted
//! critical path* of the current schedule's MDG, keep any move that
//! shortens `T_psa`, and stop when no single move helps.
//!
//! Every trial is a full PSA run (cheap — the scheduler is linear-ish),
//! so the result is always a valid schedule with the same Theorem-1
//! guarantees as the starting point.

use crate::psa::{psa_schedule, PsaConfig, PsaResult};
use crate::schedule::Schedule;
use paradigm_cost::Machine;
use paradigm_mdg::{Mdg, NodeKind};

/// Refinement settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Maximum hill-climb rounds.
    pub max_rounds: usize,
    /// Keep a move only if it improves `T_psa` by at least this factor.
    pub min_improvement: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { max_rounds: 12, min_improvement: 1e-6 }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct RefineResult {
    /// The best PSA result found (>= as good as the input).
    pub best: PsaResult,
    /// `T_psa` before refinement.
    pub initial_t_psa: f64,
    /// Accepted moves, as `(node index, old procs, new procs)`.
    pub moves: Vec<(usize, u32, u32)>,
    /// Total PSA trials evaluated.
    pub trials: usize,
}

impl RefineResult {
    /// Relative improvement `1 - best/initial` (0 when nothing helped).
    pub fn improvement(&self) -> f64 {
        1.0 - self.best.t_psa / self.initial_t_psa
    }
}

/// Refine a PSA result by greedy reallocation of critical-path nodes.
/// The returned schedule always respects the same `PB` bound.
pub fn refine_allocation(
    g: &Mdg,
    machine: Machine,
    start: &PsaResult,
    cfg: &RefineConfig,
) -> RefineResult {
    let pb = start.pb;
    let psa_cfg = PsaConfig { pb: Some(pb), skip_rounding: true, ..PsaConfig::default() };
    let mut best = start.clone();
    let mut moves = Vec::new();
    let mut trials = 0usize;

    for _ in 0..cfg.max_rounds {
        // Candidates: compute nodes on the weighted critical path of the
        // current allocation (they bound the makespan from below), plus
        // the last-finishing task (which bounds it from above).
        let weights = &best.weights;
        let mut candidates: Vec<usize> = g
            .nodes()
            .filter(|(id, n)| {
                n.kind == NodeKind::Compute
                    && paradigm_mdg::validate::on_critical_path(
                        g,
                        *id,
                        |v| weights.node_weight(v),
                        |e| weights.edge_weight(e),
                        1e-9 * best.t_psa.max(1e-12),
                    )
            })
            .map(|(id, _)| id.0)
            .collect();
        if let Some(last) = last_finishing_compute(&best.schedule, g) {
            if !candidates.contains(&last) {
                candidates.push(last);
            }
        }

        let mut round_best: Option<(PsaResult, usize, u32, u32)> = None;
        for &node in &candidates {
            let cur = best.bounded.as_u32(paradigm_mdg::NodeId(node));
            let mut trial_sizes = Vec::new();
            if cur * 2 <= pb {
                trial_sizes.push(cur * 2);
            }
            if cur >= 2 {
                trial_sizes.push(cur / 2);
            }
            for q in trial_sizes {
                let mut alloc = best.bounded.clone();
                alloc.set(paradigm_mdg::NodeId(node), q as f64);
                let res = psa_schedule(g, machine, &alloc, &psa_cfg);
                trials += 1;
                let improves = res.t_psa
                    < round_best
                        .as_ref()
                        .map(|(r, _, _, _)| r.t_psa)
                        .unwrap_or(best.t_psa * (1.0 - cfg.min_improvement));
                if improves {
                    round_best = Some((res, node, cur, q));
                }
            }
        }
        match round_best {
            Some((res, node, old, new)) => {
                moves.push((node, old, new));
                best = res;
            }
            None => break,
        }
    }

    RefineResult { initial_t_psa: start.t_psa, best, moves, trials }
}

/// Index of the compute node whose task finishes last.
fn last_finishing_compute(schedule: &Schedule, g: &Mdg) -> Option<usize> {
    schedule
        .tasks
        .iter()
        .filter(|t| g.node(t.node).kind == NodeKind::Compute)
        .max_by(|a, b| a.finish.partial_cmp(&b.finish).expect("finite times"))
        .map(|t| t.node.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_mdg::{complex_matmul_mdg, strassen_mdg, KernelCostTable};
    use paradigm_solver::{allocate, SolverConfig};

    fn pipeline(g: &Mdg, p: u32) -> (Machine, PsaResult) {
        let m = Machine::cm5(p);
        let sol = allocate(g, m, &SolverConfig::fast());
        (m, psa_schedule(g, m, &sol.alloc, &PsaConfig::default()))
    }

    #[test]
    fn refinement_never_hurts() {
        for p in [16u32, 64] {
            let g = strassen_mdg(128, &KernelCostTable::cm5());
            let (m, start) = pipeline(&g, p);
            let r = refine_allocation(&g, m, &start, &RefineConfig::default());
            assert!(r.best.t_psa <= start.t_psa + 1e-12, "p={p}");
            r.best.schedule.validate(&g, &r.best.weights).unwrap();
            assert!(r.best.bounded.max() <= r.best.pb as f64);
        }
    }

    #[test]
    fn refinement_closes_part_of_the_strassen_gap() {
        // Strassen at 64 procs has the paper's largest Phi deviation;
        // the hill-climb should recover a measurable slice of it.
        let g = strassen_mdg(128, &KernelCostTable::cm5());
        let (m, start) = pipeline(&g, 64);
        let r = refine_allocation(&g, m, &start, &RefineConfig::default());
        assert!(
            r.improvement() > 0.01,
            "expected >1% improvement on Strassen, got {:.3}% ({} trials)",
            100.0 * r.improvement(),
            r.trials
        );
        assert!(!r.moves.is_empty());
    }

    #[test]
    fn refinement_is_a_fixpoint_on_already_optimal_schedules() {
        // The fig1 mixed schedule is exactly optimal for pow2
        // allocations: no move can help.
        let g = paradigm_mdg::example_fig1_mdg();
        let (m, start) = pipeline(&g, 4);
        assert!((start.t_psa - 14.3).abs() < 1e-9);
        let r = refine_allocation(&g, m, &start, &RefineConfig::default());
        assert!((r.best.t_psa - 14.3).abs() < 1e-9);
        assert!(r.moves.is_empty());
    }

    #[test]
    fn moves_are_recorded_consistently() {
        let g = complex_matmul_mdg(64, &KernelCostTable::cm5());
        let (m, start) = pipeline(&g, 32);
        let r = refine_allocation(&g, m, &start, &RefineConfig::default());
        for &(node, old, new) in &r.moves {
            assert!(old != new);
            assert!(new.is_power_of_two());
            assert!(node < g.node_count());
        }
        assert!(r.trials >= r.moves.len());
    }
}
