//! Schedule representation, validation, statistics, and Gantt rendering.
//!
//! A [`Schedule`] is a list of [`Task`]s: each MDG node placed on a
//! concrete set of processors for a time interval. Validation re-checks
//! the two properties every correct schedule must have — precedence
//! constraints (including edge network delays) and exclusive processor
//! occupation — so downstream code can trust any schedule that passes.

use paradigm_cost::MdgWeights;
use paradigm_mdg::{Mdg, NodeId, NodeKind};
use std::fmt::Write as _;

/// One scheduled node.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The MDG node.
    pub node: NodeId,
    /// Processor ids occupied (empty for structural nodes).
    pub procs: Vec<u32>,
    /// Start time, seconds.
    pub start: f64,
    /// Finish time (`start + T_i`), seconds.
    pub finish: f64,
}

impl Task {
    /// Task duration.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// A complete schedule of an MDG on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Scheduled tasks, in the order the scheduler placed them.
    pub tasks: Vec<Task>,
    /// Machine size the schedule targets.
    pub machine_procs: u32,
    /// Finish time of the STOP node.
    pub makespan: f64,
}

impl Schedule {
    /// Find the task for a node.
    pub fn task_for(&self, node: NodeId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.node == node)
    }

    /// Fraction of the `p * makespan` processor-time rectangle that is
    /// busy executing tasks.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.tasks.iter().map(|t| t.duration() * t.procs.len() as f64).sum();
        busy / (self.machine_procs as f64 * self.makespan)
    }

    /// Validate the schedule against the graph and the node/edge weights
    /// it was built from. Checks:
    ///
    /// * every node scheduled exactly once;
    /// * task durations match the node weights `T_i`;
    /// * precedence: `start_j >= finish_m + t^D_mj` for every edge;
    /// * no processor is occupied by two tasks at once;
    /// * processor ids are within the machine;
    /// * the makespan equals the STOP finish time.
    pub fn validate(&self, g: &Mdg, w: &MdgWeights) -> Result<(), String> {
        if self.tasks.len() != g.node_count() {
            return Err(format!(
                "schedule has {} tasks for {} nodes",
                self.tasks.len(),
                g.node_count()
            ));
        }
        let mut seen = vec![false; g.node_count()];
        for t in &self.tasks {
            if seen[t.node.0] {
                return Err(format!("node {} scheduled twice", t.node));
            }
            seen[t.node.0] = true;
            let expected = w.node_weight(t.node);
            if (t.duration() - expected).abs() > 1e-9 * expected.max(1.0) {
                return Err(format!(
                    "node {} duration {} != weight {}",
                    t.node,
                    t.duration(),
                    expected
                ));
            }
            if g.node(t.node).kind == NodeKind::Compute {
                let q = w.alloc.as_u32(t.node) as usize;
                if t.procs.len() != q {
                    return Err(format!(
                        "node {} uses {} processors, allocation says {}",
                        t.node,
                        t.procs.len(),
                        q
                    ));
                }
            }
            for &pid in &t.procs {
                if pid >= self.machine_procs {
                    return Err(format!("node {} uses invalid processor {pid}", t.node));
                }
            }
        }
        // Precedence with network delays.
        for (eid, e) in g.edges() {
            let tm = self.task_for(NodeId(e.src)).ok_or("missing src task")?;
            let tj = self.task_for(NodeId(e.dst)).ok_or("missing dst task")?;
            let delay = w.edge_weight(eid);
            if tj.start + 1e-9 < tm.finish + delay {
                return Err(format!(
                    "edge {} -> {}: start {} < finish {} + delay {}",
                    e.src, e.dst, tj.start, tm.finish, delay
                ));
            }
        }
        // Processor exclusivity: sweep per processor.
        let mut by_proc: Vec<Vec<(f64, f64, NodeId)>> =
            vec![Vec::new(); self.machine_procs as usize];
        for t in &self.tasks {
            for &pid in &t.procs {
                by_proc[pid as usize].push((t.start, t.finish, t.node));
            }
        }
        for (pid, ivals) in by_proc.iter_mut().enumerate() {
            ivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for pair in ivals.windows(2) {
                let (s0, f0, n0) = pair[0];
                let (s1, _, n1) = pair[1];
                let _ = s0;
                if s1 + 1e-9 < f0 {
                    return Err(format!(
                        "processor {pid}: {n0} [{s0}, {f0}) overlaps {n1} starting {s1}"
                    ));
                }
            }
        }
        // Makespan.
        let stop = self.task_for(g.stop()).ok_or("missing STOP task")?;
        if (stop.finish - self.makespan).abs() > 1e-9 * self.makespan.max(1.0) {
            return Err(format!("makespan {} != STOP finish {}", self.makespan, stop.finish));
        }
        Ok(())
    }

    /// ASCII Gantt chart: one row per processor, time binned into
    /// `width` columns, each task drawn with a letter key; a legend maps
    /// letters to node names (reproduces the paper's Figure 7 view).
    pub fn gantt(&self, g: &Mdg, width: usize) -> String {
        let mut out = String::new();
        let span = self.makespan.max(1e-12);
        let letters: Vec<char> = ('A'..='Z').chain('a'..='z').chain('0'..='9').collect();
        let mut legend: Vec<(char, String)> = Vec::new();
        let mut key_of = vec![' '; g.node_count()];
        let mut next = 0usize;
        for t in &self.tasks {
            if g.node(t.node).kind == NodeKind::Compute {
                let c = letters[next % letters.len()];
                next += 1;
                key_of[t.node.0] = c;
                legend.push((c, g.node(t.node).name.clone()));
            }
        }
        let _ = writeln!(
            out,
            "Gantt `{}` on {} procs, makespan {:.4} s (1 col = {:.4} s)",
            g.name(),
            self.machine_procs,
            self.makespan,
            span / width as f64
        );
        for pid in 0..self.machine_procs {
            let mut row = vec!['.'; width];
            for t in &self.tasks {
                if t.procs.contains(&pid) {
                    let c0 = ((t.start / span) * width as f64).floor() as usize;
                    let c1 = ((t.finish / span) * width as f64).ceil() as usize;
                    for cell in row.iter_mut().take(c1.min(width)).skip(c0.min(width)) {
                        *cell = key_of[t.node.0];
                    }
                }
            }
            let _ = writeln!(out, "  P{:<3} |{}|", pid, row.iter().collect::<String>());
        }
        let _ = writeln!(out, "  legend:");
        for (c, name) in legend {
            let _ = writeln!(out, "    {c} = {name}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradigm_cost::{Allocation, Machine};
    use paradigm_mdg::{AmdahlParams, MdgBuilder};

    fn tiny() -> (Mdg, MdgWeights) {
        let mut b = MdgBuilder::new("tiny");
        let a = b.compute("a", AmdahlParams::new(0.0, 1.0));
        let c = b.compute("c", AmdahlParams::new(0.0, 2.0));
        b.edge(a, c, vec![]);
        let g = b.finish().unwrap();
        let w = MdgWeights::compute(&g, &Machine::cm5(2), &Allocation::uniform(&g, 1.0));
        (g, w)
    }

    fn valid_schedule(g: &Mdg, w: &MdgWeights) -> Schedule {
        // START, a on proc 0 [0,1), c on proc 0 [1,3), STOP.
        Schedule {
            tasks: vec![
                Task { node: g.start(), procs: vec![], start: 0.0, finish: 0.0 },
                Task { node: NodeId(1), procs: vec![0], start: 0.0, finish: 1.0 },
                Task { node: NodeId(2), procs: vec![0], start: 1.0, finish: 3.0 },
                Task { node: g.stop(), procs: vec![], start: 3.0, finish: 3.0 },
            ],
            machine_procs: 2,
            makespan: 3.0,
        }
        .clone_with(w)
    }

    impl Schedule {
        /// Test helper: keep durations consistent with weights.
        fn clone_with(mut self, w: &MdgWeights) -> Schedule {
            for t in &mut self.tasks {
                let d = w.node_weight(t.node);
                t.finish = t.start + d;
            }
            self
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, w) = tiny();
        let s = valid_schedule(&g, &w);
        s.validate(&g, &w).unwrap();
    }

    #[test]
    fn precedence_violation_detected() {
        let (g, w) = tiny();
        let mut s = valid_schedule(&g, &w);
        // Start c before a finishes.
        s.tasks[2].start = 0.5;
        s.tasks[2].finish = 2.5;
        // Also move it to the other processor so only precedence fails.
        s.tasks[2].procs = vec![1];
        let err = s.validate(&g, &w).unwrap_err();
        assert!(err.contains("edge"), "{err}");
    }

    #[test]
    fn overlap_violation_detected() {
        let (g, w) = tiny();
        let mut s = valid_schedule(&g, &w);
        // Two tasks on proc 0 at the same time (also violates precedence,
        // so drop the edge effect by checking message text contains either).
        s.tasks[2].start = 0.2;
        s.tasks[2].finish = 2.2;
        let err = s.validate(&g, &w).unwrap_err();
        assert!(err.contains("overlap") || err.contains("edge"), "{err}");
    }

    #[test]
    fn duration_mismatch_detected() {
        let (g, w) = tiny();
        let mut s = valid_schedule(&g, &w);
        s.tasks[1].finish = s.tasks[1].start + 99.0;
        // Fix downstream times to isolate the duration check.
        let err = s.validate(&g, &w).unwrap_err();
        assert!(err.contains("duration"), "{err}");
    }

    #[test]
    fn bad_processor_id_detected() {
        let (g, w) = tiny();
        let mut s = valid_schedule(&g, &w);
        s.tasks[1].procs = vec![7];
        let err = s.validate(&g, &w).unwrap_err();
        assert!(err.contains("invalid processor"), "{err}");
    }

    #[test]
    fn utilization_of_serial_schedule() {
        let (g, w) = tiny();
        let s = valid_schedule(&g, &w);
        // Busy area = 1*1 + 2*1 = 3 over p * makespan = 2 * 3 = 6.
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_all_processors_and_legend() {
        let (g, w) = tiny();
        let s = valid_schedule(&g, &w);
        let txt = s.gantt(&g, 30);
        assert!(txt.contains("P0"));
        assert!(txt.contains("P1"));
        assert!(txt.contains("A = a"));
        assert!(txt.contains("B = c"));
        assert!(txt.contains("makespan 3.0000"));
    }
}
