//! Property-based tests of the PSA and baselines: schedule validity,
//! Theorem-1/3 bounds, rounding behaviour, and baseline relationships,
//! over randomized MDGs, allocations, and machine sizes.

use paradigm_cost::{Allocation, Machine, MdgWeights};
use paradigm_mdg::{random_layered_mdg, RandomMdgConfig};
use paradigm_sched::{
    bound_allocation, optimal_pb, psa_schedule, refine_allocation, round_allocation, round_pow2,
    serial_schedule, spmd_schedule, task_parallel_schedule, theorem1_factor, PsaConfig,
    RefineConfig,
};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = RandomMdgConfig> {
    (1usize..=5, 1usize..=4, 0.0f64..0.8).prop_map(|(layers, width, edge_prob)| RandomMdgConfig {
        layers,
        width_min: 1,
        width_max: width,
        edge_prob,
        ..RandomMdgConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn psa_always_produces_valid_schedules(
        cfg in arb_cfg(),
        seed in 0u64..5000,
        pk in 0u32..=7,
        q in 1.0f64..64.0,
    ) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        let alloc = Allocation::uniform(&g, q.min(p as f64));
        let res = psa_schedule(&g, m, &alloc, &PsaConfig::default());
        prop_assert!(res.schedule.validate(&g, &res.weights).is_ok());
        prop_assert!(res.t_psa.is_finite() && res.t_psa >= 0.0);
    }

    #[test]
    fn theorem1_holds_for_arbitrary_bounded_allocations(
        cfg in arb_cfg(),
        seed in 0u64..5000,
        pbk in 0u32..=3,
    ) {
        let g = random_layered_mdg(&cfg, seed);
        let p = 16u32;
        let pb = 1u32 << pbk; // 1..8
        let m = Machine::cm5(p);
        let alloc = Allocation::uniform(&g, pb as f64);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig { pb: Some(pb), skip_rounding: true, ..PsaConfig::default() });
        // Lower bound on the optimal schedule of this allocation:
        let w = MdgWeights::compute(&g, &m, &res.bounded);
        let lower = w.phi(&g).phi;
        prop_assert!(
            res.t_psa <= theorem1_factor(p, pb) * lower * (1.0 + 1e-9),
            "T_psa {} vs bound {}",
            res.t_psa,
            theorem1_factor(p, pb) * lower
        );
    }

    #[test]
    fn round_pow2_is_idempotent_and_bounded(q in 1.0f64..1e6) {
        let r = round_pow2(q);
        prop_assert!((r as u64).is_power_of_two());
        prop_assert_eq!(round_pow2(r as f64), r);
        let f = r as f64 / q;
        prop_assert!((2.0 / 3.0 - 1e-9..=4.0 / 3.0 + 1e-9).contains(&f));
    }

    #[test]
    fn rounding_then_bounding_invariants(cfg in arb_cfg(), seed in 0u64..5000, q in 1.0f64..64.0, pbk in 0u32..=6) {
        let g = random_layered_mdg(&cfg, seed);
        let alloc = Allocation::uniform(&g, q);
        let pb = 1u32 << pbk;
        let bounded = bound_allocation(&round_allocation(&g, &alloc), pb);
        prop_assert!(bounded.is_power_of_two());
        prop_assert!(bounded.max() <= pb as f64);
    }

    #[test]
    fn optimal_pb_is_power_of_two_at_most_p(p in 1u32..=512) {
        let pb = optimal_pb(p);
        prop_assert!(pb.is_power_of_two());
        prop_assert!(pb <= p);
        prop_assert!(pb >= 1);
    }

    #[test]
    fn spmd_makespan_equals_sum_of_weights_on_cm5(cfg in arb_cfg(), seed in 0u64..5000, pk in 0u32..=6) {
        // On the CM-5 (t_n = 0) the SPMD serialization has no network
        // delays, so the makespan is exactly the sum of node weights.
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        let (s, w) = spmd_schedule(&g, m);
        let total: f64 = g.nodes().map(|(id, _)| w.node_weight(id)).sum();
        prop_assert!((s.makespan - total).abs() < 1e-9 * total.max(1.0));
        prop_assert!(s.validate(&g, &w).is_ok());
    }

    #[test]
    fn psa_never_worse_than_spmd_with_same_uniform_allocation(
        cfg in arb_cfg(),
        seed in 0u64..5000,
        pk in 1u32..=6,
    ) {
        // Feeding the SPMD allocation through the PSA can only help (it
        // may find concurrency the serialization wastes) — but the PSA
        // bounds allocations by PB, so compare against PSA with PB = p.
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        let alloc = Allocation::uniform(&g, p as f64);
        let res = psa_schedule(&g, m, &alloc, &PsaConfig { pb: Some(p), skip_rounding: true, ..PsaConfig::default() });
        let (spmd, _) = spmd_schedule(&g, m);
        prop_assert!(res.t_psa <= spmd.makespan * (1.0 + 1e-9));
    }

    #[test]
    fn task_parallel_bounded_by_serial_time_plus_transfers(cfg in arb_cfg(), seed in 0u64..5000) {
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::cm5(64);
        let res = task_parallel_schedule(&g, m);
        prop_assert!(res.schedule.validate(&g, &res.weights).is_ok());
        // With one processor per node, every node's compute time is the
        // full tau, so the makespan is at least the critical path of taus.
        let cp = g.critical_path_with(|v| g.node(v).cost.tau, |_| 0.0);
        prop_assert!(res.t_psa >= cp - 1e-9);
        // And the serial execution (one processor for everything) is an
        // upper bound in the transfer-free comparison only; with
        // transfers the task-parallel run may exceed it. Sanity: finite.
        let _ = serial_schedule(&g);
    }

    /// Every schedule the crate can produce — PSA (rounded and raw),
    /// refinement, SPMD, task-parallel, serial — passes the full static
    /// analyzer: no races, no precedence violations, durations and
    /// allocations consistent, and no task finishing before its `y_i`
    /// recurrence lower bound.
    #[test]
    fn every_schedule_kind_passes_the_static_analyzer(
        cfg in arb_cfg(),
        seed in 0u64..5000,
        pk in 1u32..=6,
        q in 1.0f64..32.0,
    ) {
        use paradigm_analyze::analyze_schedule;
        let g = random_layered_mdg(&cfg, seed);
        let p = 1u32 << pk;
        let m = Machine::cm5(p);
        for skip_rounding in [false, true] {
            // `skip_rounding` requires an already power-of-two allocation.
            let per_node = if skip_rounding {
                round_pow2(q.min(p as f64)) as f64
            } else {
                q.min(p as f64)
            };
            let alloc = Allocation::uniform(&g, per_node);
            let res = psa_schedule(
                &g, m, &alloc,
                &PsaConfig { skip_rounding, ..PsaConfig::default() },
            );
            let rep = analyze_schedule(&g, &res.weights, &res.schedule);
            prop_assert!(rep.is_clean(), "PSA (skip_rounding={skip_rounding}): {}", rep.render());
            let refined = refine_allocation(&g, m, &res, &RefineConfig::default()).best;
            let rep = analyze_schedule(&g, &refined.weights, &refined.schedule);
            prop_assert!(rep.is_clean(), "refined: {}", rep.render());
        }
        let (s, w) = spmd_schedule(&g, m);
        let rep = analyze_schedule(&g, &w, &s);
        prop_assert!(rep.is_clean(), "SPMD: {}", rep.render());
        let tp = task_parallel_schedule(&g, m);
        let rep = analyze_schedule(&g, &tp.weights, &tp.schedule);
        prop_assert!(rep.is_clean(), "task-parallel: {}", rep.render());
    }

    #[test]
    fn gantt_renders_for_any_schedule(cfg in arb_cfg(), seed in 0u64..5000) {
        let g = random_layered_mdg(&cfg, seed);
        let m = Machine::cm5(8);
        let res = psa_schedule(&g, m, &Allocation::uniform(&g, 2.0), &PsaConfig::default());
        let txt = res.schedule.gantt(&g, 40);
        prop_assert!(txt.contains("P0"));
        prop_assert!(txt.lines().count() >= 8 + 2);
    }
}
