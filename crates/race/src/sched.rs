//! Cooperative scheduler for model builds (`--cfg paradigm_race`).
//!
//! One *execution* runs the closure-under-test once, on real OS threads, but
//! with at most one task running at a time: every shim sync operation is a
//! *scheduling point* where the task parks, announces the operation it is
//! about to perform, and waits for the controller to grant it the baton.
//! The controller (driven by the explorer in `explore.rs`) only makes a
//! decision at *quiescence* — when every live task is parked — so it always
//! sees the complete set of enabled operations and the search is exhaustive
//! over scheduling-point interleavings.
//!
//! Memory model: sequentially consistent. Atomics are interleaved as whole
//! operations; `Ordering` is accepted and traced but weak-memory reordering
//! is not modeled. Time is a logical clock that only advances when no task is
//! runnable ("patient timers"): a `wait_timeout` can only time out if the
//! system would otherwise be idle, which is exactly the starvation-free
//! abstraction the polling loops in the work queue assume.

#![allow(clippy::disallowed_types)] // the scheduler itself runs on real std primitives

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::panic::Location;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::lockorder::LockOrderGraph;
use crate::report::Event;

pub(crate) type TaskId = usize;

/// Pseudo task id used for scheduler-generated trace events (clock advance).
pub(crate) const CLOCK_TASK: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct ObjId(pub(crate) u32);
pub(crate) const NO_OBJ: ObjId = ObjId(0);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpKind {
    Begin,
    Yield,
    Lock,
    Unlock,
    RwRead,
    RwWrite,
    RwUnlockRead,
    RwUnlockWrite,
    /// Atomically release the mutex and join the condvar's waiter queue.
    CvWait,
    /// Reacquire the mutex after a notify or timeout.
    CvReacquire,
    CvNotifyOne,
    CvNotifyAll,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    Join,
    Sleep,
}

/// A pending operation announced at a scheduling point.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub kind: OpKind,
    /// Primary object (mutex/rwlock/cv/atomic); `NO_OBJ` for thread ops.
    pub obj: ObjId,
    /// Secondary object: the mutex of a `CvWait`/`CvReacquire`.
    pub obj2: ObjId,
    /// Join target task.
    pub target: TaskId,
    /// Logical-nanosecond deadline for `Sleep` / timed `CvWait`
    /// (`u64::MAX` = none).
    pub deadline: u64,
    /// `Unlock`/`RwUnlockWrite`: poison the lock. `CvReacquire`: timed out.
    pub flag: bool,
    /// Call site of the shim operation.
    pub site: &'static Location<'static>,
    /// Trace annotation (e.g. the atomic `Ordering`, or the RMW op name).
    pub note: &'static str,
}

impl Op {
    pub(crate) fn base(kind: OpKind, site: &'static Location<'static>) -> Op {
        Op {
            kind,
            obj: NO_OBJ,
            obj2: NO_OBJ,
            target: 0,
            deadline: u64::MAX,
            flag: false,
            site,
            note: "",
        }
    }
}

/// Conflict signature for sleep-set independence. Conservative: operations
/// without a primary object (spawn/join/yield/sleep) and every time-driven
/// operation are treated as dependent with everything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Sig {
    pub obj: ObjId,
    pub write: bool,
    pub timey: bool,
}

impl Op {
    pub(crate) fn sig(&self) -> Sig {
        let write = !matches!(self.kind, OpKind::AtomicLoad | OpKind::RwRead);
        let timey = self.deadline != u64::MAX || matches!(self.kind, OpKind::Sleep);
        Sig { obj: self.obj, write, timey }
    }
}

/// Two operations are independent iff they provably commute from every state.
pub(crate) fn independent(a: Sig, b: Sig) -> bool {
    if a.timey || b.timey || a.obj == NO_OBJ || b.obj == NO_OBJ {
        return false;
    }
    a.obj != b.obj || (!a.write && !b.write)
}

// ---------------------------------------------------------------------------
// Tasks and objects
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Pending {
    /// OS thread exists but has not parked yet (or is currently running).
    Startup,
    /// Parked at a scheduling point, operation announced.
    Op(Op),
    /// In a condvar waiter queue; not schedulable until notified/timed out.
    CvParked {
        cv: ObjId,
        mutex: ObjId,
        deadline: u64,
        site: &'static Location<'static>,
    },
    Done,
}

// Op is Copy/PartialEq via derives on fields; Location comparison is by
// value which is fine (same site compares equal).
impl PartialEq for Op {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.obj == other.obj
            && self.obj2 == other.obj2
            && self.target == other.target
            && self.deadline == other.deadline
            && self.flag == other.flag
    }
}
impl Eq for Op {}

#[derive(Clone, Copy, Debug)]
struct Held {
    obj: ObjId,
    class: &'static Location<'static>,
    read: bool,
}

pub(crate) struct Task {
    pub(crate) name: String,
    pub(crate) pending: Pending,
    granted: bool,
    pub(crate) finished: bool,
    /// Rendered panic message, for traces and violation reports.
    pub(crate) panic_msg: Option<String>,
    /// The raw payload, handed to whoever joins this task.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    pub(crate) panic_consumed: bool,
    held: Vec<Held>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ObjKind {
    Mutex,
    Rw,
    Cv,
    Atomic,
}

struct ObjInfo {
    kind: ObjKind,
    class: &'static Location<'static>,
    holder: Option<TaskId>,
    readers: Vec<TaskId>,
    poisoned: bool,
    waiters: VecDeque<TaskId>,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

pub(crate) struct ExecState {
    pub(crate) tasks: Vec<Task>,
    objs: Vec<ObjInfo>,
    by_addr: HashMap<usize, ObjId>,
    pub(crate) running: Option<TaskId>,
    pub(crate) grant_pending: bool,
    pub(crate) aborting: bool,
    /// One-at-a-time unwind target during abort (keeps teardown
    /// single-threaded so shim ops during unwinding Drop impls are safe).
    pub(crate) abort_target: Option<TaskId>,
    pub(crate) now: u64,
    pub(crate) events: Vec<Event>,
    pub(crate) lock_order: LockOrderGraph,
    pub(crate) internal_error: Option<String>,
}

pub(crate) struct Execution {
    pub(crate) mx: StdMutex<ExecState>,
    pub(crate) cv: StdCondvar,
}

impl Execution {
    pub(crate) fn new() -> Arc<Execution> {
        Arc::new(Execution {
            mx: StdMutex::new(ExecState {
                tasks: Vec::new(),
                objs: Vec::new(),
                by_addr: HashMap::new(),
                running: None,
                grant_pending: false,
                aborting: false,
                abort_target: None,
                now: 0,
                events: Vec::new(),
                lock_order: LockOrderGraph::new(),
                internal_error: None,
            }),
            cv: StdCondvar::new(),
        })
    }
}

fn loc(l: &'static Location<'static>) -> String {
    format!("{}:{}", l.file(), l.line())
}

impl ExecState {
    pub(crate) fn register_task(&mut self, name: String) -> TaskId {
        self.tasks.push(Task {
            name,
            pending: Pending::Startup,
            granted: false,
            finished: false,
            panic_msg: None,
            panic_payload: None,
            panic_consumed: false,
            held: Vec::new(),
        });
        self.tasks.len() - 1
    }

    fn obj_id(&mut self, addr: usize, kind: ObjKind, class: &'static Location<'static>) -> ObjId {
        if let Some(id) = self.by_addr.get(&addr) {
            return *id;
        }
        self.objs.push(ObjInfo {
            kind,
            class,
            holder: None,
            readers: Vec::new(),
            poisoned: false,
            waiters: VecDeque::new(),
        });
        let id = ObjId(self.objs.len() as u32);
        self.by_addr.insert(addr, id);
        id
    }

    fn obj(&self, id: ObjId) -> &ObjInfo {
        &self.objs[(id.0 - 1) as usize]
    }

    fn obj_mut(&mut self, id: ObjId) -> &mut ObjInfo {
        &mut self.objs[(id.0 - 1) as usize]
    }

    fn obj_label(&self, id: ObjId) -> String {
        if id == NO_OBJ {
            return String::new();
        }
        let o = self.obj(id);
        let k = match o.kind {
            ObjKind::Mutex => "Mutex",
            ObjKind::Rw => "RwLock",
            ObjKind::Cv => "Condvar",
            ObjKind::Atomic => "Atomic",
        };
        format!("{}[{}]", k, loc(o.class))
    }

    pub(crate) fn record_event(&mut self, task: TaskId, op: &Op) {
        let name =
            if task == CLOCK_TASK { "(clock)".to_string() } else { self.tasks[task].name.clone() };
        let verb = match op.kind {
            OpKind::Begin => "start",
            OpKind::Yield => "yield",
            OpKind::Lock => "lock",
            OpKind::Unlock => {
                if op.flag {
                    "unlock(poison)"
                } else {
                    "unlock"
                }
            }
            OpKind::RwRead => "read-lock",
            OpKind::RwWrite => "write-lock",
            OpKind::RwUnlockRead => "read-unlock",
            OpKind::RwUnlockWrite => "write-unlock",
            OpKind::CvWait => "wait",
            OpKind::CvReacquire => {
                if op.flag {
                    "wake(timeout) reacquire"
                } else {
                    "wake reacquire"
                }
            }
            OpKind::CvNotifyOne => "notify_one",
            OpKind::CvNotifyAll => "notify_all",
            OpKind::AtomicLoad => "atomic load",
            OpKind::AtomicStore => "atomic store",
            OpKind::AtomicRmw => "atomic rmw",
            OpKind::Join => "join",
            OpKind::Sleep => "sleep",
        };
        let mut desc = verb.to_string();
        if !op.note.is_empty() {
            desc.push_str(&format!(" {}", op.note));
        }
        if op.obj != NO_OBJ {
            desc.push_str(&format!(" {}", self.obj_label(op.obj)));
        }
        if op.kind == OpKind::CvWait || op.kind == OpKind::CvReacquire {
            desc.push_str(&format!(" / {}", self.obj_label(op.obj2)));
        }
        if op.kind == OpKind::Join {
            let tname = self.tasks.get(op.target).map(|t| t.name.clone()).unwrap_or_default();
            desc.push_str(&format!(" {}", tname));
        }
        if op.deadline != u64::MAX {
            desc.push_str(&format!(" (deadline {}ns)", op.deadline));
        }
        self.events.push(Event {
            step: self.events.len() + 1,
            task,
            name,
            op: desc,
            site: loc(op.site),
        });
    }

    /// Is the announced operation of task `t` enabled in the current state?
    pub(crate) fn op_enabled(&self, t: TaskId) -> bool {
        let op = match self.tasks[t].pending {
            Pending::Op(op) => op,
            _ => return false,
        };
        match op.kind {
            OpKind::Lock => self.obj(op.obj).holder.is_none(),
            OpKind::RwWrite => {
                let o = self.obj(op.obj);
                o.holder.is_none() && o.readers.is_empty()
            }
            OpKind::RwRead => self.obj(op.obj).holder.is_none(),
            OpKind::CvReacquire => self.obj(op.obj2).holder.is_none(),
            OpKind::Join => self.tasks[op.target].finished,
            OpKind::Sleep => self.now >= op.deadline,
            _ => true,
        }
    }

    /// Earliest pending timer deadline (sleeps and timed cv waits).
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        self.tasks
            .iter()
            .filter(|t| !t.finished)
            .filter_map(|t| match t.pending {
                Pending::Op(op) if op.kind == OpKind::Sleep => Some(op.deadline),
                Pending::CvParked { deadline, .. } if deadline != u64::MAX => Some(deadline),
                _ => None,
            })
            .min()
    }

    /// Advance the logical clock to `to`, converting timed-out condvar
    /// waiters into mutex reacquisitions.
    pub(crate) fn advance_clock(&mut self, to: u64) {
        self.now = self.now.max(to);
        let now = self.now;
        for t in 0..self.tasks.len() {
            if let Pending::CvParked { cv, mutex, deadline, site } = self.tasks[t].pending {
                if deadline <= now {
                    self.obj_mut(cv).waiters.retain(|w| *w != t);
                    let mut op = Op::base(OpKind::CvReacquire, site);
                    op.obj = cv;
                    op.obj2 = mutex;
                    op.flag = true; // timed out
                    self.tasks[t].pending = Pending::Op(op);
                }
            }
        }
        self.events.push(Event {
            step: self.events.len() + 1,
            task: CLOCK_TASK,
            name: "(clock)".to_string(),
            op: format!("advance to {}ns", now),
            site: String::new(),
        });
    }

    fn record_lock_edges(&mut self, me: TaskId, acquired: ObjId, site: &'static Location<'static>) {
        let new_class = loc(self.obj(acquired).class);
        let held: Vec<String> = self.tasks[me].held.iter().map(|h| loc(h.class)).collect();
        let site_s = loc(site);
        for h in held {
            self.lock_order.add_edge(&h, &new_class, &site_s);
        }
    }

    /// Apply the model-state effect of task `me`'s granted operation.
    /// Returns `Repark` for `CvWait` (the task stays parked as a waiter).
    fn apply_effect(&mut self, me: TaskId) -> Applied {
        let op = match self.tasks[me].pending {
            Pending::Op(op) => op,
            other => {
                self.internal_error =
                    Some(format!("grant to task {} with pending {:?}", me, other));
                return Applied::Continue(EffectOut::default());
            }
        };
        self.record_event(me, &op);
        let mut out = EffectOut::default();
        match op.kind {
            OpKind::Begin
            | OpKind::Yield
            | OpKind::AtomicLoad
            | OpKind::AtomicStore
            | OpKind::AtomicRmw
            | OpKind::Sleep => {}
            OpKind::Lock => {
                debug_assert!(self.obj(op.obj).holder.is_none());
                self.record_lock_edges(me, op.obj, op.site);
                self.obj_mut(op.obj).holder = Some(me);
                out.poisoned = self.obj(op.obj).poisoned;
                let class = self.obj(op.obj).class;
                self.tasks[me].held.push(Held { obj: op.obj, class, read: false });
            }
            OpKind::Unlock => {
                self.obj_mut(op.obj).holder = None;
                if op.flag {
                    self.obj_mut(op.obj).poisoned = true;
                }
                release_held(&mut self.tasks[me].held, op.obj, false);
            }
            OpKind::RwRead => {
                self.record_lock_edges(me, op.obj, op.site);
                self.obj_mut(op.obj).readers.push(me);
                out.poisoned = self.obj(op.obj).poisoned;
                let class = self.obj(op.obj).class;
                self.tasks[me].held.push(Held { obj: op.obj, class, read: true });
            }
            OpKind::RwWrite => {
                self.record_lock_edges(me, op.obj, op.site);
                self.obj_mut(op.obj).holder = Some(me);
                out.poisoned = self.obj(op.obj).poisoned;
                let class = self.obj(op.obj).class;
                self.tasks[me].held.push(Held { obj: op.obj, class, read: false });
            }
            OpKind::RwUnlockRead => {
                self.obj_mut(op.obj).readers.retain(|r| *r != me);
                release_held(&mut self.tasks[me].held, op.obj, true);
            }
            OpKind::RwUnlockWrite => {
                self.obj_mut(op.obj).holder = None;
                if op.flag {
                    self.obj_mut(op.obj).poisoned = true;
                }
                release_held(&mut self.tasks[me].held, op.obj, false);
            }
            OpKind::CvWait => {
                // Release the mutex and join the waiter queue atomically.
                self.obj_mut(op.obj2).holder = None;
                release_held(&mut self.tasks[me].held, op.obj2, false);
                self.obj_mut(op.obj).waiters.push_back(me);
                self.tasks[me].pending = Pending::CvParked {
                    cv: op.obj,
                    mutex: op.obj2,
                    deadline: op.deadline,
                    site: op.site,
                };
                return Applied::Repark;
            }
            OpKind::CvReacquire => {
                debug_assert!(self.obj(op.obj2).holder.is_none());
                self.record_lock_edges(me, op.obj2, op.site);
                self.obj_mut(op.obj2).holder = Some(me);
                out.poisoned = self.obj(op.obj2).poisoned;
                out.timed_out = op.flag;
                let class = self.obj(op.obj2).class;
                self.tasks[me].held.push(Held { obj: op.obj2, class, read: false });
            }
            OpKind::CvNotifyOne => {
                if let Some(w) = self.obj_mut(op.obj).waiters.pop_front() {
                    self.wake_waiter(w);
                }
            }
            OpKind::CvNotifyAll => {
                while let Some(w) = self.obj_mut(op.obj).waiters.pop_front() {
                    self.wake_waiter(w);
                }
            }
            OpKind::Join => {
                debug_assert!(self.tasks[op.target].finished);
                self.tasks[op.target].panic_consumed = true;
            }
        }
        self.tasks[me].pending = Pending::Startup;
        Applied::Continue(out)
    }

    fn wake_waiter(&mut self, w: TaskId) {
        if let Pending::CvParked { cv, mutex, site, .. } = self.tasks[w].pending {
            let mut op = Op::base(OpKind::CvReacquire, site);
            op.obj = cv;
            op.obj2 = mutex;
            self.tasks[w].pending = Pending::Op(op);
        } else {
            self.internal_error = Some(format!(
                "notify woke task {} which was not cv-parked ({:?})",
                w, self.tasks[w].pending
            ));
        }
    }

    /// Minimal bookkeeping for shim ops issued while a task unwinds during
    /// abort teardown. Teardown is single-threaded (one abort target at a
    /// time), so mutual exclusion is vacuous; we only keep holder/poison
    /// state coherent and never park.
    fn apply_abort_side(&mut self, me: TaskId, op: &Op) -> EffectOut {
        let mut out = EffectOut::default();
        match op.kind {
            OpKind::Lock | OpKind::RwWrite | OpKind::CvReacquire => {
                let target = if op.kind == OpKind::CvReacquire { op.obj2 } else { op.obj };
                out.poisoned = self.obj(target).poisoned;
            }
            OpKind::Unlock | OpKind::RwUnlockWrite => {
                if self.obj(op.obj).holder == Some(me) {
                    self.obj_mut(op.obj).holder = None;
                }
                release_held(&mut self.tasks[me].held, op.obj, false);
            }
            OpKind::RwUnlockRead => {
                self.obj_mut(op.obj).readers.retain(|r| *r != me);
                release_held(&mut self.tasks[me].held, op.obj, true);
            }
            _ => {}
        }
        out
    }

    /// Grant the baton to task `t` (controller side).
    pub(crate) fn grant(&mut self, t: TaskId) {
        self.tasks[t].granted = true;
        self.grant_pending = true;
    }

    /// Human description of what each unfinished task is blocked on
    /// (deadlock reports).
    pub(crate) fn blocked_summary(&self) -> String {
        let mut parts = Vec::new();
        for t in self.tasks.iter() {
            if t.finished {
                continue;
            }
            let what = match t.pending {
                Pending::Op(op) => {
                    let target = match op.kind {
                        OpKind::CvReacquire => op.obj2,
                        _ => op.obj,
                    };
                    let label = if target == NO_OBJ {
                        match op.kind {
                            OpKind::Join => format!("join of {}", self.tasks[op.target].name),
                            _ => format!("{:?}", op.kind),
                        }
                    } else {
                        format!("{:?} {}", op.kind, self.obj_label(target))
                    };
                    format!("{} blocked on {} at {}", t.name, label, loc(op.site))
                }
                Pending::CvParked { cv, site, .. } => format!(
                    "{} waiting (no timeout) on {} at {}",
                    t.name,
                    self.obj_label(cv),
                    loc(site)
                ),
                other => format!("{} in state {:?}", t.name, other),
            };
            parts.push(what);
        }
        parts.join("; ")
    }
}

fn release_held(held: &mut Vec<Held>, obj: ObjId, read: bool) {
    if let Some(pos) = held.iter().rposition(|h| h.obj == obj && h.read == read) {
        held.remove(pos);
    }
}

pub(crate) enum Applied {
    Continue(EffectOut),
    Repark,
}

#[derive(Default, Clone, Copy, Debug)]
pub(crate) struct EffectOut {
    pub poisoned: bool,
    pub timed_out: bool,
}

// ---------------------------------------------------------------------------
// Task-side plumbing: TLS context, the park/grant handshake
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) task: TaskId,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static ABORT_UNWIND: Cell<bool> = const { Cell::new(false) };
}

/// Payload used to unwind tasks when the controller tears an execution down.
pub(crate) struct AbortToken;

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn cur_ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "paradigm-race: a race::sync/thread/time operation ran outside a model \
             execution. In a --cfg paradigm_race build, code using the shim \
             primitives can only run inside race::explore (e.g. via `paradigm race`)."
        )
    })
}

pub(crate) fn in_model_task() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// True while this thread unwinds due to execution teardown (guards must not
/// poison and must not park).
pub(crate) fn unwinding_abort() -> bool {
    ABORT_UNWIND.with(|a| a.get())
}

/// The central scheduling point. `build` resolves object ids and constructs
/// the operation under the execution lock; the function then parks until the
/// controller grants the operation, applies its effect, and returns.
pub(crate) fn schedule_point(build: impl FnOnce(&mut ExecState) -> Op) -> EffectOut {
    let ctx = cur_ctx();
    let me = ctx.task;
    let mut st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    let op = build(&mut st);
    if unwinding_abort() || (st.aborting && st.abort_target == Some(me)) {
        ABORT_UNWIND.with(|a| a.set(true));
        return st.apply_abort_side(me, &op);
    }
    st.tasks[me].pending = Pending::Op(op);
    if st.running == Some(me) {
        st.running = None;
    }
    ctx.exec.cv.notify_all();
    loop {
        if st.aborting && st.abort_target == Some(me) {
            ABORT_UNWIND.with(|a| a.set(true));
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        if st.tasks[me].granted {
            st.tasks[me].granted = false;
            match st.apply_effect(me) {
                Applied::Continue(out) => {
                    st.running = Some(me);
                    st.grant_pending = false;
                    ctx.exec.cv.notify_all();
                    return out;
                }
                Applied::Repark => {
                    st.grant_pending = false;
                    ctx.exec.cv.notify_all();
                    // stay in the loop: we are now a cv waiter
                }
            }
        }
        st = ctx.exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Read the logical clock (not a scheduling point: the value is a pure
/// function of the schedule prefix, so determinism is preserved).
pub(crate) fn now_ns() -> u64 {
    let ctx = cur_ctx();
    let st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    st.now
}

/// Register a lazily-created object and return its id (used by `build`
/// closures inside `schedule_point`).
pub(crate) fn resolve_obj(
    st: &mut ExecState,
    addr: usize,
    kind: ObjKind,
    class: &'static Location<'static>,
) -> ObjId {
    st.obj_id(addr, kind, class)
}

/// Forget an object when its owner is dropped, so a later allocation at the
/// same address is not mistaken for it.
pub(crate) fn retire_obj(addr: usize) {
    if !in_model_task() {
        return;
    }
    let ctx = cur_ctx();
    let mut st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    st.by_addr.remove(&addr);
}

/// Is the lock at `addr` poisoned? (For `into_inner`.)
pub(crate) fn obj_poisoned(addr: usize) -> bool {
    if !in_model_task() {
        return false;
    }
    let ctx = cur_ctx();
    let st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(id) = st.by_addr.get(&addr).copied() {
        st.obj(id).poisoned
    } else {
        false
    }
}

// ---------------------------------------------------------------------------
// Task lifecycle: spawn wrappers, finish, join
// ---------------------------------------------------------------------------

/// Register a new task and record a spawn trace event. Called by the
/// spawning (running) task; not a scheduling point — the child simply
/// becomes schedulable at the parent's next one. Reordering the parent's
/// non-sync code against the child's start is invisible to the model because
/// all shared access goes through scheduling points.
pub(crate) fn register_child(
    name: Option<String>,
    site: &'static Location<'static>,
) -> (Ctx, TaskId) {
    let ctx = cur_ctx();
    let mut st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    let n = st.tasks.len();
    let id = st.register_task(name.unwrap_or_else(|| format!("t{}", n)));
    let nm = st.tasks[id].name.clone();
    let step = st.events.len() + 1;
    let parent = st.tasks[ctx.task].name.clone();
    st.events.push(Event {
        step,
        task: ctx.task,
        name: parent,
        op: format!("spawn {}", nm),
        site: loc(site),
    });
    (Ctx { exec: ctx.exec.clone(), task: id }, id)
}

/// Body run by every model task's OS thread.
pub(crate) fn task_main<T>(ctx: Ctx, f: impl FnOnce() -> T) -> Option<T> {
    set_ctx(Some(ctx.clone()));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let site = Location::caller();
        schedule_point(move |_| Op::base(OpKind::Begin, site));
        f()
    }));
    let (value, panic) = match result {
        Ok(v) => (Some(v), None),
        Err(p) => (None, Some(p)),
    };
    finish_task(&ctx, panic);
    set_ctx(None);
    value
}

fn finish_task(ctx: &Ctx, panic: Option<Box<dyn std::any::Any + Send>>) {
    let mut st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    let me = ctx.task;
    st.tasks[me].finished = true;
    st.tasks[me].pending = Pending::Done;
    if st.running == Some(me) {
        st.running = None;
    }
    if let Some(p) = panic {
        if p.downcast_ref::<AbortToken>().is_none() {
            let msg = panic_message(p.as_ref());
            let name = st.tasks[me].name.clone();
            let step = st.events.len() + 1;
            st.events.push(Event {
                step,
                task: me,
                name,
                op: format!("panicked: {}", msg),
                site: String::new(),
            });
            st.tasks[me].panic_msg = Some(msg);
            st.tasks[me].panic_payload = Some(p);
        } else {
            // Teardown unwind, not a real failure.
            st.tasks[me].panic_consumed = true;
        }
    }
    ctx.exec.cv.notify_all();
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Model-join: block until `target` finishes, consuming its panic (if any).
/// Returns the panic payload for the caller to deliver or rethrow.
#[track_caller]
pub(crate) fn join_task(target: TaskId) -> Option<Box<dyn std::any::Any + Send>> {
    let site = Location::caller();
    schedule_point(move |_| {
        let mut op = Op::base(OpKind::Join, site);
        op.target = target;
        op
    });
    let ctx = cur_ctx();
    let mut st = ctx.exec.mx.lock().unwrap_or_else(|e| e.into_inner());
    st.tasks[target].panic_payload.take()
}

/// Scheduling point for `thread::sleep` / `yield_now`.
#[track_caller]
pub(crate) fn sleep_until(deadline: u64) {
    let site = Location::caller();
    schedule_point(move |_| {
        let mut op = Op::base(OpKind::Sleep, site);
        op.deadline = deadline;
        op
    });
}

#[track_caller]
pub(crate) fn yield_now() {
    let site = Location::caller();
    schedule_point(move |_| Op::base(OpKind::Yield, site));
}
