//! Logical time for model builds; `std::time::Instant` otherwise.
//!
//! Under the model, `Instant::now()` reads a discrete-event clock in logical
//! nanoseconds that advances only when no task is runnable, jumping straight
//! to the earliest pending deadline ("patient timers"). Timeouts therefore
//! never fire while useful work is possible, deadlines are deterministic
//! functions of the schedule, and polling loops do not explode the state
//! space with billions of empty clock ticks.

#[cfg(not(paradigm_race))]
pub use std::time::Instant;

#[cfg(paradigm_race)]
pub use model::Instant;

#[cfg(paradigm_race)]
mod model {
    use crate::sched;
    use std::ops::{Add, AddAssign, Sub, SubAssign};
    use std::time::Duration;

    /// Logical-clock instant (nanoseconds since execution start).
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub struct Instant(u64);

    fn dur_ns(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    impl Instant {
        /// Read the logical clock. Not a scheduling point: the value is a
        /// pure function of the schedule prefix.
        pub fn now() -> Instant {
            Instant(sched::now_ns())
        }

        pub fn duration_since(&self, earlier: Instant) -> Duration {
            Duration::from_nanos(self.0.saturating_sub(earlier.0))
        }

        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            self.duration_since(earlier)
        }

        pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
            self.0.checked_sub(earlier.0).map(Duration::from_nanos)
        }

        pub fn elapsed(&self) -> Duration {
            Instant::now().duration_since(*self)
        }

        pub fn checked_add(&self, d: Duration) -> Option<Instant> {
            self.0.checked_add(dur_ns(d)).map(Instant)
        }

        pub fn checked_sub(&self, d: Duration) -> Option<Instant> {
            self.0.checked_sub(dur_ns(d)).map(Instant)
        }
    }

    impl Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, d: Duration) -> Instant {
            Instant(self.0.saturating_add(dur_ns(d)))
        }
    }

    impl AddAssign<Duration> for Instant {
        fn add_assign(&mut self, d: Duration) {
            *self = *self + d;
        }
    }

    impl Sub<Duration> for Instant {
        type Output = Instant;
        fn sub(self, d: Duration) -> Instant {
            Instant(self.0.saturating_sub(dur_ns(d)))
        }
    }

    impl SubAssign<Duration> for Instant {
        fn sub_assign(&mut self, d: Duration) {
            *self = *self - d;
        }
    }

    impl Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, other: Instant) -> Duration {
            self.duration_since(other)
        }
    }
}
