//! Dynamic lock-order graph with cycle detection.
//!
//! Every lock acquisition performed while other locks are held records a
//! directed edge `held-class -> acquired-class`. Classes are the lock's
//! *creation site* (`file:line:col` of the `Mutex::new` call), lockdep-style:
//! all eight shard mutexes of the result cache are one class, so an
//! AB/BA inversion between two *instances* of different classes is caught
//! even when no explored schedule happened to interleave into the deadlock.
//! A cycle in the aggregated graph (including a self-edge, i.e. nested
//! acquisition of two same-class instances) is reported as a potential
//! deadlock.

use std::collections::{BTreeMap, BTreeSet};

/// Aggregated lock-order graph. Node names are lock classes (creation
/// sites); edge values remember one sample acquisition site pair per edge
/// plus how often the edge was observed.
#[derive(Clone, Debug, Default)]
pub struct LockOrderGraph {
    edges: BTreeMap<String, BTreeMap<String, EdgeInfo>>,
}

#[derive(Clone, Debug)]
pub struct EdgeInfo {
    /// How many acquisitions recorded this edge (across all schedules).
    pub count: u64,
    /// Sample: source location that acquired the second lock while holding
    /// the first.
    pub sample_site: String,
}

impl LockOrderGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `held -> acquired` observed at `site`.
    pub fn add_edge(&mut self, held: &str, acquired: &str, site: &str) {
        let e = self
            .edges
            .entry(held.to_string())
            .or_default()
            .entry(acquired.to_string())
            .or_insert_with(|| EdgeInfo { count: 0, sample_site: site.to_string() });
        e.count += 1;
    }

    /// Merge another graph (e.g. from one execution) into this aggregate.
    pub fn merge(&mut self, other: &LockOrderGraph) {
        for (from, tos) in &other.edges {
            for (to, info) in tos {
                let e =
                    self.edges.entry(from.clone()).or_default().entry(to.clone()).or_insert_with(
                        || EdgeInfo { count: 0, sample_site: info.sample_site.clone() },
                    );
                e.count += info.count;
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    pub fn node_count(&self) -> usize {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (from, tos) in &self.edges {
            nodes.insert(from);
            for to in tos.keys() {
                nodes.insert(to);
            }
        }
        nodes.len()
    }

    /// All elementary cycles reachable in the graph, as node-name paths
    /// (first node repeated at the end). A self-edge `A -> A` is the cycle
    /// `[A, A]`. Deterministic order.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        // Color-based DFS collecting back edges; each back edge yields the
        // cycle along the current DFS stack. Small graphs (tens of lock
        // classes), so no need for Johnson's algorithm.
        let mut cycles: Vec<Vec<String>> = Vec::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for start in self.edges.keys() {
            let mut on_path: Vec<&str> = Vec::new();
            self.dfs_cycles(start, &mut on_path, &mut done, &mut cycles);
        }
        cycles.sort();
        cycles.dedup();
        cycles
    }

    fn dfs_cycles<'a>(
        &'a self,
        node: &'a str,
        on_path: &mut Vec<&'a str>,
        done: &mut BTreeSet<&'a str>,
        cycles: &mut Vec<Vec<String>>,
    ) {
        if done.contains(node) {
            return;
        }
        if let Some(pos) = on_path.iter().position(|n| *n == node) {
            let mut cyc: Vec<String> = on_path[pos..].iter().map(|s| s.to_string()).collect();
            // Canonical rotation so the same cycle found from different
            // starts dedups.
            let min_idx = cyc
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (*s).clone())
                .map(|(i, _)| i)
                .unwrap_or(0);
            cyc.rotate_left(min_idx);
            cyc.push(cyc[0].clone());
            cycles.push(cyc);
            return;
        }
        on_path.push(node);
        if let Some(tos) = self.edges.get(node) {
            for to in tos.keys() {
                self.dfs_cycles(to, on_path, done, cycles);
            }
        }
        on_path.pop();
        done.insert(node);
    }

    /// Human-readable dump: every edge, then any cycles.
    pub fn render(&self) -> String {
        if self.edges.is_empty() {
            return "lock-order: no nested acquisitions observed\n".to_string();
        }
        let mut out =
            format!("lock-order: {} classes, {} edges\n", self.node_count(), self.edge_count());
        for (from, tos) in &self.edges {
            for (to, info) in tos {
                out.push_str(&format!(
                    "  {} -> {}  (x{}, e.g. at {})\n",
                    from, to, info.count, info.sample_site
                ));
            }
        }
        let cycles = self.cycles();
        if cycles.is_empty() {
            out.push_str("  no cycles: acyclic under every explored schedule\n");
        } else {
            for c in &cycles {
                out.push_str(&format!("  CYCLE: {}\n", c.join(" -> ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_reports_no_cycles() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a.rs:1", "a.rs:2", "x.rs:10");
        g.add_edge("a.rs:2", "a.rs:3", "x.rs:11");
        g.add_edge("a.rs:1", "a.rs:3", "x.rs:12");
        assert!(g.cycles().is_empty());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn abba_inversion_is_a_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a.rs:1", "a.rs:2", "x.rs:10");
        g.add_edge("a.rs:2", "a.rs:1", "y.rs:20");
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec!["a.rs:1", "a.rs:2", "a.rs:1"]);
        assert!(g.render().contains("CYCLE"));
    }

    #[test]
    fn same_class_nesting_is_a_self_cycle() {
        let mut g = LockOrderGraph::new();
        g.add_edge("shard.rs:9", "shard.rs:9", "x.rs:10");
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec!["shard.rs:9", "shard.rs:9"]);
    }

    #[test]
    fn three_way_cycle_found_once() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a", "b", "s1");
        g.add_edge("b", "c", "s2");
        g.add_edge("c", "a", "s3");
        assert_eq!(g.cycles().len(), 1);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a", "b", "s1");
        let mut h = LockOrderGraph::new();
        h.add_edge("a", "b", "s1");
        h.add_edge("b", "c", "s2");
        g.merge(&h);
        assert_eq!(g.edge_count(), 2);
        assert!(g.render().contains("x2"));
    }
}
