//! The explorer: exhaustive bounded DFS over schedules (model builds), or a
//! single native smoke run (normal builds).

use crate::report::{Config, Report};

/// Explore every interleaving of `f` up to the configured bounds.
///
/// In a `--cfg paradigm_race` build this enumerates schedules with DFS +
/// sleep-set partial-order reduction and an iterative preemption bound; `f`
/// must be deterministic given a schedule (use `race::time`, no real I/O or
/// RNG seeded from wall time). In a normal build it runs `f` once natively
/// and reports a smoke result.
pub fn explore<F>(name: &str, cfg: &Config, f: F) -> Report
where
    F: Fn() + Send + Sync,
{
    imp::explore(name, cfg, &f)
}

/// Re-run `f` under exactly one recorded schedule (the `schedule` field of a
/// [`crate::Violation`]): the task id chosen at every branching decision
/// point. Deterministic: the same trace is produced every time.
pub fn replay<F>(name: &str, cfg: &Config, f: F, schedule: &[usize]) -> Report
where
    F: Fn() + Send + Sync,
{
    imp::replay(name, cfg, &f, schedule)
}

#[cfg(not(paradigm_race))]
mod imp {
    use super::*;
    use crate::report::{Violation, ViolationKind};

    fn run_once(name: &str, f: &(dyn Fn() + Send + Sync)) -> Report {
        let mut report = Report::new(name, false);
        let outcome = std::thread::scope(|s| {
            s.spawn(|| std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))).join()
        });
        report.schedules = 1;
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(p)) | Err(p) => {
                let message = if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                report.violation = Some(Violation {
                    kind: ViolationKind::Panic,
                    message,
                    trace: Vec::new(),
                    schedule: Vec::new(),
                });
            }
        }
        report
    }

    pub(super) fn explore(name: &str, _cfg: &Config, f: &(dyn Fn() + Send + Sync)) -> Report {
        run_once(name, f)
    }

    pub(super) fn replay(
        name: &str,
        _cfg: &Config,
        f: &(dyn Fn() + Send + Sync),
        _schedule: &[usize],
    ) -> Report {
        run_once(name, f)
    }
}

#[cfg(paradigm_race)]
mod imp {
    use super::*;
    use crate::lockorder::LockOrderGraph;
    use crate::report::{Violation, ViolationKind};
    use crate::sched::{self, independent, Ctx, ExecState, Execution, Pending, Sig, TaskId};
    use std::sync::{Arc, MutexGuard};

    /// One branching decision point on the DFS stack.
    struct Frame {
        /// Enabled (task, sig) pairs at this point, ascending task id.
        options: Vec<(TaskId, Sig)>,
        /// Index into `options` currently being explored.
        chosen: usize,
        /// Sleep set inherited on entry to this state.
        sleep_at_entry: Vec<(TaskId, Sig)>,
        /// Options whose subtrees are fully explored (sleep for siblings).
        explored: Vec<(TaskId, Sig)>,
        /// Task that ran immediately before this decision.
        prev: Option<TaskId>,
        /// Preemptions consumed along the path up to this decision.
        preemptions_before: usize,
    }

    enum Mode<'a> {
        Explore(&'a mut Vec<Frame>),
        Replay(&'a [usize]),
    }

    #[derive(Default)]
    struct RunOutcome {
        violation: Option<Violation>,
        pruned: bool,
        capped: bool,
        events: usize,
        schedule: Vec<usize>,
        lock_order: LockOrderGraph,
    }

    pub(super) fn explore(name: &str, cfg: &Config, f: &(dyn Fn() + Send + Sync)) -> Report {
        let mut report = Report::new(name, true);
        let mut frames: Vec<Frame> = Vec::new();
        loop {
            let out = run_execution(f, cfg, Mode::Explore(&mut frames));
            report.schedules += 1;
            report.max_events_seen = report.max_events_seen.max(out.events);
            report.lock_order.merge(&out.lock_order);
            if out.pruned {
                report.pruned += 1;
            }
            if out.capped {
                report.depth_capped += 1;
            }
            if let Some(v) = out.violation {
                // Prove determinism: replay the recorded schedule and compare
                // traces event-for-event.
                let replayed = run_execution(f, cfg, Mode::Replay(&v.schedule));
                let consistent = replayed
                    .violation
                    .as_ref()
                    .map(|rv| rv.trace == v.trace && rv.kind == v.kind)
                    .unwrap_or(false);
                report.replay_consistent = Some(consistent);
                report.violation = Some(v);
                return report;
            }
            if report.schedules >= cfg.max_schedules {
                report.truncated = true;
                return report;
            }
            if !advance(&mut frames, cfg) {
                return report;
            }
        }
    }

    pub(super) fn replay(
        name: &str,
        cfg: &Config,
        f: &(dyn Fn() + Send + Sync),
        schedule: &[usize],
    ) -> Report {
        let mut report = Report::new(name, true);
        let out = run_execution(f, cfg, Mode::Replay(schedule));
        report.schedules = 1;
        report.max_events_seen = out.events;
        report.lock_order.merge(&out.lock_order);
        report.violation = out.violation;
        report
    }

    /// Move the DFS to the next unexplored branch. Returns false when the
    /// whole bounded space is exhausted.
    fn advance(frames: &mut Vec<Frame>, cfg: &Config) -> bool {
        while let Some(f) = frames.last_mut() {
            let cur = f.options[f.chosen];
            f.explored.push(cur);
            let prev_enabled =
                f.prev.map(|p| f.options.iter().any(|(t, _)| *t == p)).unwrap_or(false);
            let mut next = None;
            for (i, opt) in f.options.iter().enumerate() {
                if f.explored.iter().any(|(t, _)| *t == opt.0) {
                    continue;
                }
                if f.sleep_at_entry.iter().any(|(t, _)| *t == opt.0) {
                    continue;
                }
                let cost = usize::from(prev_enabled && Some(opt.0) != f.prev);
                if f.preemptions_before + cost > cfg.preemptions {
                    continue;
                }
                next = Some(i);
                break;
            }
            match next {
                Some(i) => {
                    f.chosen = i;
                    return true;
                }
                None => {
                    frames.pop();
                }
            }
        }
        false
    }

    /// Wait until every live task is parked at a scheduling point (or
    /// finished) and no grant is in flight.
    fn wait_quiescent<'a>(
        exec: &'a Execution,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            let busy = st.grant_pending
                || st.running.is_some()
                || st.tasks.iter().any(|t| !t.finished && matches!(t.pending, Pending::Startup));
            if !busy {
                return st;
            }
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Tear the execution down: unwind every unfinished task, one at a time
    /// (single-threaded teardown keeps shim ops inside unwinding Drop impls
    /// exclusive without the scheduler). Reverse creation order: a child is
    /// always unwound before the parent whose stack frames own the data the
    /// child borrows (scoped threads), so drops in the child's unwind never
    /// touch freed memory.
    fn abort_all(exec: &Execution) {
        let mut st = exec.mx.lock().unwrap_or_else(|e| e.into_inner());
        st.aborting = true;
        loop {
            st = wait_quiescent(exec, st);
            let target = st.tasks.iter().rposition(|t| !t.finished);
            match target {
                None => break,
                Some(t) => {
                    st.abort_target = Some(t);
                    exec.cv.notify_all();
                    while !st.tasks[t].finished {
                        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    st.abort_target = None;
                }
            }
        }
    }

    fn violation_from(
        st: &ExecState,
        kind: ViolationKind,
        message: String,
        schedule: Vec<usize>,
    ) -> Violation {
        Violation { kind, message, trace: st.events.clone(), schedule }
    }

    fn run_execution(f: &(dyn Fn() + Send + Sync), cfg: &Config, mut mode: Mode<'_>) -> RunOutcome {
        let exec = Execution::new();
        {
            let mut st = exec.mx.lock().unwrap();
            st.register_task("main".to_string());
        }
        let root_ctx = Ctx { exec: exec.clone(), task: 0 };
        std::thread::scope(|scope| {
            let exec_for_root = root_ctx;
            scope.spawn(move || {
                sched::task_main(exec_for_root, f);
            });
            controller(&exec, cfg, &mut mode)
        })
    }

    fn controller(exec: &Arc<Execution>, cfg: &Config, mode: &mut Mode<'_>) -> RunOutcome {
        let mut out = RunOutcome::default();
        let mut decision_idx = 0usize;
        let mut cur_sleep: Vec<(TaskId, Sig)> = Vec::new();
        let mut prev: Option<TaskId> = None;
        let mut preemptions = 0usize;
        let mut schedule: Vec<usize> = Vec::new();

        let mut st = exec.mx.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            st = wait_quiescent(exec, st);

            if let Some(e) = st.internal_error.take() {
                out.violation =
                    Some(violation_from(&st, ViolationKind::Internal, e, schedule.clone()));
                break;
            }
            if st.tasks.iter().all(|t| t.finished) {
                // Any panic nobody joined is a failure (mirrors
                // std::thread::scope, which rethrows on implicit join).
                let leaked: Vec<String> = st
                    .tasks
                    .iter()
                    .filter(|t| t.panic_msg.is_some() && !t.panic_consumed)
                    .map(|t| format!("{}: {}", t.name, t.panic_msg.clone().unwrap_or_default()))
                    .collect();
                if !leaked.is_empty() {
                    out.violation = Some(violation_from(
                        &st,
                        ViolationKind::Panic,
                        leaked.join("; "),
                        schedule.clone(),
                    ));
                }
                break;
            }
            if st.events.len() >= cfg.max_events {
                out.capped = true;
                break;
            }

            let enabled: Vec<(TaskId, Sig)> = st
                .tasks
                .iter()
                .enumerate()
                .filter(|(t, task)| {
                    !task.finished && matches!(task.pending, Pending::Op(_)) && st.op_enabled(*t)
                })
                .map(|(t, task)| {
                    let sig = match task.pending {
                        Pending::Op(op) => op.sig(),
                        _ => unreachable!(),
                    };
                    (t, sig)
                })
                .collect();

            if enabled.is_empty() {
                match st.next_deadline() {
                    Some(d) => {
                        st.advance_clock(d);
                        continue;
                    }
                    None => {
                        let msg = st.blocked_summary();
                        out.violation = Some(violation_from(
                            &st,
                            ViolationKind::Deadlock,
                            msg,
                            schedule.clone(),
                        ));
                        break;
                    }
                }
            }

            // Choose the next task.
            let chosen: TaskId = if enabled.len() == 1 {
                enabled[0].0
            } else {
                let pick = match mode {
                    Mode::Replay(plan) => {
                        let want = plan.get(decision_idx).copied();
                        decision_idx += 1;
                        match want.and_then(|w| enabled.iter().find(|(t, _)| *t == w)) {
                            Some((t, _)) => *t,
                            None => default_pick(&enabled, prev, &[]),
                        }
                    }
                    Mode::Explore(frames) => {
                        if decision_idx < frames.len() {
                            let fr = &frames[decision_idx];
                            if fr.options.iter().map(|o| o.0).collect::<Vec<_>>()
                                != enabled.iter().map(|o| o.0).collect::<Vec<_>>()
                            {
                                st.internal_error = Some(format!(
                                    "non-deterministic closure: decision {} saw enabled {:?}, \
                                     previous run saw {:?}",
                                    decision_idx,
                                    enabled.iter().map(|o| o.0).collect::<Vec<_>>(),
                                    fr.options.iter().map(|o| o.0).collect::<Vec<_>>()
                                ));
                                continue;
                            }
                            // Reconstruct the sleep set exactly as stored.
                            cur_sleep = fr.sleep_at_entry.clone();
                            for e in &fr.explored {
                                if !cur_sleep.iter().any(|(t, _)| *t == e.0) {
                                    cur_sleep.push(*e);
                                }
                            }
                            let pick = fr.options[fr.chosen].0;
                            decision_idx += 1;
                            pick
                        } else {
                            // Fresh frontier.
                            let asleep: Vec<(TaskId, Sig)> = cur_sleep.clone();
                            let selectable: Vec<(TaskId, Sig)> = enabled
                                .iter()
                                .copied()
                                .filter(|(t, _)| !asleep.iter().any(|(s, _)| s == t))
                                .collect();
                            let prev_enabled =
                                prev.map(|p| enabled.iter().any(|(t, _)| *t == p)).unwrap_or(false);
                            let affordable: Vec<(TaskId, Sig)> = selectable
                                .iter()
                                .copied()
                                .filter(|(t, _)| {
                                    let cost = usize::from(prev_enabled && Some(*t) != prev);
                                    preemptions + cost <= cfg.preemptions
                                })
                                .collect();
                            if affordable.is_empty() {
                                // Everything runnable is covered elsewhere
                                // (sleep set) or over budget: prune.
                                out.pruned = true;
                                out.events = st.events.len();
                                out.lock_order.merge(&st.lock_order);
                                drop(st);
                                abort_all(exec);
                                return out;
                            }
                            let pick = default_pick(&affordable, prev, &asleep);
                            let chosen_idx = enabled
                                .iter()
                                .position(|(t, _)| *t == pick)
                                .expect("pick came from enabled");
                            frames.push(Frame {
                                options: enabled.clone(),
                                chosen: chosen_idx,
                                sleep_at_entry: cur_sleep.clone(),
                                explored: Vec::new(),
                                prev,
                                preemptions_before: preemptions,
                            });
                            decision_idx += 1;
                            pick
                        }
                    }
                };
                schedule.push(pick);
                pick
            };

            // Preemption accounting.
            if let Some(p) = prev {
                if p != chosen && enabled.iter().any(|(t, _)| *t == p) {
                    preemptions += 1;
                }
            }
            // Sleep-set maintenance: the chosen op wakes every dependent
            // sleeper and removes the chosen task itself.
            let chosen_sig = enabled
                .iter()
                .find(|(t, _)| *t == chosen)
                .map(|(_, s)| *s)
                .expect("chosen is enabled");
            cur_sleep.retain(|(t, s)| *t != chosen && independent(*s, chosen_sig));
            prev = Some(chosen);

            st.grant(chosen);
            exec.cv.notify_all();
        }

        // Common exit: capture state, tear down any still-live tasks.
        out.events = st.events.len();
        out.schedule = schedule;
        out.lock_order.merge(&st.lock_order);
        if let Some(v) = out.violation.as_mut() {
            v.schedule = out.schedule.clone();
        }
        let all_done = st.tasks.iter().all(|t| t.finished);
        drop(st);
        if !all_done {
            abort_all(exec);
        }
        out
    }

    /// Default scheduling policy: keep running the previous task when
    /// possible (minimizes preemptions, so the first schedule explored is
    /// the "natural" one), otherwise the lowest task id.
    fn default_pick(
        options: &[(TaskId, Sig)],
        prev: Option<TaskId>,
        _asleep: &[(TaskId, Sig)],
    ) -> TaskId {
        if let Some(p) = prev {
            if options.iter().any(|(t, _)| *t == p) {
                return p;
            }
        }
        options.iter().map(|(t, _)| *t).min().unwrap_or(0)
    }
}
