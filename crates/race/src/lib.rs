//! `paradigm-race`: a loom-style deterministic concurrency model checker.
//!
//! The concurrent core of the scheduling service — the ADMM work queue with
//! deadlines/retry/steal, per-lane circuit breakers, the sharded single-flight
//! cache, the solver workspace pool, bounded-staleness consensus — is a set of
//! hand-rolled state machines whose correctness was previously argued only by
//! sampled chaos drills. Sampling finds crashes; it cannot prove the absence
//! of lost wakeups, races, or deadlocks. This crate adds systematic
//! concurrency testing:
//!
//! 1. **Shim sync layer** ([`sync`], [`thread`], [`time`]): API-compatible
//!    `Mutex`, `Condvar`, `RwLock`, `Atomic*`, `thread::spawn/scope`, and a
//!    logical-clock `Instant`. Under `--cfg paradigm_race` every operation is
//!    a scheduling point routed through a cooperative scheduler; under normal
//!    builds they are zero-cost re-exports of `std` (no wrapper, no branch —
//!    the *same types*).
//! 2. **Explorer** ([`explore`]): runs a closure-under-test across all
//!    interleavings up to a configurable preemption bound using DFS with
//!    sleep-set partial-order reduction. Failing schedules are replayed
//!    deterministically and printed as a numbered event trace
//!    (thread, op, source location).
//! 3. **Lock-order analysis** ([`lockorder`]): a dynamic lock-order graph is
//!    recorded during exploration and checked for cycles, so *potential*
//!    deadlocks are reported even on schedules that did not happen to
//!    deadlock.
//!
//! What "verified" means here — and does not — is written up in DESIGN.md
//! §15. In short: exhaustive up to the preemption/depth bound under a
//! sequentially consistent memory model with patient timers; not a proof for
//! unbounded threads or weak-memory reorderings.

// This crate IS the sanctioned wrapper around the raw primitives that
// clippy.toml disallows everywhere else: normal builds re-export the std
// types verbatim, model builds wrap real locks to carry task state.
#![allow(clippy::disallowed_types)]

pub mod explore;
pub mod lockorder;
pub mod report;
#[cfg(paradigm_race)]
pub(crate) mod sched;
pub mod sync;
pub mod thread;
pub mod time;

pub use explore::{explore, replay};
pub use report::{Config, Event, Report, Suite, Violation, ViolationKind};

/// Poison-recovering lock: acquires the mutex and, if a previous holder
/// panicked, recovers the inner data instead of propagating the poison.
///
/// Every shared structure in the checked crates guards data that remains
/// structurally valid after a panic mid-critical-section (counters, queues
/// whose items are re-enqueued by the caller's cleanup path, caches keyed by
/// content hash). Cascading `PoisonError` panics out of *observers* (metrics
/// snapshots, drain paths) turned one worker panic into a fleet outage; the
/// model checker's panic schedules exercise exactly this, so recovery is the
/// contract now.
pub fn plock<T: ?Sized>(m: &sync::Mutex<T>) -> sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering read lock; see [`plock`].
pub fn pread<T: ?Sized>(l: &sync::RwLock<T>) -> sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering write lock; see [`plock`].
pub fn pwrite<T: ?Sized>(l: &sync::RwLock<T>) -> sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering condvar wait; see [`plock`].
pub fn pwait<'a, T>(cv: &sync::Condvar, guard: sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering timed condvar wait. Returns the reacquired guard and
/// whether the wait timed out; see [`plock`].
pub fn pwait_timeout<'a, T>(
    cv: &sync::Condvar,
    guard: sync::MutexGuard<'a, T>,
    dur: std::time::Duration,
) -> (sync::MutexGuard<'a, T>, bool) {
    let (g, res) = cv.wait_timeout(guard, dur).unwrap_or_else(std::sync::PoisonError::into_inner);
    (g, res.timed_out())
}

/// True when this build routes sync operations through the model scheduler.
pub const fn model_enabled() -> bool {
    cfg!(paradigm_race)
}
