//! Exploration configuration, results, and trace rendering.
//!
//! These types are available in every build (the CLI consumes them even in
//! non-model builds, where a suite degrades to a single native smoke run).

use crate::lockorder::LockOrderGraph;

/// Bounds for one exploration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptions per schedule. A preemption is a context
    /// switch away from a task that was still enabled; bounding them is the
    /// standard way to keep exploration tractable while catching almost all
    /// real bugs (most concurrency bugs need <= 2 preemptions to manifest).
    pub preemptions: usize,
    /// Hard cap on the number of schedules explored; exploration stops and
    /// the report is marked `truncated` when it is reached.
    pub max_schedules: u64,
    /// Hard cap on scheduling events within a single schedule; executions
    /// that exceed it are cut and counted in `depth_capped`.
    pub max_events: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { preemptions: 2, max_schedules: 200_000, max_events: 20_000 }
    }
}

impl Config {
    /// Config with a given preemption bound and the default caps.
    pub fn with_bound(preemptions: usize) -> Self {
        Config { preemptions, ..Config::default() }
    }
}

/// One scheduling event in an execution trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// 1-based position in the schedule.
    pub step: usize,
    /// Task index (`usize::MAX` renders as the scheduler clock).
    pub task: usize,
    /// Task name (worker thread names are preserved).
    pub name: String,
    /// Operation description, e.g. `lock Mutex[crates/serve/src/worker.rs:57]`.
    pub op: String,
    /// Source location of the call site performing the operation.
    pub site: String,
}

/// Why a schedule was reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A task panicked (assertion failure in an invariant, or an unhandled
    /// panic that no join consumed).
    Panic,
    /// No task was runnable and no timer was pending: deadlock or lost wakeup.
    Deadlock,
    /// The checker itself detected an inconsistency (non-deterministic
    /// closure, scheduler bug). Always a bug report, never ignorable.
    Internal,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Panic => write!(f, "panic"),
            ViolationKind::Deadlock => write!(f, "deadlock"),
            ViolationKind::Internal => write!(f, "internal checker error"),
        }
    }
}

/// A failing schedule: what went wrong, the full numbered event trace, and
/// the decision vector that deterministically reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: ViolationKind,
    pub message: String,
    /// Every scheduling event of the failing execution, in order.
    pub trace: Vec<Event>,
    /// Task chosen at each branching decision point; feed to
    /// [`crate::replay`] to re-run exactly this schedule.
    pub schedule: Vec<usize>,
}

impl Violation {
    /// Render the numbered event trace.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.kind, self.message));
        if !self.schedule.is_empty() {
            out.push_str(&format!("schedule (task per decision point): {:?}\n", self.schedule));
        }
        let name_w = self.trace.iter().map(|e| e.name.len()).max().unwrap_or(4).min(24);
        for e in &self.trace {
            out.push_str(&format!(
                "{:>5}. {:<name_w$}  {:<52}  at {}\n",
                e.step,
                e.name,
                e.op,
                e.site,
                name_w = name_w,
            ));
        }
        out
    }
}

/// Result of exploring one suite closure.
#[derive(Clone, Debug)]
pub struct Report {
    /// Suite name this report belongs to.
    pub name: String,
    /// True when the model scheduler actually explored interleavings
    /// (`--cfg paradigm_race` build). False for the native smoke fallback.
    pub model: bool,
    /// Number of complete schedules executed.
    pub schedules: u64,
    /// Schedules cut short because every runnable task was in the sleep set
    /// (the interleaving is equivalent to one already explored).
    pub pruned: u64,
    /// Schedules cut by the per-execution event cap.
    pub depth_capped: u64,
    /// Longest observed execution, in scheduling events.
    pub max_events_seen: usize,
    /// Exploration hit `max_schedules` before exhausting the space.
    pub truncated: bool,
    /// First failing schedule found, if any.
    pub violation: Option<Violation>,
    /// Lock-order graph aggregated across every explored schedule.
    pub lock_order: LockOrderGraph,
    /// When a violation was found: whether an automatic replay of the
    /// recorded schedule reproduced the identical trace.
    pub replay_consistent: Option<bool>,
}

impl Report {
    pub(crate) fn new(name: &str, model: bool) -> Self {
        Report {
            name: name.to_string(),
            model,
            schedules: 0,
            pruned: 0,
            depth_capped: 0,
            max_events_seen: 0,
            truncated: false,
            violation: None,
            lock_order: LockOrderGraph::new(),
            replay_consistent: None,
        }
    }

    /// A suite passes when no schedule violated an invariant AND the
    /// aggregated lock-order graph is acyclic.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && self.lock_order.cycles().is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mode = if self.model {
            format!(
                "{} schedules ({} pruned, {} depth-capped, longest {} events{})",
                self.schedules,
                self.pruned,
                self.depth_capped,
                self.max_events_seen,
                if self.truncated { ", TRUNCATED" } else { "" },
            )
        } else {
            "native smoke run (rebuild with RUSTFLAGS=\"--cfg paradigm_race\" to explore)"
                .to_string()
        };
        let cycles = self.lock_order.cycles();
        let verdict = match (&self.violation, cycles.is_empty()) {
            (None, true) => "ok".to_string(),
            (None, false) => format!("LOCK-ORDER CYCLE ({})", cycles.len()),
            (Some(v), _) => format!("FAIL [{}]", v.kind),
        };
        format!("{:<12} {:<10} {}", self.name, verdict, mode)
    }
}

/// A named model-check suite: an invariant-asserting closure plus the bounds
/// it should be explored under. Each checked crate exports its own list.
pub struct Suite {
    pub name: &'static str,
    pub about: &'static str,
    pub config: Config,
    pub run: fn(&Config) -> Report,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_numbered_lines() {
        let v = Violation {
            kind: ViolationKind::Deadlock,
            message: "2 tasks blocked".to_string(),
            trace: vec![
                Event {
                    step: 1,
                    task: 0,
                    name: "main".into(),
                    op: "lock Mutex[a.rs:1]".into(),
                    site: "a.rs:10".into(),
                },
                Event {
                    step: 2,
                    task: 1,
                    name: "t1".into(),
                    op: "lock Mutex[a.rs:2]".into(),
                    site: "a.rs:20".into(),
                },
            ],
            schedule: vec![0, 1],
        };
        let s = v.render_trace();
        assert!(s.contains("deadlock: 2 tasks blocked"));
        assert!(s.contains("1. main"));
        assert!(s.contains("2. t1"));
        assert!(s.contains("at a.rs:20"));
    }

    #[test]
    fn report_pass_fail() {
        let mut r = Report::new("x", true);
        assert!(r.passed());
        r.violation = Some(Violation {
            kind: ViolationKind::Panic,
            message: "boom".into(),
            trace: vec![],
            schedule: vec![],
        });
        assert!(!r.passed());
        assert!(r.summary().contains("FAIL [panic]"));
    }
}
