//! The shim sync layer.
//!
//! Normal builds: zero-cost re-exports of `std::sync` — the *same types*, no
//! wrapper, no branch. Model builds (`--cfg paradigm_race`): API-compatible
//! replacements that route every operation through the cooperative scheduler
//! as a scheduling point. Poisoning semantics are preserved (a guard dropped
//! during a real panic poisons the lock; teardown unwinds do not).
//!
//! Atomics are modeled as sequentially consistent: each operation is one
//! indivisible scheduling point. The `Ordering` argument is accepted and
//! recorded in traces (`SeqCst`/`AcqRel`/`Acquire`/`Release`/`Relaxed`) but
//! weak-memory reordering is *not* simulated — see DESIGN.md §15.

#[cfg(not(paradigm_race))]
pub use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(paradigm_race))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

#[cfg(paradigm_race)]
pub use model::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(paradigm_race)]
pub mod atomic {
    pub use super::model::atomic::*;
    pub use std::sync::atomic::Ordering;
}

#[cfg(paradigm_race)]
mod model {
    use crate::sched::{self, Op, OpKind};
    use std::cell::UnsafeCell;
    use std::marker::PhantomData;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{LockResult, PoisonError};
    use std::time::Duration;

    /// Marker making guards `!Send` (like std's) — a guard migrating across
    /// threads would desynchronize the model's holder bookkeeping.
    type NotSend = PhantomData<*const ()>;

    fn timestamp(dur: Duration) -> u64 {
        sched::now_ns().saturating_add(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX))
    }

    // -- Mutex ------------------------------------------------------------

    pub struct Mutex<T: ?Sized> {
        class: &'static Location<'static>,
        value: UnsafeCell<T>,
    }

    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        #[track_caller]
        pub const fn new(value: T) -> Mutex<T> {
            Mutex { class: Location::caller(), value: UnsafeCell::new(value) }
        }

        pub fn into_inner(self) -> LockResult<T> {
            let addr = &self as *const _ as usize;
            let poisoned = sched::obj_poisoned(addr);
            sched::retire_obj(addr);
            let this = ManuallyDrop::new(self);
            let value = unsafe { this.value.get().read() };
            if poisoned {
                Err(PoisonError::new(value))
            } else {
                Ok(value)
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        #[track_caller]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let addr = self as *const _ as *const () as usize;
            let class = self.class;
            let site = Location::caller();
            let out = sched::schedule_point(move |st| {
                let obj = sched::resolve_obj(st, addr, sched::ObjKind::Mutex, class);
                let mut op = Op::base(OpKind::Lock, site);
                op.obj = obj;
                op
            });
            let guard = MutexGuard { lock: self, _not_send: PhantomData };
            if out.poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            let addr = self as *const _ as *const () as usize;
            let value = unsafe { &mut *self.value.get() };
            if sched::obj_poisoned(addr) {
                Err(PoisonError::new(value))
            } else {
                Ok(value)
            }
        }
    }

    impl<T: ?Sized> Drop for Mutex<T> {
        fn drop(&mut self) {
            sched::retire_obj(self as *const _ as *const () as usize);
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        _not_send: NotSend,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.value.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.value.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        #[track_caller]
        fn drop(&mut self) {
            let addr = self.lock as *const _ as *const () as usize;
            let class = self.lock.class;
            let site = Location::caller();
            let poison = std::thread::panicking() && !sched::unwinding_abort();
            sched::schedule_point(move |st| {
                let obj = sched::resolve_obj(st, addr, sched::ObjKind::Mutex, class);
                let mut op = Op::base(OpKind::Unlock, site);
                op.obj = obj;
                op.flag = poison;
                op
            });
        }
    }

    // -- Condvar ----------------------------------------------------------

    pub struct Condvar {
        class: &'static Location<'static>,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct WaitTimeoutResult(pub(crate) bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    impl Condvar {
        #[track_caller]
        pub const fn new() -> Condvar {
            Condvar { class: Location::caller() }
        }

        #[track_caller]
        pub fn wait<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            let (g, _) = self.wait_inner(guard, None);
            g
        }

        #[track_caller]
        pub fn wait_timeout<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let (g, timed_out) = self.wait_inner(guard, Some(dur));
            match g {
                Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(timed_out)))),
            }
        }

        #[track_caller]
        fn wait_inner<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Option<Duration>,
        ) -> (LockResult<MutexGuard<'a, T>>, bool) {
            let mutex = guard.lock;
            // The model releases the mutex as part of the CvWait operation;
            // the guard must not run its unlock on drop.
            std::mem::forget(guard);
            let cv_addr = self as *const _ as usize;
            let mx_addr = mutex as *const _ as *const () as usize;
            let cv_class = self.class;
            let mx_class = mutex.class;
            let site = Location::caller();
            let deadline = dur.map(timestamp).unwrap_or(u64::MAX);
            let out = sched::schedule_point(move |st| {
                let cv = sched::resolve_obj(st, cv_addr, sched::ObjKind::Cv, cv_class);
                let mx = sched::resolve_obj(st, mx_addr, sched::ObjKind::Mutex, mx_class);
                let mut op = Op::base(OpKind::CvWait, site);
                op.obj = cv;
                op.obj2 = mx;
                op.deadline = deadline;
                op
            });
            let guard = MutexGuard { lock: mutex, _not_send: PhantomData };
            let res = if out.poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
            (res, out.timed_out)
        }

        #[track_caller]
        pub fn notify_one(&self) {
            self.notify(OpKind::CvNotifyOne);
        }

        #[track_caller]
        pub fn notify_all(&self) {
            self.notify(OpKind::CvNotifyAll);
        }

        #[track_caller]
        fn notify(&self, kind: OpKind) {
            let addr = self as *const _ as usize;
            let class = self.class;
            let site = Location::caller();
            sched::schedule_point(move |st| {
                let cv = sched::resolve_obj(st, addr, sched::ObjKind::Cv, class);
                let mut op = Op::base(kind, site);
                op.obj = cv;
                op
            });
        }
    }

    impl Default for Condvar {
        #[track_caller]
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Drop for Condvar {
        fn drop(&mut self) {
            sched::retire_obj(self as *const _ as usize);
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    // -- RwLock -----------------------------------------------------------

    pub struct RwLock<T: ?Sized> {
        class: &'static Location<'static>,
        value: UnsafeCell<T>,
    }

    unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
    unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

    impl<T> RwLock<T> {
        #[track_caller]
        pub const fn new(value: T) -> RwLock<T> {
            RwLock { class: Location::caller(), value: UnsafeCell::new(value) }
        }

        pub fn into_inner(self) -> LockResult<T> {
            let addr = &self as *const _ as usize;
            let poisoned = sched::obj_poisoned(addr);
            sched::retire_obj(addr);
            let this = ManuallyDrop::new(self);
            let value = unsafe { this.value.get().read() };
            if poisoned {
                Err(PoisonError::new(value))
            } else {
                Ok(value)
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        #[track_caller]
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let out = self.acquire(OpKind::RwRead, Location::caller());
            let guard = RwLockReadGuard { lock: self, _not_send: PhantomData };
            if out.poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }

        #[track_caller]
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let out = self.acquire(OpKind::RwWrite, Location::caller());
            let guard = RwLockWriteGuard { lock: self, _not_send: PhantomData };
            if out.poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        }

        fn acquire(&self, kind: OpKind, site: &'static Location<'static>) -> sched::EffectOut {
            let addr = self as *const _ as *const () as usize;
            let class = self.class;
            sched::schedule_point(move |st| {
                let obj = sched::resolve_obj(st, addr, sched::ObjKind::Rw, class);
                let mut op = Op::base(kind, site);
                op.obj = obj;
                op
            })
        }

        fn release(&self, kind: OpKind, poison: bool, site: &'static Location<'static>) {
            let addr = self as *const _ as *const () as usize;
            let class = self.class;
            sched::schedule_point(move |st| {
                let obj = sched::resolve_obj(st, addr, sched::ObjKind::Rw, class);
                let mut op = Op::base(kind, site);
                op.obj = obj;
                op.flag = poison;
                op
            });
        }
    }

    impl<T: ?Sized> Drop for RwLock<T> {
        fn drop(&mut self) {
            sched::retire_obj(self as *const _ as *const () as usize);
        }
    }

    impl<T: Default> Default for RwLock<T> {
        #[track_caller]
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RwLock").finish_non_exhaustive()
        }
    }

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        _not_send: NotSend,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.value.get() }
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        #[track_caller]
        fn drop(&mut self) {
            self.lock.release(OpKind::RwUnlockRead, false, Location::caller());
        }
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        _not_send: NotSend,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.value.get() }
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.value.get() }
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        #[track_caller]
        fn drop(&mut self) {
            let poison = std::thread::panicking() && !sched::unwinding_abort();
            self.lock.release(OpKind::RwUnlockWrite, poison, Location::caller());
        }
    }

    // -- Atomics ----------------------------------------------------------

    pub mod atomic {
        use crate::sched::{self, Op, OpKind};
        use std::cell::UnsafeCell;
        use std::panic::Location;
        pub use std::sync::atomic::Ordering;

        fn ordering_note(o: Ordering) -> &'static str {
            match o {
                Ordering::Relaxed => "Relaxed",
                Ordering::Acquire => "Acquire",
                Ordering::Release => "Release",
                Ordering::AcqRel => "AcqRel",
                Ordering::SeqCst => "SeqCst",
                _ => "?",
            }
        }

        macro_rules! shim_atomic {
            ($name:ident, $ty:ty, int) => {
                shim_atomic!($name, $ty, base);

                impl $name {
                    #[track_caller]
                    pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                        self.rmw(order, |v| v.wrapping_add(val))
                    }

                    #[track_caller]
                    pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                        self.rmw(order, |v| v.wrapping_sub(val))
                    }

                    #[track_caller]
                    pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                        self.rmw(order, |v| v.max(val))
                    }

                    #[track_caller]
                    pub fn fetch_min(&self, val: $ty, order: Ordering) -> $ty {
                        self.rmw(order, |v| v.min(val))
                    }
                }
            };
            ($name:ident, $ty:ty, base) => {
                pub struct $name {
                    class: &'static Location<'static>,
                    v: UnsafeCell<$ty>,
                }

                unsafe impl Send for $name {}
                unsafe impl Sync for $name {}

                impl $name {
                    #[track_caller]
                    pub const fn new(v: $ty) -> $name {
                        $name { class: Location::caller(), v: UnsafeCell::new(v) }
                    }

                    /// One scheduling point; the memory operation itself runs
                    /// with the baton held, i.e. indivisibly.
                    #[track_caller]
                    fn point(&self, kind: OpKind, order: Ordering) {
                        let addr = self as *const _ as usize;
                        let class = self.class;
                        let note = ordering_note(order);
                        let site = Location::caller();
                        sched::schedule_point(move |st| {
                            let obj = sched::resolve_obj(st, addr, sched::ObjKind::Atomic, class);
                            let mut op = Op::base(kind, site);
                            op.obj = obj;
                            op.note = note;
                            op
                        });
                    }

                    #[track_caller]
                    fn rmw(&self, order: Ordering, f: impl FnOnce($ty) -> $ty) -> $ty {
                        self.point(OpKind::AtomicRmw, order);
                        let p = self.v.get();
                        unsafe {
                            let old = *p;
                            *p = f(old);
                            old
                        }
                    }

                    #[track_caller]
                    pub fn load(&self, order: Ordering) -> $ty {
                        self.point(OpKind::AtomicLoad, order);
                        unsafe { *self.v.get() }
                    }

                    #[track_caller]
                    pub fn store(&self, val: $ty, order: Ordering) {
                        self.point(OpKind::AtomicStore, order);
                        unsafe { *self.v.get() = val }
                    }

                    #[track_caller]
                    pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                        self.rmw(order, |_| val)
                    }

                    #[track_caller]
                    #[allow(clippy::result_unit_err)]
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.point(OpKind::AtomicRmw, success);
                        let p = self.v.get();
                        unsafe {
                            let old = *p;
                            if old == current {
                                *p = new;
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        }
                    }

                    #[track_caller]
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    pub fn into_inner(self) -> $ty {
                        sched::retire_obj(&self as *const _ as usize);
                        let this = std::mem::ManuallyDrop::new(self);
                        unsafe { *this.v.get() }
                    }

                    pub fn get_mut(&mut self) -> &mut $ty {
                        unsafe { &mut *self.v.get() }
                    }
                }

                impl Default for $name {
                    #[track_caller]
                    fn default() -> Self {
                        $name::new(Default::default())
                    }
                }

                impl From<$ty> for $name {
                    #[track_caller]
                    fn from(v: $ty) -> Self {
                        $name::new(v)
                    }
                }

                impl Drop for $name {
                    fn drop(&mut self) {
                        sched::retire_obj(self as *const _ as usize);
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.debug_struct(stringify!($name)).finish_non_exhaustive()
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, u64, int);
        shim_atomic!(AtomicU32, u32, int);
        shim_atomic!(AtomicUsize, usize, int);
        shim_atomic!(AtomicI64, i64, int);
        shim_atomic!(AtomicBool, bool, base);

        impl AtomicBool {
            #[track_caller]
            pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
                self.rmw(order, |v| v || val)
            }

            #[track_caller]
            pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
                self.rmw(order, |v| v && val)
            }
        }
    }
}
