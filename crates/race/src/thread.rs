//! Thread shim: `spawn`, `Builder`, `scope`, `sleep`, `yield_now`.
//!
//! Normal builds re-export `std::thread`. Model builds run each task on a
//! real OS thread whose every sync operation parks for the cooperative
//! scheduler; spawn/join/sleep become model events, and `sleep` blocks on the
//! logical clock (it only fires when no task is runnable — "patient timers").

#[cfg(not(paradigm_race))]
pub use std::thread::{
    available_parallelism, panicking, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
    ScopedJoinHandle,
};

#[cfg(paradigm_race)]
pub use std::thread::{available_parallelism, panicking};

#[cfg(paradigm_race)]
pub use model::{scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(paradigm_race)]
mod model {
    #![allow(clippy::disallowed_types)] // real primitives carry task results

    use crate::sched::{self, TaskId};
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::panic::Location;
    use std::sync::{Arc, Mutex as StdMutex};
    use std::time::Duration;

    type ResultSlot<T> = Arc<StdMutex<Option<T>>>;

    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Builder {
            Builder { name: None }
        }

        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        #[track_caller]
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let site = Location::caller();
            let (ctx, task) = sched::register_child(self.name.clone(), site);
            let slot: ResultSlot<T> = Arc::new(StdMutex::new(None));
            let slot2 = slot.clone();
            let mut b = std::thread::Builder::new();
            if let Some(n) = self.name {
                b = b.name(n);
            }
            // The slot is written *inside* the model task, before the
            // scheduler sees it finish: a joiner resumed by `join_task`
            // must find the result already there (it has no OS handle to
            // wait on in the scoped case, and re-checking would race).
            let os = b.spawn(move || {
                let _ = sched::task_main(ctx, move || {
                    let v = f();
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                });
            })?;
            Ok(JoinHandle { task, os: Some(os), slot })
        }
    }

    #[track_caller]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn model task")
    }

    pub struct JoinHandle<T> {
        task: TaskId,
        os: Option<std::thread::JoinHandle<()>>,
        slot: ResultSlot<T>,
    }

    impl<T> JoinHandle<T> {
        #[track_caller]
        pub fn join(mut self) -> std::thread::Result<T> {
            let panic = sched::join_task(self.task);
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            match panic {
                Some(p) => Err(p),
                None => {
                    let v = self
                        .slot
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("joined task finished without a result or a panic");
                    Ok(v)
                }
            }
        }
    }

    /// Scoped threads. Mirrors `std::thread::scope`: borrowing closures,
    /// unjoined tasks joined at scope exit, and a panic from an
    /// implicitly-joined task resumed in the scope owner. Unlike std's, this
    /// `Scope` is not `Sync` (spawn from the owning task only) — the checked
    /// crates only fan out from a single coordinator, so nothing is lost.
    ///
    /// Safety model (crossbeam-style): spawned closures are
    /// lifetime-extended to `'static` for the underlying OS spawn. This is
    /// sound because `scope` model-joins and OS-joins every task before
    /// returning, and during execution teardown the scheduler unwinds tasks
    /// in reverse creation order, so a child is always gone before the
    /// parent frame owning its borrowed data unwinds.
    pub struct Scope<'scope, 'env: 'scope> {
        spawned: RefCell<Vec<TaskId>>,
        joined: RefCell<BTreeSet<TaskId>>,
        os: RefCell<Vec<std::thread::JoinHandle<()>>>,
        _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
        _env: std::marker::PhantomData<&'env mut &'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        task: TaskId,
        slot: ResultSlot<T>,
        scope_joined: &'scope RefCell<BTreeSet<TaskId>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        #[track_caller]
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let site = Location::caller();
            let (ctx, task) = sched::register_child(None, site);
            let slot: ResultSlot<T> = Arc::new(StdMutex::new(None));
            let slot2 = slot.clone();
            // Slot written before the finish event — see Builder::spawn.
            let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let _ = sched::task_main(ctx, move || {
                    let v = f();
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                });
            });
            // SAFETY: the closure (and everything it borrows from 'scope /
            // 'env) outlives the OS thread because scope() joins every task
            // before returning — see the type-level comment.
            let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
            let os = std::thread::spawn(body);
            self.os.borrow_mut().push(os);
            self.spawned.borrow_mut().push(task);
            ScopedJoinHandle { task, slot, scope_joined: &self.joined }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            self.scope_joined.borrow_mut().insert(self.task);
            let panic = sched::join_task(self.task);
            match panic {
                Some(p) => Err(p),
                None => {
                    let v = self
                        .slot
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("joined task finished without a result or a panic");
                    Ok(v)
                }
            }
        }
    }

    #[track_caller]
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let s = Scope {
            spawned: RefCell::new(Vec::new()),
            joined: RefCell::new(BTreeSet::new()),
            os: RefCell::new(Vec::new()),
            _scope: std::marker::PhantomData,
            _env: std::marker::PhantomData,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&s)));
        if sched::unwinding_abort() {
            // Execution teardown: children already unwound (reverse-order
            // abort); do not block on joins, just keep unwinding.
            match result {
                Err(p) => std::panic::resume_unwind(p),
                Ok(v) => return v, // unreachable in practice
            }
        }
        // Implicit join of everything the closure did not join itself, in
        // spawn order; rethrow the first implicit panic (std behavior).
        let spawned = s.spawned.borrow().clone();
        let joined = s.joined.borrow().clone();
        let mut rethrow = None;
        for task in spawned {
            if joined.contains(&task) {
                continue;
            }
            if let Some(p) = sched::join_task(task) {
                if rethrow.is_none() {
                    rethrow = Some(p);
                }
            }
        }
        for os in s.os.borrow_mut().drain(..) {
            let _ = os.join();
        }
        match result {
            Err(p) => std::panic::resume_unwind(p),
            Ok(v) => {
                if let Some(p) = rethrow {
                    std::panic::resume_unwind(p);
                }
                v
            }
        }
    }

    #[track_caller]
    pub fn sleep(dur: Duration) {
        let deadline =
            sched::now_ns().saturating_add(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX));
        sched::sleep_until(deadline);
    }

    #[track_caller]
    pub fn yield_now() {
        sched::yield_now();
    }
}
