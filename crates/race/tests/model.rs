//! Self-tests for the model checker.
//!
//! The first half runs in BOTH build modes (normal and `--cfg paradigm_race`)
//! and pins the shim API contract: correct programs pass, poisoning recovers,
//! timers fire. The second half (`model_only`) deliberately contains races,
//! lost wakeups, and deadlocks — it only compiles under the model cfg, where
//! the scheduler finds the bug deterministically instead of hanging the test
//! binary.

use paradigm_race as race;
use race::sync::atomic::{AtomicU64, Ordering};
use race::sync::{Condvar, Mutex};
use race::{explore, plock, pwait_timeout, Config};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mutex_counter_is_correct_under_all_schedules() {
    let r = explore("counter", &Config::with_bound(2), || {
        let n = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = n.clone();
            handles.push(race::thread::spawn(move || {
                let mut g = plock(&n);
                *g += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*plock(&n), 2);
    });
    assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
    if race::model_enabled() {
        assert!(r.schedules > 1, "expected multiple interleavings");
        assert!(!r.truncated);
    }
}

#[test]
fn scoped_threads_borrow_stack_data() {
    let r = explore("scoped", &Config::with_bound(1), || {
        let items = [1u64, 2, 3];
        let sum = AtomicU64::new(0);
        let sum = &sum;
        race::thread::scope(|s| {
            for chunk in items.chunks(2) {
                s.spawn(move || {
                    for v in chunk {
                        sum.fetch_add(*v, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    });
    assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
}

#[test]
fn poisoned_mutex_recovers_via_plock() {
    let r = explore("poison", &Config::with_bound(1), || {
        let n = Arc::new(Mutex::new(7u64));
        let n2 = n.clone();
        let h = race::thread::spawn(move || {
            let _g = n2.lock().unwrap();
            panic!("die holding the lock");
        });
        assert!(h.join().is_err());
        // A bare lock() sees the poison; plock recovers the data.
        assert!(n.lock().is_err());
        assert_eq!(*plock(&n), 7);
    });
    assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
}

#[test]
fn wait_timeout_fires_without_a_notifier() {
    let r = explore("timeout", &Config::with_bound(0), || {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let start = race::time::Instant::now();
        let (g, timed_out) = pwait_timeout(&cv, plock(&m), Duration::from_millis(50));
        assert!(timed_out);
        assert!(!*g);
        assert!(start.elapsed() >= Duration::from_millis(50));
    });
    assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
}

#[test]
fn producer_consumer_handshake_passes() {
    let r = explore("handshake", &Config::with_bound(2), || {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let s2 = slot.clone();
        let producer = race::thread::spawn(move || {
            let (m, cv) = &*s2;
            *plock(m) = Some(42);
            cv.notify_one();
        });
        let (m, cv) = &*slot;
        let mut g = plock(m);
        while g.is_none() {
            g = race::pwait(cv, g);
        }
        assert_eq!(*g, Some(42));
        drop(g);
        producer.join().unwrap();
    });
    assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
}

/// Buggy-by-construction programs: only meaningful (and only safe to run)
/// under the model scheduler.
#[cfg(paradigm_race)]
mod model_only {
    use super::*;
    use race::replay;
    use race::ViolationKind;

    /// Two tasks perform a non-atomic read-modify-write. The explorer must
    /// find the interleaving where one increment is lost, report it as a
    /// panic with a numbered trace, and prove the schedule replays
    /// identically.
    #[test]
    fn lost_update_race_is_found_with_replayable_trace() {
        let body = || {
            let n = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n = n.clone();
                handles.push(race::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
        };
        let r = explore("lost-update", &Config::with_bound(2), body);
        let v = r.violation.expect("explorer must find the lost update");
        assert_eq!(v.kind, ViolationKind::Panic);
        assert!(v.message.contains("an increment was lost"), "{}", v.message);
        assert!(!v.trace.is_empty());
        assert_eq!(r.replay_consistent, Some(true));
        let rendered = v.render_trace();
        assert!(rendered.contains("1. "), "numbered trace:\n{rendered}");

        // Manual replay of the recorded schedule reproduces the same trace.
        let rr = replay("lost-update", &Config::with_bound(2), body, &v.schedule);
        let rv = rr.violation.expect("replay must reproduce the violation");
        assert_eq!(rv.kind, v.kind);
        assert_eq!(rv.trace, v.trace);
    }

    /// Classic ABBA inversion: with one preemption the explorer drives both
    /// tasks between their two acquisitions and reports the deadlock; the
    /// lock-order graph shows the cycle as well.
    #[test]
    fn abba_deadlock_is_found_and_lock_graph_has_cycle() {
        let r = explore("abba", &Config::with_bound(1), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = race::thread::spawn(move || {
                let _ga = plock(&a2);
                let _gb = plock(&b2);
            });
            {
                let _gb = plock(&b);
                let _ga = plock(&a);
            }
            let _ = t.join();
        });
        let v = r.violation.expect("explorer must find the ABBA deadlock");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(!r.lock_order.cycles().is_empty(), "cycle must be recorded");
        assert_eq!(r.replay_consistent, Some(true));
    }

    /// With a preemption bound of 0 the deadlock schedule is never executed —
    /// each task runs its critical sections to completion — but the
    /// lock-order graph still aggregates `A->B` from one task and `B->A`
    /// from the other, so the *potential* deadlock is reported anyway.
    #[test]
    fn lock_order_cycle_reported_without_executing_the_deadlock() {
        let r = explore("abba-quiet", &Config::with_bound(0), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = race::thread::spawn(move || {
                let _ga = plock(&a2);
                let _gb = plock(&b2);
            });
            t.join().unwrap();
            let _gb = plock(&b);
            let _ga = plock(&a);
        });
        assert!(r.violation.is_none(), "no schedule actually deadlocks");
        assert!(
            !r.lock_order.cycles().is_empty(),
            "inversion must still be visible in the aggregated graph:\n{}",
            r.lock_order.render()
        );
        assert!(!r.passed(), "a lock-order cycle fails the suite");
    }

    /// Lost wakeup: the consumer checks the flag with `if` instead of
    /// `while`+recheck, so a notify landing between the check and the wait
    /// is dropped and the consumer sleeps forever. The explorer finds it as
    /// a deadlock (no runnable task, no pending timer).
    #[test]
    fn lost_wakeup_is_found_as_deadlock() {
        let r = explore("lost-wakeup", &Config::with_bound(1), || {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = slot.clone();
            let producer = race::thread::spawn(move || {
                let (m, cv) = &*s2;
                *plock(m) = true;
                cv.notify_one();
            });
            let (m, cv) = &*slot;
            let ready = *plock(m);
            if !ready {
                // BUG: flag may flip between the check above and this wait.
                let _g = race::pwait(cv, plock(m));
            }
            producer.join().unwrap();
        });
        let v = r.violation.expect("explorer must find the lost wakeup");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(v.message.contains("wait"), "summary: {}", v.message);
    }

    /// Two tasks touching disjoint locks: the bounded DFS with sleep sets
    /// exhausts the space in a few dozen schedules (the naive interleaving
    /// count of the ~15-event executions is orders of magnitude larger) and
    /// every schedule satisfies the invariant.
    #[test]
    fn disjoint_lock_space_is_exhausted_quickly() {
        let r = explore("disjoint", &Config::with_bound(2), || {
            let a = Arc::new(Mutex::new(0u64));
            let b = Arc::new(Mutex::new(0u64));
            let (a2, b2) = (a.clone(), b.clone());
            let ta = race::thread::spawn(move || {
                *plock(&a2) += 1;
            });
            let tb = race::thread::spawn(move || {
                *plock(&b2) += 1;
            });
            ta.join().unwrap();
            tb.join().unwrap();
            assert_eq!(*plock(&a) + *plock(&b), 2);
        });
        assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
        assert!(!r.truncated);
        assert!(r.schedules < 200, "reduction too weak: {} schedules", r.schedules);
    }

    /// A panic nobody joins is reported (mirrors std scope semantics), and
    /// teardown of the remaining parked tasks does not wedge the explorer.
    #[test]
    fn leaked_panic_is_reported() {
        let r = explore("leaked-panic", &Config::with_bound(0), || {
            let h = race::thread::spawn(|| panic!("nobody joins me"));
            // Handle dropped without join: the panic must surface anyway.
            drop(h);
        });
        let v = r.violation.expect("leaked panic must be reported");
        assert_eq!(v.kind, ViolationKind::Panic);
        assert!(v.message.contains("nobody joins me"), "{}", v.message);
    }

    /// RwLock: two concurrent readers are fine, writer excludes readers.
    #[test]
    fn rwlock_readers_and_writer_are_exclusive() {
        let r = explore("rwlock", &Config::with_bound(2), || {
            let l = Arc::new(race::sync::RwLock::new(0u64));
            let l2 = l.clone();
            let writer = race::thread::spawn(move || {
                *race::pwrite(&l2) += 1;
            });
            {
                let g = race::pread(&l);
                // Value is observed atomically before or after the write.
                assert!(*g == 0 || *g == 1);
            }
            writer.join().unwrap();
            assert_eq!(*race::pread(&l), 1);
        });
        assert!(r.passed(), "unexpected failure:\n{:?}", r.violation);
    }
}
