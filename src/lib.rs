//! # paradigm-repro — reproduction suite root
//!
//! This package hosts the workspace-level artifacts of the ICPP'94
//! PARADIGM reproduction:
//!
//! * `examples/` — eight runnable walkthroughs (`quickstart`,
//!   `complex_matmul`, `strassen`, `machine_sweep`, `random_workloads`,
//!   `workload_gallery`, `mdg_from_file`, `mini_language`);
//! * `tests/` — cross-crate integration suites (pipeline, theorems,
//!   calibration, value correctness, robustness, properties).
//!
//! The library surface lives in the sub-crates; start from
//! [`paradigm_core::prelude`] or read `README.md` / `DESIGN.md` /
//! `EXPERIMENTS.md` at the repository root.

pub use paradigm_core;
