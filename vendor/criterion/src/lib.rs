//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, the `measurement::Measurement` trait
//! with the `WallTime` default, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple best-of-N measurement
//! instead of criterion's statistical machinery.
//!
//! Mirroring the real crate, `Criterion`, `Bencher`, and
//! `BenchmarkGroup` are generic over the measurement with
//! `WallTime` as default, so bench code written generically
//! (`fn bench<M: Measurement>(g: &mut BenchmarkGroup<'_, M>)`) compiles
//! against both the stub and crates.io criterion.

use std::fmt::Display;

pub mod measurement {
    //! The measurement abstraction: how one timing sample is taken and
    //! aggregated. Matches the shape of `criterion::measurement`.

    use std::time::{Duration, Instant};

    /// One way of measuring a benchmark iteration batch.
    pub trait Measurement {
        /// In-progress measurement state (e.g. a start timestamp).
        type Intermediate;
        /// A completed measurement (e.g. an elapsed duration).
        type Value;

        /// Begin a measurement.
        fn start(&self) -> Self::Intermediate;
        /// Finish a measurement started with [`Measurement::start`].
        fn end(&self, i: Self::Intermediate) -> Self::Value;
        /// Combine two measured values.
        fn add(&self, v1: &Self::Value, v2: &Self::Value) -> Self::Value;
        /// The additive identity.
        fn zero(&self) -> Self::Value;
        /// Convert a value to an `f64` for comparison/printing (wall
        /// time reports nanoseconds).
        fn to_f64(&self, value: &Self::Value) -> f64;
    }

    /// The default measurement: monotonic wall-clock time.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;

    impl Measurement for WallTime {
        type Intermediate = Instant;
        type Value = Duration;

        fn start(&self) -> Instant {
            Instant::now()
        }

        fn end(&self, i: Instant) -> Duration {
            i.elapsed()
        }

        fn add(&self, v1: &Duration, v2: &Duration) -> Duration {
            *v1 + *v2
        }

        fn zero(&self) -> Duration {
            Duration::ZERO
        }

        fn to_f64(&self, value: &Duration) -> f64 {
            value.as_nanos() as f64
        }
    }
}

use measurement::{Measurement, WallTime};

/// Re-export of the standard optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handle passed to bench closures. Carries the same
/// lifetime/measurement parameters as the real criterion
/// `Bencher<'a, M>` so bench code writing `criterion::Bencher<'_>` or
/// generic `Bencher<'_, M>` compiles against the stub.
pub struct Bencher<'a, M: Measurement = WallTime> {
    measurement: &'a M,
    best: Option<M::Value>,
    iters_done: u64,
}

impl<M: Measurement> Bencher<'_, M> {
    /// Time `f`, keeping the best (lowest `to_f64`) per-batch value
    /// over a small fixed number of batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const BATCHES: u32 = 3;
        for _ in 0..BATCHES {
            let start = self.measurement.start();
            black_box(f());
            let elapsed = self.measurement.end(start);
            self.iters_done += 1;
            let better = match &self.best {
                None => true,
                Some(b) => self.measurement.to_f64(&elapsed) < self.measurement.to_f64(b),
            };
            if better {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_one<M: Measurement>(m: &M, label: &str, f: &mut dyn FnMut(&mut Bencher<'_, M>)) {
    let mut b = Bencher { measurement: m, best: None, iters_done: 0 };
    f(&mut b);
    match b.best {
        None => println!("{label:<48} (no measurement)"),
        Some(best) => {
            println!("{label:<48} best {:>16.3} ns", m.to_f64(&best));
        }
    }
}

/// Top-level benchmark driver, generic over the measurement like the
/// real crate (`Criterion<M: Measurement = WallTime>`).
#[derive(Debug)]
pub struct Criterion<M: Measurement = WallTime> {
    measurement: M,
}

impl Default for Criterion<WallTime> {
    fn default() -> Self {
        Criterion { measurement: WallTime }
    }
}

impl<M: Measurement> Criterion<M> {
    /// Swap the measurement, keeping everything else (mirrors
    /// `Criterion::with_measurement`).
    pub fn with_measurement<M2: Measurement>(self, m: M2) -> Criterion<M2> {
        Criterion { measurement: m }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_, M>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.measurement, name, &mut f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, M> {
        BenchmarkGroup { measurement: &self.measurement, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M: Measurement = WallTime> {
    measurement: &'a M,
    name: String,
}

impl<M: Measurement> BenchmarkGroup<'_, M> {
    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_, M>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.measurement, &label, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::measurement::{Measurement, WallTime};
    use super::*;

    /// A deterministic measurement counting batches instead of time —
    /// exercises the generics without wall-clock flakiness.
    #[derive(Default)]
    struct CountBatches;

    impl Measurement for CountBatches {
        type Intermediate = ();
        type Value = u64;

        fn start(&self) {}
        fn end(&self, (): ()) -> u64 {
            1
        }
        fn add(&self, v1: &u64, v2: &u64) -> u64 {
            v1 + v2
        }
        fn zero(&self) -> u64 {
            0
        }
        fn to_f64(&self, value: &u64) -> f64 {
            *value as f64
        }
    }

    /// Generic over the measurement exactly the way downstream bench
    /// code is expected to be.
    fn drive<M: Measurement>(c: &mut Criterion<M>) -> u32 {
        let mut runs = 0u32;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        runs
    }

    #[test]
    fn walltime_default_and_custom_measurement_both_drive() {
        let runs = drive(&mut Criterion::default());
        assert!(runs >= 3, "iter ran its batches");
        let mut counted = Criterion::default().with_measurement(CountBatches);
        drive(&mut counted);
        let m = CountBatches;
        assert_eq!(m.add(&m.zero(), &m.end(m.start())), 1);
        let w = WallTime;
        assert_eq!(w.to_f64(&w.zero()), 0.0);
    }
}
