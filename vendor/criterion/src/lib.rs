//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple best-of-N wall-clock
//! measurement instead of criterion's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Timing loop handle passed to bench closures. Carries the same
/// lifetime parameter as the real criterion `Bencher<'a, M>` so bench
/// code writing `criterion::Bencher<'_>` compiles against the stub.
pub struct Bencher<'a> {
    best: Duration,
    iters_done: u64,
    _lt: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `f`, keeping the best (lowest) per-iteration duration over a
    /// small fixed number of batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        const BATCHES: u32 = 3;
        for _ in 0..BATCHES {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            self.iters_done += 1;
            if elapsed < self.best {
                self.best = elapsed;
            }
        }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut b = Bencher { best: Duration::MAX, iters_done: 0, _lt: std::marker::PhantomData };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<48} (no measurement)");
    } else {
        println!("{label:<48} best {:>12.3?}", b.best);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
