//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random::<T>()` / `random_range(range)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand::rngs::StdRng` family uses for small
//! seeds. It is deterministic per seed (a workspace test requirement)
//! and statistically strong enough for test-data generation; it makes no
//! cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The closed endpoint is hit with probability ~2^-53; acceptable
        // for test-data generation.
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

/// Extension methods every [`RngCore`] gets for free (the `rand` 0.10
/// spelling: `random` / `random_range`).
pub trait RngExt: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.random::<f64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.random_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&g));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let v = rng.random_range(0u64..5);
            assert!(v < 5);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..4096).map(|_| rng.random::<f64>()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
