//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value from a [`TestRng`]. Unlike
//! real proptest there is no shrinking tree — a strategy is just a
//! deterministic sampler — which is all the workspace's tests rely on.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// The generated type (Debug so failing cases can print inputs).
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed samplers (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Union<T> {
    /// Build from the sampler list (must be non-empty).
    pub fn new(options: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        (self.options[k])(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// A `&str` literal acts as a regex-shaped string strategy. Supported
/// subset: literal characters, character classes `[a-z0-9_]` (with
/// ranges and plain members), and `{m}` / `{m,n}` quantifiers on the
/// preceding atom — enough for patterns like `"[a-z]{1,6}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut members = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' => {
                // Range like a-z (fall back to literal '-' at the ends).
                if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                    if hi != ']' {
                        chars.next();
                        for u in (lo as u32 + 1)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(u) {
                                members.push(ch);
                            }
                        }
                        prev = None;
                        continue;
                    }
                }
                members.push('-');
                prev = Some('-');
            }
            other => {
                members.push(other);
                prev = Some(other);
            }
        }
    }
    members
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap_or(1), b.trim().parse().unwrap_or(1)),
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
    };
    Some((lo, hi.max(lo)))
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars).unwrap_or((1, 1));
        let count = if hi > lo { lo + rng.below((hi - lo + 1) as u64) as usize } else { lo };
        for _ in 0..count {
            match &atom {
                Atom::Literal(ch) => out.push(*ch),
                Atom::Class(members) => {
                    if !members.is_empty() {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(123, 0)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (1usize..=5, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1.0..6.0).contains(&v));
        }
    }

    #[test]
    fn regex_subset() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[a-z]{1,6}".generate(&mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn union_picks_all_options() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
