//! `any::<T>()` — canonical strategies per type.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain sampler (one per `Arbitrary` impl below).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any(std::marker::PhantomData)
    }
}

macro_rules! impl_any {
    ($($t:ty => |$rng:ident| $body:expr;)*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $body
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any::default()
            }
        }
    )*};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    f64 => |rng| rng.unit_f64();
    Index => |rng| Index::from_raw(rng.next_u64());
}
