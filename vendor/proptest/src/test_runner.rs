//! Runner support types: configuration, case errors, and the
//! deterministic per-case RNG.

/// Runner configuration. Only `cases` is honoured by this stand-in; the
/// other fields exist so `..ProptestConfig::default()` spreads compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// A failed property inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of the test name: a stable per-test seed so different
/// tests draw decorrelated streams while every run is reproducible.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic generation RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        // Decorrelate the per-case streams with an odd multiplier.
        TestRng { state: test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
