//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest that the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` and
//!   multiple `#[test] fn name(arg in strategy, ..) { .. }` items);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer and
//!   float ranges, tuples (arity 1–10), [`strategy::Just`], unions built
//!   by [`prop_oneof!`], simple `"[a-z]{1,6}"`-style regex string
//!   literals, and [`arbitrary::any`] for `bool`, integers, and
//!   [`sample::Index`];
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Differences from real proptest: generation is purely random (no
//! shrinking, no regression-file persistence) and deterministic — the
//! per-case RNG is seeded from the test name and case index, so a failure
//! reproduces on every run. Failing cases print the generated inputs.

pub mod arbitrary;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Path alias so `prop::sample::Index` etc. resolve as in proptest.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-definition macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are `ident in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $($strat,)+ );
                let __test_seed = $crate::test_runner::seed_for(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__test_seed, __case as u64);
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; failures abort the
/// case with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Uniformly pick one of several same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}
