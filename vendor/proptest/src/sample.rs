//! Sampling helpers (`prop::sample::Index`).

/// An abstract index into collections of unknown length: stores raw
/// entropy and projects it onto `0..len` on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wrap raw entropy (used by `any::<Index>()`).
    pub fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Project onto `0..len`.
    ///
    /// # Panics
    /// Panics if `len` is zero (same contract as proptest).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::Index;

    #[test]
    fn index_projects_in_bounds() {
        let ix = Index::from_raw(u64::MAX - 3);
        for len in [1usize, 2, 7, 1000] {
            assert!(ix.index(len) < len);
        }
    }
}
